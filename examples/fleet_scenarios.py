#!/usr/bin/env python
"""Fleet-scale federated simulation on a laptop: scenario presets.

The lazy-client runtime (:mod:`repro.fl.state`) materialises a model only
when a client is actually sampled and reuses a bounded pool of model
instances, so a 256-client fleet costs four resident models — not 256.  This
example runs the three scenario presets from :mod:`repro.fl.scenarios`
against the same 256-client population:

* **uniform-edge** — steady fleet on cycling 5/10/25/50 Mbps uplinks,
  synchronous FedAvg over 5% of the fleet per round;
* **diurnal** — availability follows a day/night cosine, so the eligible
  pool thins out and recovers; semi-sync rounds cut the night stragglers;
* **flash-crowd** — half the fleet joins at round 2 and leaves at round 6;
  async staleness-weighted mixing absorbs the burst.

After each run the example prints the participation trace plus the
memory-side proof: how many model instances were ever resident and how many
client objects were ever materialised.

Run with::

    python examples/fleet_scenarios.py [--clients 256] [--rounds 8]
"""

from __future__ import annotations

import argparse

from repro.core import FedSZCompressor
from repro.experiments import build_federated_setup
from repro.experiments.reporting import render_table
from repro.fl import ParallelExecutor, available_scenarios, build_fleet_runtime, get_scenario


def run(clients: int, rounds: int, samples: int, workers: int) -> None:
    rows = []
    for preset in available_scenarios():
        scenario = get_scenario(preset.name, num_clients=clients, rounds=rounds)
        setup = build_federated_setup(
            "mobilenetv2", "cifar10", num_clients=clients, rounds=rounds,
            samples=samples, local_epochs=1, seed=11,
        )
        runtime = build_fleet_runtime(
            scenario,
            setup.model_fn,
            setup.train_dataset,
            setup.validation_dataset,
            codec=FedSZCompressor(error_bound=1e-2),
            executor=ParallelExecutor(max_workers=workers),
            seed=11,
            batch_size=16,
        )
        history = runtime.run()
        participation = [record.participating_clients for record in history.records]
        print(
            f"{scenario.name:13s} final accuracy {history.final_accuracy:.3f}  "
            f"participants/round {participation}  "
            f"resident models {runtime.model_pool.created}/{clients}  "
            f"materialized clients {runtime.clients.materialized_count}/{clients}"
        )
        for record in history.records:
            rows.append(
                {
                    "scenario": scenario.name,
                    "round": record.round_index,
                    "participants": record.participating_clients,
                    "accuracy": record.global_accuracy,
                    "round_seconds": record.simulated_round_seconds,
                    "downlink_s": record.downlink_seconds,
                    "dropped": record.dropped_clients,
                }
            )

    print()
    print(render_table(rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=256)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--samples", type=int, default=640,
                        help="synthetic dataset size; must leave every client "
                             "at least one training sample after the 80/20 split")
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel executor width = model-pool bound")
    arguments = parser.parse_args()
    run(arguments.clients, arguments.rounds, arguments.samples, arguments.workers)


if __name__ == "__main__":
    main()
