"""Synthetic scientific-simulation fields (Miranda stand-in).

Figure 2 of the paper contrasts spiky FL model parameters with smooth
snippets of the Miranda large-eddy-simulation dataset (density and velocity
slices).  SDRBench data cannot be downloaded offline, so this module
synthesises smooth 1-D/2-D fields with the same qualitative character:
large-scale coherent structure, small local variation, high EBLC
compressibility.
"""

from __future__ import annotations

import numpy as np


def miranda_like_slice(
    length: int = 384,
    field: str = "density",
    seed: int = 0,
) -> np.ndarray:
    """A smooth 1-D slice resembling a Miranda density/velocity profile."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 1.0, length)
    if field == "density":
        # Two fluids with a smoothed interface plus mild large-scale waves.
        interface = 0.5 + 0.08 * np.sin(2 * np.pi * 3 * x + rng.uniform(0, 2 * np.pi))
        base = 1.0 + 2.0 / (1.0 + np.exp(-(x - interface) * 40.0))
        ripple = 0.15 * np.sin(2 * np.pi * 11 * x + rng.uniform(0, 2 * np.pi))
    elif field == "velocity":
        base = 1.5 * np.sin(2 * np.pi * 2 * x + rng.uniform(0, 2 * np.pi))
        ripple = 0.4 * np.sin(2 * np.pi * 7 * x + rng.uniform(0, 2 * np.pi))
    else:
        raise ValueError(f"unknown field {field!r}; expected 'density' or 'velocity'")
    noise = 0.01 * rng.normal(size=length)
    return (base + ripple + noise).astype(np.float32)


def miranda_like_volume(
    height: int = 64,
    width: int = 64,
    field: str = "density",
    seed: int = 0,
) -> np.ndarray:
    """A smooth 2-D field used for visualising the Figure 2 comparison."""
    rng = np.random.default_rng(seed)
    y = np.linspace(0.0, 1.0, height)[:, None]
    x = np.linspace(0.0, 1.0, width)[None, :]
    phase = rng.uniform(0, 2 * np.pi, size=4)
    if field == "density":
        surface = (
            1.0
            + 2.0 / (1.0 + np.exp(-(y - 0.5 - 0.05 * np.sin(2 * np.pi * 3 * x + phase[0])) * 30.0))
            + 0.1 * np.sin(2 * np.pi * 5 * x + phase[1]) * np.sin(2 * np.pi * 4 * y + phase[2])
        )
    elif field == "velocity":
        surface = 1.5 * np.sin(2 * np.pi * 2 * x + phase[0]) * np.cos(2 * np.pi * 2 * y + phase[3])
    else:
        raise ValueError(f"unknown field {field!r}; expected 'density' or 'velocity'")
    noise = 0.01 * rng.normal(size=(height, width))
    return (surface + noise).astype(np.float32)


def smoothness_score(values: np.ndarray) -> float:
    """Mean absolute first difference normalised by the value range.

    Low values indicate smooth (scientific-simulation-like) data; high values
    indicate spiky (model-parameter-like) data.  Used by the Figure 2
    characterisation harness to quantify the visual contrast the paper draws.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size < 2:
        return 0.0
    value_range = float(values.max() - values.min())
    if value_range == 0.0:
        return 0.0
    return float(np.mean(np.abs(np.diff(values))) / value_range)
