"""Benchmark regenerating Table II (lossless codec comparison on metadata)."""

from __future__ import annotations

from repro.experiments import run_table2


def test_table2_lossless_comparison(run_once):
    result = run_once(run_table2)
    print()
    print(result.to_text())

    rows = {row["compressor"]: row for row in result.rows}
    # Paper shape: blosc-lz is by far the fastest; xz is the slowest; every
    # codec achieves a modest (>1x) ratio on the float metadata.
    assert rows["blosc-lz"]["runtime_seconds"] == min(r["runtime_seconds"] for r in rows.values())
    assert rows["xz"]["runtime_seconds"] == max(r["runtime_seconds"] for r in rows.values())
    assert all(row["ratio"] > 1.0 for row in rows.values())
    # blosc-lz's ratio is competitive with the best ratio in the suite.
    best_ratio = max(row["ratio"] for row in rows.values())
    assert rows["blosc-lz"]["ratio"] > 0.85 * best_ratio
