"""FORK002 — transitive pickle-safety of worker-crossing dataclasses.

FORK001 proves a ``*TaskSpec``/``*TaskResult`` carries no *direct* live
object.  But pickling recurses: a spec whose field is typed ``FaultPlan``
ships everything ``FaultPlan`` declares, and everything *those* fields
declare, all the way down.  The planned socket executor makes this a
cross-host property — memory inheritance can no longer paper over a lambda
or lock buried two hops deep.

FORK002 walks each worker-crossing class's annotated field types through the
project-wide class table (cycle-safe) and reports:

* a forbidden live type (``Callable``, ``Lock``, queues, file handles — the
  FORK001 list) reachable at depth ≥ 2, with the field chain that reaches
  it.  Depth-1 hits are FORK001's and are not re-reported.
* a reachable class that *owns a lock attribute* (``self._lock =
  threading.Lock()`` in any method): such instances cannot pickle at all.

Unresolvable annotations (externals like ``numpy.ndarray``) are treated as
leaves — arrays and plain containers are exactly what specs should carry.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import ClassFact, ProjectIndex
from repro.analysis.deep import DeepRule, register_deep_rule
from repro.analysis.engine import Finding
from repro.analysis.rule_fork_safety import _FORBIDDEN_TYPES


def _forbidden_tail(type_name: str) -> Optional[str]:
    tail = type_name.rpartition(".")[2]
    return tail if tail in _FORBIDDEN_TYPES else None


@register_deep_rule
class TransitiveForkSafetyRule(DeepRule):
    rule_id = "FORK002"
    summary = "worker-crossing dataclasses are pickle-safe transitively"
    invariant = (
        "everything reachable from a task spec through annotated field types "
        "pickles under spawn: no live type and no lock-owning class at any "
        "depth, not just in the spec's own fields"
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        for klass in project.classes.values():
            if not klass.worker_crossing:
                continue
            yield from self._walk(project, root=klass)

    def _walk(self, project: ProjectIndex, root: ClassFact) -> Iterator[Finding]:
        # (class, chain-of-field-names-so-far); visited is per-root so two
        # specs sharing a bad type each get their own finding.
        queue: List[Tuple[ClassFact, List[str], int]] = [(root, [], 0)]
        visited: Set[str] = {root.qualname}
        while queue:
            current, chain, depth = queue.pop(0)
            for field_fact in current.fields:
                field_chain = chain + [field_fact.name]
                # The annotation is recorded under every spelling (resolved
                # and raw); dedupe so one bad type is one finding.
                bad_tails: List[str] = []
                for type_name in field_fact.type_names:
                    bad = _forbidden_tail(type_name)
                    if bad is not None and bad not in bad_tails:
                        bad_tails.append(bad)
                # Depth-1 forbidden types are FORK001's findings already.
                if depth >= 1:
                    for bad in bad_tails:
                        yield self.finding(
                            project, root.path, root.line, root.col,
                            f"worker-crossing class {root.name} reaches "
                            f"{bad} through field chain "
                            f"{'.'.join(field_chain)}; everything a spec "
                            "embeds must pickle under spawn",
                        )
                for type_name in field_fact.type_names:
                    if _forbidden_tail(type_name) is not None:
                        continue
                    nested = project.classes.get(type_name)
                    if nested is None or nested.qualname in visited:
                        continue
                    visited.add(nested.qualname)
                    if nested.lock_attrs:
                        yield self.finding(
                            project, root.path, root.line, root.col,
                            f"worker-crossing class {root.name} embeds "
                            f"{nested.name} (via {'.'.join(field_chain)}), "
                            f"which owns lock attribute self."
                            f"{nested.lock_attrs[0]}; lock-owning objects "
                            "cannot cross the process boundary",
                        )
                        continue
                    queue.append((nested, field_chain, depth + 1))


__all__ = ["TransitiveForkSafetyRule"]
