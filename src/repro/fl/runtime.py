"""The layered federated runtime: scheduler + executor + transport.

:class:`FederatedRuntime` owns the server, the client population and the
round-by-round history, and delegates the three orthogonal concerns to
pluggable layers:

* the **scheduler** (:mod:`repro.fl.scheduler`) decides what a round means —
  synchronous FedAvg, semi-synchronous with a straggler deadline, or
  asynchronous staleness-weighted mixing;
* the **executor** (:mod:`repro.fl.executor`) decides how client work runs —
  strictly sequential or concurrently on a thread pool;
* the **transport** (:mod:`repro.fl.transport`) decides what each client's
  link looks like — one shared channel (the seed behaviour) or heterogeneous
  per-client bandwidth/latency/straggler/dropout profiles.

The default composition (sync + serial + homogeneous) reproduces the seed
``FLSimulation`` numbers exactly; :class:`repro.fl.FLSimulation` is now a thin
facade over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.data.datasets import SyntheticImageDataset
from repro.data.partition import partition_dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.executor import ClientResult, ClientTask, SerialExecutor
from repro.fl.history import ClientRoundStat, RoundRecord, TrainingHistory
from repro.fl.scheduler import RoundScheduler, SynchronousScheduler
from repro.fl.server import FLServer
from repro.fl.transport import Transport
from repro.nn.module import Module
from repro.utils.seeding import SeedSequenceFactory


@dataclass
class RoundContext:
    """Everything prepared before client execution starts."""

    round_index: int
    participants: List[FLClient]
    broadcast_state: Dict[str, np.ndarray]
    learning_rate: float
    downlink_bytes: int
    downlink_seconds: float
    tasks: List[ClientTask] = field(default_factory=list)


class FederatedRuntime:
    """Composable federated training runtime (see module docstring)."""

    def __init__(
        self,
        model_fn: Callable[[], Module],
        train_dataset: SyntheticImageDataset,
        validation_dataset: SyntheticImageDataset,
        config: Optional[FLConfig] = None,
        codec=None,
        scheduler: Optional[RoundScheduler] = None,
        executor=None,
        transport: Optional[Transport] = None,
    ) -> None:
        self.config = config or FLConfig()
        self.codec = codec
        self.scheduler = scheduler or SynchronousScheduler()
        self.executor = executor or SerialExecutor()

        # Seed-derivation order matches the seed FLSimulation exactly
        # (partition, clients, sampling) so default runs are bit-compatible;
        # transport streams draw after and do not perturb them.
        seeds = SeedSequenceFactory(self.config.seed)
        client_datasets = partition_dataset(
            train_dataset,
            self.config.num_clients,
            strategy=self.config.partition_strategy,
            alpha=self.config.dirichlet_alpha,
            seed=seeds.next_seed(),
        )
        self.server = FLServer(
            model_fn, validation_dataset, eval_batch_size=self.config.eval_batch_size
        )
        self.clients: List[FLClient] = [
            FLClient(client_id, model_fn, dataset, self.config, seed=seeds.next_seed())
            for client_id, dataset in enumerate(client_datasets)
        ]
        self.history = TrainingHistory()
        self._sampling_rng = np.random.default_rng(seeds.next_seed())

        self.transport = transport or Transport.homogeneous(
            bandwidth_mbps=self.config.bandwidth_mbps
        )
        self.transport.bind(len(self.clients), seed=seeds.next_seed())

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def run(self, rounds: Optional[int] = None) -> TrainingHistory:
        """Run ``rounds`` communication rounds (defaults to the configured count)."""
        for _ in range(rounds if rounds is not None else self.config.rounds):
            self.run_round()
        return self.history

    def run_round(self) -> RoundRecord:
        """Execute one round under the configured scheduler."""
        return self.scheduler.run_round(self)

    # ------------------------------------------------------------------
    # Scheduler-facing primitives
    # ------------------------------------------------------------------
    def start_round(self) -> RoundContext:
        """Sample participants, broadcast the global state, build client tasks."""
        round_index = len(self.history)
        participants = self._sample_clients()
        learning_rate = (
            self.config.learning_rate * self.config.learning_rate_decay**round_index
        )
        broadcast_state, downlink_bytes, downlink_seconds = self._broadcast(participants)
        context = RoundContext(
            round_index=round_index,
            participants=participants,
            broadcast_state=broadcast_state,
            learning_rate=learning_rate,
            downlink_bytes=downlink_bytes,
            downlink_seconds=downlink_seconds,
        )
        context.tasks = [
            ClientTask(
                client=client,
                link=self.transport.uplink(client.client_id),
                broadcast_state=broadcast_state,
                learning_rate=learning_rate,
            )
            for client in participants
        ]
        return context

    def execute_clients(self, context: RoundContext) -> List[ClientResult]:
        """Run the round's client tasks through the executor layer."""
        return self.executor.run_clients(context.tasks, codec=self.codec)

    def finish_round(
        self,
        context: RoundContext,
        results: List[ClientResult],
        aggregated_ids,
        round_seconds: float,
        client_weights: Optional[Dict[int, float]] = None,
        client_staleness: Optional[Dict[int, int]] = None,
    ) -> RoundRecord:
        """Evaluate the global model and append the round record."""
        evaluation = self.server.evaluate()
        client_weights = client_weights or {}
        client_staleness = client_staleness or {}

        client_stats = [
            ClientRoundStat(
                client_id=result.client_id,
                num_samples=result.update.num_samples,
                train_loss=result.update.train_loss,
                train_accuracy=result.update.train_accuracy,
                train_seconds=result.update.train_seconds,
                compress_seconds=result.stats.compress_seconds,
                decompress_seconds=result.stats.decompress_seconds,
                transfer_seconds=result.stats.transfer_seconds,
                payload_nbytes=result.stats.payload_nbytes,
                compression_ratio=result.stats.ratio,
                turnaround_seconds=result.turnaround_seconds,
                delivered=result.delivered,
                aggregated=result.client_id in aggregated_ids,
                staleness=client_staleness.get(result.client_id, 0),
                weight=client_weights.get(result.client_id, 0.0),
            )
            for result in results
        ]

        ratios = [result.stats.ratio for result in results]
        record = RoundRecord(
            round_index=context.round_index,
            global_accuracy=evaluation.accuracy,
            global_loss=evaluation.loss,
            mean_client_loss=float(np.mean([r.update.train_loss for r in results])),
            mean_client_accuracy=float(np.mean([r.update.train_accuracy for r in results])),
            uplink_bytes=sum(result.stats.payload_nbytes for result in results),
            uplink_seconds=float(sum(result.stats.transfer_seconds for result in results)),
            compression_seconds=float(sum(r.stats.compress_seconds for r in results)),
            decompression_seconds=float(sum(r.stats.decompress_seconds for r in results)),
            train_seconds=float(sum(r.update.train_seconds for r in results)),
            validation_seconds=evaluation.seconds,
            mean_compression_ratio=float(np.mean(ratios)) if ratios else 1.0,
            downlink_bytes=context.downlink_bytes,
            downlink_seconds=context.downlink_seconds,
            participating_clients=len(context.participants),
            client_stats=client_stats,
            dropped_clients=sum(1 for result in results if not result.delivered),
            straggler_clients=sum(
                1
                for result in results
                if result.delivered and result.client_id not in aggregated_ids
            ),
            simulated_round_seconds=float(round_seconds),
        )
        self.history.add(record)
        return record

    # ------------------------------------------------------------------
    # Sampling and broadcast
    # ------------------------------------------------------------------
    def _sample_clients(self) -> List[FLClient]:
        """Sample the subset of clients participating in this round."""
        if self.config.client_fraction >= 1.0:
            return list(self.clients)
        count = max(1, int(round(self.config.client_fraction * len(self.clients))))
        indices = self._sampling_rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[index] for index in sorted(indices)]

    def _broadcast(self, participants: List[FLClient]) -> tuple:
        """Prepare the broadcast state and its total downlink cost.

        The paper compresses the uplink only; ``compress_downlink`` extends
        the codec to the broadcast path, in which case clients train on the
        state they actually receive (including the compression error).
        """
        global_state = self.server.global_state()
        raw_nbytes = int(sum(np.asarray(v).nbytes for v in global_state.values()))
        if self.codec is None or not self.config.compress_downlink:
            state = dict(global_state)
            nbytes = raw_nbytes
        else:
            payload = self.codec.compress(global_state)
            state = self.codec.decompress(payload)
            nbytes = len(payload)

        if self.transport.is_homogeneous and participants:
            # Seed arithmetic: per-client cost times the participant count.
            per_client = self.transport.downlink_seconds(
                nbytes, participants[0].client_id
            )
            seconds = per_client * len(participants)
        else:
            seconds = sum(
                self.transport.downlink_seconds(nbytes, client.client_id)
                for client in participants
            )
        return state, nbytes * len(participants), seconds

    @property
    def channel(self):
        """The shared channel for homogeneous transports (``None`` otherwise)."""
        return self.transport.channel
