"""Loss functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import functional as F


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class targets.

    ``forward`` returns the scalar loss; ``backward`` returns the gradient of
    the loss with respect to the logits (already averaged over the batch), to
    be fed into the model's ``backward``.
    """

    def __init__(self) -> None:
        self._grad: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        loss, grad = F.cross_entropy(logits, np.asarray(targets, dtype=np.int64))
        self._grad = grad
        return loss

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise RuntimeError("CrossEntropyLoss.backward() called before forward()")
        return self._grad

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


def cross_entropy_with_grad(logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Convenience wrapper returning ``(loss, grad_logits)`` in one call."""
    return F.cross_entropy(logits, np.asarray(targets, dtype=np.int64))
