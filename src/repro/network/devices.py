"""Compute-device profiles for compression-runtime modelling.

The paper separates *where* numbers come from: accuracy and convergence are
measured on a GPU cluster, while compression runtime/throughput is measured
on a Raspberry Pi 5 (Table I) because FedSZ targets edge clients.  This
module encodes that split:

* ``local`` — runtimes are whatever this host measures (pass-through);
* ``raspberry-pi-5`` — runtimes are derived from the paper's published
  Table I/II throughputs, so communication-time experiments (Figures 7 and 8)
  can be reproduced with the same device assumptions as the paper even though
  no Raspberry Pi is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

#: Table I compression throughput (MB/s of uncompressed data) on a
#: Raspberry Pi 5, keyed by compressor and relative error bound.  Values are
#: the AlexNet rows, which the paper uses for its bandwidth analysis (Fig. 8).
RASPBERRY_PI_5_THROUGHPUT_MBPS: Dict[str, Dict[float, float]] = {
    "sz2": {1e-2: 70.75, 1e-3: 46.26, 1e-4: 34.34},
    "sz3": {1e-2: 31.58, 1e-3: 25.94, 1e-4: 21.34},
    "szx": {1e-2: 3514.92, 1e-3: 3554.84, 1e-4: 3507.02},
    "zfp": {1e-2: 120.66, 1e-3: 108.17, 1e-4: 96.51},
}

#: Table II lossless throughput (MB/s) on a Raspberry Pi 5.
RASPBERRY_PI_5_LOSSLESS_THROUGHPUT_MBPS: Dict[str, float] = {
    "blosc-lz": 674.5,
    "gzip": 28.16,
    "xz": 4.00,
    "zlib": 28.37,
    "zstd": 348.6,
}

#: Decompression is roughly 2× faster than compression for the SZ family on
#: small ARM cores; used when a profile does not specify decompression rates.
_DEFAULT_DECOMPRESSION_SPEEDUP = 2.0


@dataclass(frozen=True)
class DeviceProfile:
    """Analytic compression-runtime model for a named device.

    ``throughput_mbps`` maps compressor name → {error bound → MB/s}.  When a
    requested error bound is missing, the nearest configured bound is used
    (the paper only publishes three bounds per compressor).
    """

    name: str
    throughput_mbps: Mapping[str, Mapping[float, float]]
    lossless_throughput_mbps: Mapping[str, float]
    decompression_speedup: float = _DEFAULT_DECOMPRESSION_SPEEDUP

    def compression_seconds(
        self, compressor: str, num_bytes: int, error_bound: float = 1e-2
    ) -> float:
        """Modelled time to compress ``num_bytes`` of data."""
        throughput = self._lookup_throughput(compressor, error_bound)
        return num_bytes / 1e6 / throughput

    def decompression_seconds(
        self, compressor: str, num_bytes: int, error_bound: float = 1e-2
    ) -> float:
        """Modelled time to decompress back to ``num_bytes`` of data."""
        throughput = self._lookup_throughput(compressor, error_bound) * self.decompression_speedup
        return num_bytes / 1e6 / throughput

    def lossless_seconds(self, compressor: str, num_bytes: int) -> float:
        """Modelled time for the lossless stage."""
        key = compressor.lower()
        if key not in self.lossless_throughput_mbps:
            raise KeyError(
                f"device {self.name!r} has no throughput entry for lossless codec {compressor!r}"
            )
        return num_bytes / 1e6 / self.lossless_throughput_mbps[key]

    def _lookup_throughput(self, compressor: str, error_bound: float) -> float:
        key = compressor.lower()
        if key not in self.throughput_mbps:
            raise KeyError(
                f"device {self.name!r} has no throughput entry for compressor {compressor!r}"
            )
        per_bound = self.throughput_mbps[key]
        if error_bound in per_bound:
            return per_bound[error_bound]
        nearest = min(per_bound, key=lambda bound: abs(bound - error_bound))
        return per_bound[nearest]


RASPBERRY_PI_5 = DeviceProfile(
    name="raspberry-pi-5",
    throughput_mbps=RASPBERRY_PI_5_THROUGHPUT_MBPS,
    lossless_throughput_mbps=RASPBERRY_PI_5_LOSSLESS_THROUGHPUT_MBPS,
)


def get_device_profile(name: str) -> Optional[DeviceProfile]:
    """Look up a named device profile.

    ``"local"`` (or ``None``) returns ``None``, meaning "measure on this
    host" — callers fall back to timing the actual codec run.
    """
    if name is None or name.lower() in {"local", "host"}:
        return None
    if name.lower() in {"raspberry-pi-5", "rpi5", "raspberrypi5"}:
        return RASPBERRY_PI_5
    raise KeyError(f"unknown device profile {name!r}; available: 'local', 'raspberry-pi-5'")
