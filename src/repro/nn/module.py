"""Module base class: the ``state_dict`` surface FedSZ compresses.

The class intentionally mirrors ``torch.nn.Module`` for the features the
FedSZ pipeline and the federated-learning runtime rely on:

* attribute assignment auto-registers child modules and parameters;
* ``named_parameters`` / ``named_buffers`` walk the module tree with
  dot-separated names (``features.0.weight`` ...);
* ``state_dict()`` returns an ordered mapping of *numpy arrays* covering both
  trainable parameters and buffers (BatchNorm running statistics and the
  ``num_batches_tracked`` counters), exactly the object Algorithm 1 of the
  paper partitions into lossy / lossless components;
* ``load_state_dict()`` restores a model from such a mapping;
* ``train()`` / ``eval()`` toggle training-mode behaviour (Dropout,
  BatchNorm).

Unlike PyTorch there is no autograd graph: every module implements an
explicit ``forward`` and ``backward`` and caches whatever it needs in
between.  That keeps the substrate small, dependency-free and fast enough for
laptop-scale federated simulations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, parameter: Optional[Parameter]) -> None:
        """Register a trainable parameter under ``name``."""
        if parameter is not None and not isinstance(parameter, Parameter):
            raise TypeError(f"expected Parameter or None, got {type(parameter).__name__}")
        self._parameters[name] = parameter

    def register_buffer(self, name: str, buffer: Optional[np.ndarray]) -> None:
        """Register non-trainable state (e.g. running statistics)."""
        self._buffers[name] = None if buffer is None else np.asarray(buffer)

    def add_module(self, name: str, module: Optional["Module"]) -> None:
        """Register a child module under ``name``."""
        if module is not None and not isinstance(module, Module):
            raise TypeError(f"expected Module or None, got {type(module).__name__}")
        self._modules[name] = module

    def __setattr__(self, name: str, value) -> None:
        # Auto-registration mirrors torch.nn.Module ergonomics.
        if isinstance(value, Parameter):
            if "_parameters" not in self.__dict__:
                raise AttributeError("Module.__init__() must be called before assigning parameters")
            self._parameters[name] = value
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            if "_modules" not in self.__dict__:
                raise AttributeError("Module.__init__() must be called before assigning submodules")
            self._modules[name] = value
            object.__setattr__(self, name, value)
        else:
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        """Immediate child modules."""
        for module in self._modules.values():
            if module is not None:
                yield module

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """All modules in the tree, including ``self``."""
        yield prefix, self
        for name, module in self._modules.items():
            if module is None:
                continue
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """All parameters in the tree with dot-separated names."""
        for name, parameter in self._parameters.items():
            if parameter is not None:
                yield (f"{prefix}.{name}" if prefix else name), parameter
        for child_name, module in self._modules.items():
            if module is None:
                continue
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        """All parameters in the tree."""
        for _, parameter in self.named_parameters():
            yield parameter

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """All buffers in the tree with dot-separated names."""
        for name, buffer in self._buffers.items():
            if buffer is not None:
                yield (f"{prefix}.{name}" if prefix else name), buffer
        for child_name, module in self._modules.items():
            if module is None:
                continue
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from module.named_buffers(child_prefix)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Snapshot of every parameter and buffer as numpy arrays.

        Arrays are copies, so mutating the returned dictionary does not affect
        the live model — matching ``torch.nn.Module.state_dict()`` closely
        enough for the compression pipeline.
        """
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state_dict: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Restore parameters and buffers from ``state_dict``."""
        own_parameters = dict(self.named_parameters())
        own_buffer_names = [name for name, _ in self.named_buffers()]
        missing: List[str] = []
        for name, parameter in own_parameters.items():
            if name in state_dict:
                parameter.copy_(state_dict[name])
            elif strict:
                missing.append(name)
        buffer_owner = self._buffer_owner_map()
        for name in own_buffer_names:
            if name in state_dict:
                owner, local_name = buffer_owner[name]
                incoming = np.asarray(state_dict[name])
                current = owner._buffers[local_name]
                owner._buffers[local_name] = incoming.astype(current.dtype).reshape(current.shape)
            elif strict:
                missing.append(name)
        unexpected = [
            key for key in state_dict if key not in own_parameters and key not in buffer_owner
        ]
        if strict and (missing or unexpected):
            raise KeyError(
                f"load_state_dict mismatch: missing={missing!r}, unexpected={unexpected!r}"
            )

    def _buffer_owner_map(self) -> Dict[str, Tuple["Module", str]]:
        """Map fully-qualified buffer names onto (owning module, local name)."""
        owners: Dict[str, Tuple[Module, str]] = {}
        for prefix, module in self.named_modules():
            for local_name, buffer in module._buffers.items():
                if buffer is None:
                    continue
                full_name = f"{prefix}.{local_name}" if prefix else local_name
                owners[full_name] = (module, local_name)
        return owners

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = bool(mode)
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(
            p.size for p in self.parameters() if not trainable_only or p.requires_grad
        )

    def state_nbytes(self) -> int:
        """Byte footprint of the full state dict (parameters + buffers)."""
        return int(sum(v.nbytes for v in self.state_dict().values()))

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Compute the module output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Back-propagate ``grad_output`` and return the gradient w.r.t. input."""
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"
