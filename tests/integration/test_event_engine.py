"""Acceptance tests for the discrete-event fleet engine.

Four guarantees are pinned here:

* **engine equivalence** — at 256 clients, the event engine produces
  bit-identical ``TrainingHistory.deterministic_rows()`` and final weights to
  the legacy round loop, for every scheduler (sync / semi-sync / async, each
  under its natural fleet preset) and every executor (serial / thread /
  process);
* **crash-safe equivalence** — a kill + resume under the event engine lands
  on exactly the uninterrupted legacy run;
* **O(events) rounds** — per-round client touches scale with participants +
  availability transitions, not fleet size: a 4x larger fleet with the same
  participant count produces identical steady-state touch counts, and
  resident state (materialised clients, links, models) stays bounded by
  activity;
* **corrupted uploads** — a :class:`~repro.fl.scenarios.CorruptedUpload`
  fault trains and transmits, the server's checksum frame rejects the
  payload, and the accounting (dropped update, zero accepted bytes) is
  bit-identical across all three executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedSZCompressor
from repro.data import load_dataset
from repro.fl import (
    FederatedRuntime,
    FLConfig,
    ParallelExecutor,
    ProcessParallelExecutor,
    SerialExecutor,
    build_fleet_runtime,
    get_scenario,
)
from repro.fl.scenarios import CorruptedUploadSchedule, FullParticipation
from repro.nn.models import create_model

PRESETS = ["uniform-edge", "diurnal", "flash-crowd"]  # sync / semi-sync / async
EXECUTORS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def fleet_data():
    full = load_dataset("cifar10", num_samples=640, image_size=8, seed=0)
    return full.split(0.75, seed=1)


def _make_executor(name: str):
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ParallelExecutor(max_workers=4)
    return ProcessParallelExecutor(max_workers=4)


def _model_fn():
    return create_model("alexnet", "tiny", num_classes=10, seed=0)


def _build_fleet(fleet_data, preset_name: str, engine: str, executor_name: str):
    train, validation = fleet_data
    overrides = {}
    if preset_name == "flash-crowd":
        # Async arrival order sorts on turnaround, which includes *measured*
        # train seconds.  The preset cycles four bandwidths, so same-bandwidth
        # clients would be ordered by wall-clock noise; distinct per-client
        # bandwidths separate every pair by >= ~10ms of simulated transfer,
        # making the ordering a pure function of the config (the same
        # precondition the legacy loop needs to be run-to-run reproducible).
        overrides["bandwidths_mbps"] = tuple(0.2 + 0.01 * i for i in range(256))
    preset = get_scenario(preset_name, num_clients=256, rounds=2, **overrides)
    return build_fleet_runtime(
        preset,
        _model_fn,
        train,
        validation,
        codec=None,
        executor=_make_executor(executor_name),
        seed=7,
        batch_size=16,
        engine=engine,
    )


def _run_closed(runtime, *args, **kwargs):
    try:
        return runtime.run(*args, **kwargs)
    finally:
        runtime.close()


def _assert_states_identical(reference, other):
    reference_state = reference.server.global_state()
    other_state = other.server.global_state()
    assert reference_state.keys() == other_state.keys()
    for name in reference_state:
        np.testing.assert_array_equal(
            reference_state[name], other_state[name], err_msg=name
        )


@pytest.mark.parametrize("preset_name", PRESETS)
def test_event_engine_matches_legacy_loop_across_executors(fleet_data, preset_name):
    """256-client preset, every executor: engine rows + weights == legacy."""
    legacy = _build_fleet(fleet_data, preset_name, "rounds", "serial")
    rows = _run_closed(legacy).deterministic_rows()
    assert len(rows) == 2
    for executor_name in EXECUTORS:
        engine_runtime = _build_fleet(fleet_data, preset_name, "events", executor_name)
        history = _run_closed(engine_runtime)
        assert history.deterministic_rows() == rows, executor_name
        _assert_states_identical(legacy, engine_runtime)


def test_event_engine_resume_is_bit_identical(fleet_data, tmp_path):
    """Kill after 2 of 4 rounds, resume with a fresh engine: the resumed run
    must land on the uninterrupted legacy run exactly (availability rebuilds
    from the mask at the discontinuity, then continues incrementally)."""
    train, validation = fleet_data
    preset = get_scenario("diurnal", num_clients=256, rounds=4)

    def build(engine):
        return build_fleet_runtime(
            preset, _model_fn, train, validation, codec=None, seed=7,
            batch_size=16, engine=engine,
        )

    uninterrupted = build("rounds")
    rows = _run_closed(uninterrupted).deterministic_rows()

    first = build("events")
    _run_closed(first, 2, checkpoint_dir=tmp_path)
    resumed = build("events")
    history = _run_closed(resumed, 4, checkpoint_dir=tmp_path, resume=True)
    assert history.deterministic_rows() == rows
    _assert_states_identical(uninterrupted, resumed)


def test_round_cost_scales_with_events_not_fleet_size():
    """Same participant count at 2048 vs 8192 clients: after the round-0
    arrival burst, per-round touches are identical and resident state stays
    bounded by activity — the O(events) claim, asserted on counters."""
    full = load_dataset("cifar10", num_samples=10_000, image_size=8, seed=0)
    train, validation = full.split(0.9, seed=1)
    participants = 32
    touches = {}
    for fleet_size in (2048, 8192):
        runtime = FederatedRuntime(
            _model_fn,
            train,
            validation,
            FLConfig(
                num_clients=fleet_size,
                rounds=3,
                batch_size=16,
                local_epochs=1,
                client_fraction=participants / fleet_size,
                engine="events",
                seed=3,
            ),
            schedule=FullParticipation(),
        )
        _run_closed(runtime)
        stats = runtime.engine.stats
        assert stats.rounds_run == 3
        assert stats.participants == 3 * participants
        # Round 0 pays the full-fleet arrival burst; steady state touches
        # only the participants.
        assert stats.round_touches[0] == participants + fleet_size
        touches[fleet_size] = stats.round_touches[1:]
        assert touches[fleet_size] == [participants, participants]
        # Resident state is bounded by activity, not the census.
        assert runtime.clients.materialized_count <= 3 * participants
        assert len(runtime.transport.links) <= 3 * participants
        assert runtime.model_pool.created == 1
    assert touches[2048] == touches[8192]


@pytest.mark.parametrize("codec_fn", [lambda: None, lambda: FedSZCompressor(error_bound=1e-2)],
                         ids=["raw", "fedsz"])
def test_corrupted_upload_is_rejected_identically_across_executors(codec_fn):
    """A corrupted client trains and occupies its link, but the checksum
    frame rejects the payload: dropped update, zero accepted bytes, and
    bit-identical accounting under serial/thread/process execution."""
    full = load_dataset("cifar10", num_samples=160, image_size=8, seed=0)
    train, validation = full.split(0.75, seed=1)
    faults = CorruptedUploadSchedule({0: [1], 1: [3]})

    def run(executor_name):
        runtime = FederatedRuntime(
            _model_fn,
            train,
            validation,
            FLConfig(
                num_clients=6, rounds=2, batch_size=16, local_epochs=1,
                client_fraction=1.0, seed=3,
            ),
            codec=codec_fn(),
            executor=_make_executor(executor_name),
            client_faults=faults,
        )
        history = _run_closed(runtime)
        return history

    reference = run("serial")
    rows = reference.deterministic_rows()
    round_zero = reference.records[0]
    corrupted = [s for s in round_zero.client_stats if s.client_id == 1][0]
    assert not corrupted.delivered
    assert corrupted.payload_nbytes > 0  # the wire bytes travelled...
    assert round_zero.uplink_bytes == sum(  # ...but were never accepted
        s.payload_nbytes for s in round_zero.client_stats if s.delivered
    )
    assert round_zero.dropped_clients == 1
    for executor_name in ("thread", "process"):
        assert run(executor_name).deterministic_rows() == rows, executor_name
