"""Tests for client partitioning, data loading and scientific fields."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader,
    dirichlet_partition,
    iid_partition,
    label_distribution,
    load_dataset,
    miranda_like_slice,
    miranda_like_volume,
    partition_dataset,
    smoothness_score,
)
from repro.nn.models import synthetic_pretrained_weights


@pytest.fixture
def dataset():
    return load_dataset("cifar10", num_samples=200, image_size=8, seed=0)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_iid_partition_covers_all_samples_once(dataset):
    parts = iid_partition(dataset, 4, seed=0)
    combined = np.concatenate(parts)
    assert combined.size == len(dataset)
    assert np.unique(combined).size == len(dataset)
    sizes = [p.size for p in parts]
    assert max(sizes) - min(sizes) <= 1


def test_iid_partition_validation(dataset):
    with pytest.raises(ValueError):
        iid_partition(dataset, 0)
    with pytest.raises(ValueError):
        iid_partition(dataset, len(dataset) + 1)


def test_dirichlet_partition_is_disjoint_and_complete(dataset):
    parts = dirichlet_partition(dataset, 4, alpha=0.5, seed=0)
    combined = np.concatenate(parts)
    assert combined.size == len(dataset)
    assert np.unique(combined).size == len(dataset)
    assert all(p.size >= 2 for p in parts)


def test_dirichlet_lower_alpha_is_more_skewed(dataset):
    uniform_parts = partition_dataset(dataset, 4, strategy="dirichlet", alpha=100.0, seed=0)
    skewed_parts = partition_dataset(dataset, 4, strategy="dirichlet", alpha=0.1, seed=0)
    uniform_hist = label_distribution(uniform_parts, dataset.num_classes).astype(float)
    skewed_hist = label_distribution(skewed_parts, dataset.num_classes).astype(float)

    def skewness(histogram):
        proportions = histogram / np.maximum(histogram.sum(axis=1, keepdims=True), 1)
        return float(np.std(proportions, axis=0).mean())

    assert skewness(skewed_hist) > skewness(uniform_hist)


def test_partition_dataset_strategies(dataset):
    for strategy in ("iid", "dirichlet"):
        clients = partition_dataset(dataset, 4, strategy=strategy, seed=0)
        assert len(clients) == 4
        assert sum(len(c) for c in clients) == len(dataset)
    with pytest.raises(ValueError):
        partition_dataset(dataset, 4, strategy="sorted")


def test_dirichlet_partition_validation(dataset):
    with pytest.raises(ValueError):
        dirichlet_partition(dataset, 4, alpha=0.0)
    with pytest.raises(ValueError):
        dirichlet_partition(dataset, 0)


# ----------------------------------------------------------------------
# DataLoader
# ----------------------------------------------------------------------
def test_loader_batches_cover_dataset(dataset):
    loader = DataLoader(dataset, batch_size=32, shuffle=True, seed=0)
    seen = 0
    for images, labels in loader:
        assert images.shape[0] == labels.shape[0]
        seen += labels.shape[0]
    assert seen == len(dataset)
    assert len(loader) == 7  # ceil(200 / 32)


def test_loader_drop_last(dataset):
    loader = DataLoader(dataset, batch_size=32, drop_last=True, seed=0)
    batches = list(loader)
    assert len(batches) == 6
    assert all(images.shape[0] == 32 for images, _ in batches)


def test_loader_shuffle_changes_order_between_epochs(dataset):
    loader = DataLoader(dataset, batch_size=200, shuffle=True, seed=0)
    first_epoch = next(iter(loader))[1]
    second_epoch = next(iter(loader))[1]
    assert not np.array_equal(first_epoch, second_epoch)


def test_loader_no_shuffle_preserves_order(dataset):
    loader = DataLoader(dataset, batch_size=50, shuffle=False)
    labels = np.concatenate([batch_labels for _, batch_labels in loader])
    np.testing.assert_array_equal(labels, dataset.labels)


def test_loader_rejects_bad_batch_size(dataset):
    with pytest.raises(ValueError):
        DataLoader(dataset, batch_size=0)


@settings(max_examples=20, deadline=None)
@given(batch_size=st.integers(min_value=1, max_value=64), drop_last=st.booleans())
def test_loader_length_matches_iteration(batch_size, drop_last):
    dataset = load_dataset("cifar10", num_samples=100, image_size=4, seed=0)
    loader = DataLoader(dataset, batch_size=batch_size, drop_last=drop_last, seed=0)
    assert len(list(loader)) == len(loader)


# ----------------------------------------------------------------------
# Scientific data and smoothness (Figure 2 support)
# ----------------------------------------------------------------------
def test_miranda_like_fields_shapes():
    assert miranda_like_slice(length=256, field="density").shape == (256,)
    assert miranda_like_slice(length=256, field="velocity").shape == (256,)
    assert miranda_like_volume(32, 48, field="density").shape == (32, 48)
    with pytest.raises(ValueError):
        miranda_like_slice(field="pressure")
    with pytest.raises(ValueError):
        miranda_like_volume(field="pressure")


def test_model_weights_are_spikier_than_scientific_data():
    """The Figure 2 contrast: FL parameters vary far more point to point."""
    weights = synthetic_pretrained_weights("alexnet", num_values=5000, seed=0)
    density = miranda_like_slice(length=5000, field="density", seed=0)
    assert smoothness_score(weights) > 5 * smoothness_score(density)


def test_smoothness_score_edge_cases():
    assert smoothness_score(np.array([1.0])) == 0.0
    assert smoothness_score(np.full(100, 3.14)) == 0.0
