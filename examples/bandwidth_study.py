#!/usr/bin/env python
"""When is compression worth it?  (Figure 8 / Eqn. 1 study.)

Sweeps the uplink bandwidth from 1 Mbps to 10 Gbps for an AlexNet-sized
client update compressed with SZ2 / SZ3 / ZFP (Raspberry Pi 5 codec
runtimes), prints the communication time per configuration, and reports each
compressor's crossover bandwidth — the point beyond which sending raw data is
faster (≈500 Mbps in the paper).

Run with::

    python examples/bandwidth_study.py [--model alexnet] [--error-bound 1e-2]
"""

from __future__ import annotations

import argparse

from repro.experiments import crossover_for, run_figure8
from repro.experiments.reporting import render_table
from repro.network import EDGE_BANDWIDTH_MBPS, should_compress


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="alexnet", choices=["alexnet", "mobilenetv2", "resnet50"])
    parser.add_argument("--error-bound", type=float, default=1e-2)
    parser.add_argument("--sample-elements", type=int, default=150_000)
    arguments = parser.parse_args()

    result = run_figure8(
        model=arguments.model,
        error_bound=arguments.error_bound,
        max_elements_per_tensor=arguments.sample_elements,
    )
    print(result.name)
    print(render_table(result.rows))
    print()
    for note in result.notes:
        print(f"note: {note}")

    print()
    print("crossover bandwidth observed in the sweep:")
    for compressor in ("sz2", "sz3", "zfp"):
        print(f"  {compressor}: worthwhile up to ~{crossover_for(result, compressor):.0f} Mbps")

    # Spell out the Eqn.-1 arithmetic for the edge setting the paper highlights.
    edge_rows = [
        row
        for row in result.filter(compressor="sz2")
        if abs(row["bandwidth_mbps"] - EDGE_BANDWIDTH_MBPS) < 1e-6
    ]
    if edge_rows:
        print()
        print(
            f"at the {EDGE_BANDWIDTH_MBPS:g} Mbps edge uplink, SZ2 ships the update in "
            f"{edge_rows[0]['communication_seconds']:.1f}s "
            "(the uncompressed transfer takes "
            f"{[r for r in result.filter(compressor='original') if abs(r['bandwidth_mbps'] - EDGE_BANDWIDTH_MBPS) < 1e-6][0]['communication_seconds']:.1f}s)."
        )
    # A direct Eqn.-1 example with explicit numbers.
    decision = should_compress(
        original_nbytes=244_000_000,
        compressed_nbytes=int(244_000_000 / 12.6),
        compress_seconds=3.2,
        decompress_seconds=1.6,
        bandwidth_mbps=EDGE_BANDWIDTH_MBPS,
    )
    print(
        f"Eqn. 1 with the paper's AlexNet numbers: saves {decision.seconds_saved:.0f}s per update "
        f"({decision.speedup:.1f}x) at 10 Mbps."
    )


if __name__ == "__main__":
    main()
