"""Model profiling: parameter counts, state sizes and FLOPs estimates.

Table III of the FedSZ paper characterises each DNN by parameter count, state
size, the share of data eligible for lossy compression and FLOPs.  The
profiler here reproduces those columns for any model built on the
:mod:`repro.nn` substrate.

FLOPs are counted as multiply-accumulate pairs (2 × MACs) for convolutions and
linear layers during one forward pass of a single sample, which is the
convention the usual PyTorch profilers (and the paper's numbers) follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module


@dataclass(frozen=True)
class ModelProfile:
    """Summary statistics for one model."""

    name: str
    parameter_count: int
    state_nbytes: int
    lossy_fraction: float
    flops: float

    def as_row(self) -> Dict[str, object]:
        """Row representation matching Table III's columns."""
        return {
            "model": self.name,
            "parameters": self.parameter_count,
            "size_mb": self.state_nbytes / 1e6,
            "lossy_data_percent": 100.0 * self.lossy_fraction,
            "flops_g": self.flops / 1e9,
        }


def count_parameters(model: Module) -> int:
    """Total number of trainable parameters."""
    return model.num_parameters()


def lossy_fraction(model: Module, threshold: int = 1024) -> float:
    """Share of state-dict *bytes* that FedSZ would route to the lossy path.

    Algorithm 1 sends tensors whose name contains ``"weight"`` and whose
    flattened size exceeds ``threshold`` to the lossy compressor; everything
    else (biases, BatchNorm statistics, counters) stays lossless.
    """
    state = model.state_dict()
    total = sum(v.nbytes for v in state.values())
    if total == 0:
        return 0.0
    lossy = sum(
        v.nbytes
        for name, v in state.items()
        if "weight" in name and v.size > threshold and np.issubdtype(v.dtype, np.floating)
    )
    return lossy / total


def count_flops(model: Module, input_shape: Tuple[int, int, int]) -> float:
    """Estimate forward FLOPs for a single sample of ``input_shape`` (C, H, W).

    The model's convolution and linear ``forward`` methods are temporarily
    instrumented, a dummy forward pass is run in evaluation mode, and the
    recorded input/output shapes are turned into FLOP counts.
    """
    records: list[float] = []
    patched: list[tuple[Module, object]] = []

    def _instrument(module: Module) -> None:
        original_forward = module.forward

        if isinstance(module, Conv2d):

            def counting_forward(inputs, _module=module, _original=original_forward):
                output = _original(inputs)
                out_positions = output.shape[2] * output.shape[3]
                kernel_ops = (
                    _module.kernel_size
                    * _module.kernel_size
                    * (_module.in_channels // _module.groups)
                )
                macs = kernel_ops * _module.out_channels * out_positions
                records.append(2.0 * macs)
                return output

        else:  # Linear

            def counting_forward(inputs, _module=module, _original=original_forward):
                output = _original(inputs)
                macs = _module.in_features * _module.out_features
                records.append(2.0 * macs)
                return output

        object.__setattr__(module, "forward", counting_forward)
        patched.append((module, original_forward))

    for _, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            _instrument(module)

    was_training = model.training
    model.eval()
    try:
        dummy = np.zeros((1, *input_shape), dtype=np.float32)
        model(dummy)
    finally:
        for module, original in patched:
            object.__setattr__(module, "forward", original)
        model.train(was_training)
    return float(sum(records))


def profile_model(
    model: Module,
    name: str,
    input_shape: Tuple[int, int, int],
    threshold: int = 1024,
) -> ModelProfile:
    """Build the full Table III row for ``model``."""
    return ModelProfile(
        name=name,
        parameter_count=count_parameters(model),
        state_nbytes=model.state_nbytes(),
        lossy_fraction=lossy_fraction(model, threshold),
        flops=count_flops(model, input_shape),
    )
