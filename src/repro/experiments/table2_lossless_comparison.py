"""Table II — lossless codec comparison on AlexNet's metadata partition.

The lossless path of FedSZ only sees the non-weight remainder of the state
dict (biases, BatchNorm statistics, small tensors).  Table II compares
blosc-lz, gzip, xz, zlib and zstd on exactly that payload and concludes that
blosc-lz is the right choice: by far the fastest with a ratio comparable to
the much slower xz.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.compression import evaluate_lossless, get_lossless_compressor
from repro.core.partition import partition_state_dict
from repro.core.serializer import serialize_named_arrays
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import pretrained_like_state_dict
from repro.network.devices import get_device_profile

DEFAULT_CODECS = ("blosc-lz", "gzip", "xz", "zlib", "zstd")


def metadata_payload(
    model: str = "alexnet",
    dataset: str = "cifar10",
    max_elements_per_tensor: Optional[int] = 200_000,
    min_payload_mb: float = 4.0,
    seed: int = 0,
) -> bytes:
    """Serialize the lossless partition of a paper-scale model state dict.

    AlexNet's metadata partition is small (a few hundred kilobytes of biases),
    so the payload is tiled up to ``min_payload_mb`` to make codec timings
    stable — the ratio is unaffected because the tiling preserves the byte
    statistics the codecs see.
    """
    state = pretrained_like_state_dict(model, dataset, max_elements_per_tensor, seed)
    partition = partition_state_dict(state)
    payload = serialize_named_arrays(partition.lossless)
    if min_payload_mb and len(payload) < min_payload_mb * 1e6:
        # Top the payload up with additional metadata-like float tensors
        # (running means / variances / counters) so codec timings are stable;
        # the filler has the same statistical character as the real partition.
        rng = np.random.default_rng(seed)
        missing = int(min_payload_mb * 1e6) - len(payload)
        count = missing // 12 + 1
        filler = {
            "filler.running_mean": rng.normal(0.0, 1.0, count).astype(np.float32),
            "filler.running_var": np.abs(rng.normal(1.0, 0.2, count)).astype(np.float32),
            "filler.num_batches_tracked": np.arange(count, dtype=np.int32),
        }
        payload += serialize_named_arrays(filler)
    return payload


def run_table2(
    codecs: Sequence[str] = DEFAULT_CODECS,
    model: str = "alexnet",
    device: Optional[str] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table II (runtime, throughput, ratio per lossless codec)."""
    result = ExperimentResult(
        name="Table II — lossless compressor comparison (AlexNet metadata)",
        description="Runtime, throughput and ratio of the lossless path candidates.",
    )
    payload = metadata_payload(model=model, seed=seed)
    profile = get_device_profile(device) if device else None

    for codec_name in codecs:
        codec = get_lossless_compressor(codec_name)
        evaluation = evaluate_lossless(codec, payload)
        if profile is not None:
            runtime = profile.lossless_seconds(codec_name, len(payload))
            throughput = len(payload) / 1e6 / runtime
            runtime_source = profile.name
        else:
            runtime = evaluation.compress_seconds
            throughput = evaluation.compress_throughput_mbps
            runtime_source = "local"
        result.add_row(
            compressor=codec_name,
            runtime_seconds=runtime,
            throughput_mb_s=throughput,
            ratio=evaluation.ratio,
            payload_mb=len(payload) / 1e6,
            runtime_source=runtime_source,
        )

    fastest = min(result.rows, key=lambda row: row["runtime_seconds"])
    result.add_note(f"fastest codec: {fastest['compressor']}")
    best_ratio = max(result.rows, key=lambda row: row["ratio"])
    result.add_note(f"best ratio: {best_ratio['compressor']} ({best_ratio['ratio']:.3f}x)")
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table2().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
