"""Integration-style tests for the federated simulation loop."""

from __future__ import annotations

import pytest

from repro.core import FedSZCompressor, IdentityCodec
from repro.data import load_dataset
from repro.fl import FLConfig, FLSimulation, run_federated_training
from repro.nn.models import create_model


@pytest.fixture(scope="module")
def data():
    full = load_dataset("cifar10", num_samples=320, image_size=8, seed=0)
    return full.split(0.75, seed=1)


@pytest.fixture
def model_fn():
    return lambda: create_model("resnet50", "tiny", num_classes=10, seed=7)


@pytest.fixture
def config():
    return FLConfig(
        num_clients=4,
        rounds=2,
        local_epochs=1,
        batch_size=32,
        learning_rate=0.05,
        bandwidth_mbps=10.0,
        seed=3,
    )


def test_simulation_runs_and_records_history(data, model_fn, config):
    train, val = data
    simulation = FLSimulation(model_fn, train, val, config, codec=None)
    history = simulation.run()
    assert len(history) == config.rounds
    assert len(simulation.clients) == config.num_clients
    record = history.records[0]
    assert record.uplink_bytes > 0
    assert record.uplink_seconds > 0
    assert record.train_seconds > 0
    assert 0.0 <= record.global_accuracy <= 1.0
    assert history.total_uplink_bytes == sum(r.uplink_bytes for r in history.records)


def test_simulation_with_fedsz_reduces_uplink_bytes(data, model_fn, config):
    train, val = data
    raw = FLSimulation(model_fn, train, val, config, codec=None).run(1)
    fedsz = FLSimulation(
        model_fn, train, val, config, codec=FedSZCompressor(error_bound=1e-2)
    ).run(1)
    assert fedsz.records[0].uplink_bytes < raw.records[0].uplink_bytes
    assert fedsz.records[0].uplink_seconds < raw.records[0].uplink_seconds
    assert fedsz.records[0].mean_compression_ratio > 1.0
    assert fedsz.records[0].compression_seconds > 0


def test_simulation_accuracy_with_and_without_compression_is_close(data, model_fn):
    """At the recommended 1e-2 bound, compression should not change the
    training trajectory dramatically (Figure 4's observation)."""
    train, val = data
    config = FLConfig(num_clients=2, rounds=2, batch_size=32, learning_rate=0.05, seed=5)
    raw_history = FLSimulation(model_fn, train, val, config, codec=None).run()
    fedsz_history = FLSimulation(
        model_fn, train, val, config, codec=FedSZCompressor(error_bound=1e-2)
    ).run()
    assert abs(raw_history.final_accuracy - fedsz_history.final_accuracy) < 0.25


def test_identity_codec_matches_no_codec_semantics(data, model_fn, config):
    train, val = data
    raw = FLSimulation(model_fn, train, val, config, codec=None).run(1)
    identity = FLSimulation(model_fn, train, val, config, codec=IdentityCodec()).run(1)
    # Identity codec serializes but does not compress, so accuracies match and
    # payloads stay in the same size class.
    assert identity.records[0].mean_compression_ratio == pytest.approx(1.0, rel=0.05)
    assert abs(raw.records[0].global_accuracy - identity.records[0].global_accuracy) < 1e-6


def test_simulation_is_seed_reproducible(data, model_fn, config):
    train, val = data
    history_a = FLSimulation(model_fn, train, val, config, codec=None).run(1)
    history_b = FLSimulation(model_fn, train, val, config, codec=None).run(1)
    assert history_a.records[0].global_accuracy == pytest.approx(
        history_b.records[0].global_accuracy, abs=1e-9
    )


def test_dirichlet_partition_strategy_runs(data, model_fn):
    train, val = data
    config = FLConfig(
        num_clients=3,
        rounds=1,
        partition_strategy="dirichlet",
        dirichlet_alpha=0.5,
        batch_size=16,
        seed=11,
    )
    history = FLSimulation(model_fn, train, val, config).run()
    assert len(history) == 1


def test_run_federated_training_wrapper(data, model_fn):
    train, val = data
    config = FLConfig(num_clients=2, rounds=1, batch_size=32, seed=0)
    history = run_federated_training(model_fn, train, val, config)
    assert len(history) == 1


def test_history_summaries(data, model_fn, config):
    train, val = data
    history = FLSimulation(model_fn, train, val, config, codec=FedSZCompressor()).run()
    assert history.final_accuracy == history.records[-1].global_accuracy
    assert history.best_accuracy >= history.final_accuracy - 1e-9
    assert history.total_compression_seconds > 0
    breakdown = history.mean_epoch_breakdown()
    assert breakdown.total_seconds > 0
    rows = history.as_rows()
    assert len(rows) == len(history)
    assert {"round", "accuracy", "uplink_mb"} <= set(rows[0])
    assert len(history.accuracies()) == config.rounds
