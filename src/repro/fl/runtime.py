"""The layered federated runtime: scheduler + executor + transport.

:class:`FederatedRuntime` owns the server, the client population and the
round-by-round history, and delegates the three orthogonal concerns to
pluggable layers:

* the **scheduler** (:mod:`repro.fl.scheduler`) decides what a round means —
  synchronous FedAvg, semi-synchronous with a straggler deadline, or
  asynchronous staleness-weighted mixing;
* the **executor** (:mod:`repro.fl.executor`) decides how client work runs —
  strictly sequential or concurrently on a thread pool;
* the **transport** (:mod:`repro.fl.transport`) decides what each client's
  link looks like — one shared channel (the seed behaviour) or heterogeneous
  per-client bandwidth/latency/straggler/dropout profiles.

The client population is **lazy** (:mod:`repro.fl.state`): client objects are
materialised on first access and models are borrowed from a bounded
:class:`~repro.fl.state.ModelPool`, so a 256–1024-client fleet costs
O(max_workers) resident models instead of O(num_clients).  An optional
**participation schedule** (:mod:`repro.fl.scenarios`) masks which clients
are available each round before sampling — diurnal availability, flash
crowds, and other fleet dynamics compose with every scheduler.

The default composition (sync + serial + homogeneous + always-available)
reproduces the seed ``FLSimulation`` numbers exactly;
:class:`repro.fl.FLSimulation` is now a thin facade over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.compression.base import ErrorBoundMode, resolve_error_bound
from repro.data.datasets import SyntheticImageDataset
from repro.data.partition import partition_dataset
from repro.fl.broadcast import BroadcastCache, BroadcastPayload
from repro.fl.client import FLClient
from repro.fl.config import FLConfig, participant_count
from repro.fl.executor import ClientResult, ClientTask, build_executor
from repro.fl.history import ClientRoundStat, RoundRecord, TrainingHistory
from repro.fl.scheduler import RoundScheduler, SynchronousScheduler
from repro.fl.server import FLServer
from repro.fl.state import ClientRegistry, ModelPool
from repro.fl.transport import Transport
from repro.nn.module import Module
from repro.utils.seeding import SeedSequenceFactory


def _measured_codec_seconds(stats) -> float:
    """Measured per-tensor codec seconds behind one transfer, if reported.

    FedSZ reports carry a per-tensor compress-time map (the codec-kernel wall,
    as opposed to the whole-pipeline ``compress_seconds``); codecs without one
    (identity baseline, custom codecs) contribute 0.0 and downstream consumers
    fall back to the aggregate timing.
    """
    report = getattr(stats, "report", None)
    per_tensor = getattr(report, "per_tensor_compress_seconds", None)
    if not per_tensor:
        return 0.0
    return float(sum(per_tensor.values()))


def _codec_error_bound(codec) -> tuple:
    """The ``(bound, mode)`` the uplink codec enforces, or ``(0.0, "")``.

    Adaptive codecs expose the bound the *next* compress call will use as
    ``current_bound`` (always REL — they re-target a REL-mode FedSZ config);
    static codecs carry it on their dataclass ``config``.  Codecs without
    either (identity baseline, custom codecs) are simply untracked.
    """
    if codec is None:
        return 0.0, ""
    bound = getattr(codec, "current_bound", None)
    if bound is not None:
        return float(bound), ErrorBoundMode.REL.name
    config = getattr(codec, "config", None)
    bound = getattr(config, "error_bound", None)
    if bound is None:
        return 0.0, ""
    mode = getattr(config, "error_bound_mode", ErrorBoundMode.REL)
    return float(bound), getattr(mode, "name", str(mode))


def _bound_utilization(result, bound: float, mode: str) -> Dict[str, float]:
    """Per-tensor fraction of the error bound one delivered update consumed.

    ``max|original - reconstructed| / resolved_bound`` for every lossy tensor
    (the codec report names them via ``per_tensor_ratio``; codecs without a
    report fall back to every tensor).  Pure arithmetic over states every
    executor already ships back, so tracking perturbs no RNG stream and the
    values are bit-identical across serial/thread/process runs.
    """
    report = getattr(result.stats, "report", None)
    lossy_names = getattr(report, "per_tensor_ratio", None)
    original = result.update.state_dict
    received = result.state
    names = lossy_names if lossy_names else original
    mode_enum = ErrorBoundMode.ABS if mode == "ABS" else ErrorBoundMode.REL
    utilization: Dict[str, float] = {}
    for name in names:
        if name not in original or name not in received:
            continue
        a = np.asarray(original[name])
        b = np.asarray(received[name])
        if a.shape != b.shape or a.size == 0:
            continue
        error = float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))
        resolved = resolve_error_bound(a, bound, mode_enum)
        if resolved > 0.0:
            utilization[name] = error / resolved
        else:  # zero-range tensor under a REL bound: exact or infinitely over
            utilization[name] = 0.0 if error == 0.0 else float("inf")
    return utilization


@dataclass
class DownlinkStats:
    """Accounting for one round's broadcast phase.

    ``per_client_seconds[i]`` is the simulated time until client ``i`` holds
    the broadcast: its own link time when links are independent (they
    transmit in parallel), or its cumulative queue position on a shared
    homogeneous channel (the copies ship back to back, so later clients wait
    for earlier ones).  ``wallclock_seconds`` is the max over those waits —
    when the last participant can start training.  ``aggregate_seconds`` is
    the sum of per-link transmission times — the server-egress view.
    """

    payload_nbytes: int = 0
    total_bytes: int = 0
    per_client_seconds: Dict[int, float] = field(default_factory=dict)
    wallclock_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    #: Measured codec seconds spent preparing the broadcast itself (non-zero
    #: only with ``compress_downlink`` on a cache miss): the server-side
    #: compress and the reference decompress clients train against.
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0


@dataclass
class RoundContext:
    """Everything prepared before client execution starts."""

    round_index: int
    participants: List[FLClient]
    broadcast_state: Dict[str, np.ndarray]
    learning_rate: float
    downlink: DownlinkStats
    tasks: List[ClientTask] = field(default_factory=list)
    #: The round's single wire buffer (``None`` unless the executor asked for
    #: one via ``wants_broadcast_payload``); shared by every task.
    broadcast_payload: Optional[BroadcastPayload] = None

    @property
    def downlink_bytes(self) -> int:
        """Total broadcast bytes across participants."""
        return self.downlink.total_bytes

    @property
    def downlink_seconds(self) -> float:
        """Simulated broadcast wall-clock (see :class:`DownlinkStats`)."""
        return self.downlink.wallclock_seconds


class FederatedRuntime:
    """Composable federated training runtime (see module docstring)."""

    def __init__(
        self,
        model_fn: Callable[[], Module],
        train_dataset: SyntheticImageDataset,
        validation_dataset: SyntheticImageDataset,
        config: Optional[FLConfig] = None,
        codec=None,
        scheduler: Optional[RoundScheduler] = None,
        executor=None,
        transport: Optional[Transport] = None,
        schedule=None,
        fault_injector=None,
        client_faults=None,
        monitor=None,
    ) -> None:
        self.config = config or FLConfig()
        self.codec = codec
        self.scheduler = scheduler or SynchronousScheduler()
        # An explicit executor object wins; otherwise the config names one
        # (``executor="serial"`` by default, so default runs are unchanged).
        self.executor = executor or build_executor(
            self.config.executor, self.config.max_workers
        )
        #: Optional per-round availability mask (see :mod:`repro.fl.scenarios`).
        self.schedule = schedule
        #: Optional per-round failure hook (see
        #: :class:`repro.fl.scenarios.FaultInjector`); consulted by :meth:`run`
        #: after each round's checkpoint is persisted.
        self.fault_injector = fault_injector
        #: Optional per-(round, client) fault source (see
        #: :class:`repro.fl.scenarios.ClientCrashSchedule`): consulted while
        #: building each round's tasks, attaching a fault to doomed clients.
        self.client_faults = client_faults
        #: Once-per-round broadcast preparation (see :mod:`repro.fl.broadcast`).
        self.broadcast_cache = BroadcastCache()
        #: Optional :class:`repro.obs.RunMonitor`.  Strictly passive — it only
        #: ever *reads* completed round records and counters, never touches an
        #: RNG stream — so a monitored run is bit-identical to an unmonitored
        #: one (asserted in ``tests/obs/test_monitor_server.py``).
        self.monitor = monitor

        # Seed-derivation order matches the seed FLSimulation exactly
        # (partition, clients, sampling) so default runs are bit-compatible;
        # transport streams draw after and do not perturb them.
        seeds = SeedSequenceFactory(self.config.seed)
        client_datasets = partition_dataset(
            train_dataset,
            self.config.num_clients,
            strategy=self.config.partition_strategy,
            alpha=self.config.dirichlet_alpha,
            seed=seeds.next_seed(),
        )
        self.server = FLServer(
            model_fn, validation_dataset, eval_batch_size=self.config.eval_batch_size
        )
        client_seeds = [seeds.next_seed() for _ in client_datasets]
        self.model_pool = ModelPool(
            model_fn, max_models=self._resolve_pool_size(self.executor)
        )
        self.clients = ClientRegistry(
            model_fn, client_datasets, self.config, client_seeds, self.model_pool
        )
        self.history = TrainingHistory()
        self._sampling_rng = np.random.default_rng(seeds.next_seed())

        self.transport = transport or Transport.homogeneous(
            bandwidth_mbps=self.config.bandwidth_mbps
        )
        self.transport.bind(len(self.clients), seed=seeds.next_seed())

        # Executors with worker processes need the client-population recipe
        # (model factory, partition, seeds) to rebuild it on their side.
        bind = getattr(self.executor, "bind_runtime", None)
        if callable(bind):
            bind(self)

        #: Optional discrete-event engine (:mod:`repro.fl.events`): rounds and
        #: control actions flow through a deterministic event queue and the
        #: eligible set is maintained incrementally from availability
        #: transitions.  ``engine="rounds"`` (the default) keeps the legacy
        #: loop; both produce bit-identical histories and weights.
        self.engine = None
        if self.config.engine == "events":
            from repro.fl.events import FleetEngine

            self.engine = FleetEngine(self)

    def close(self) -> None:
        """Release executor resources (worker processes); idempotent.

        Serial and thread executors hold nothing and make this a no-op, so
        callers can ``close()`` unconditionally.
        """
        close = getattr(self.executor, "close", None)
        if callable(close):
            close()

    def _resolve_pool_size(self, executor) -> Optional[int]:
        """Model-pool bound: explicit config, else the executor's concurrency."""
        if self.config.max_resident_models is not None:
            return self.config.max_resident_models
        return getattr(executor, "max_workers", None)

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def run(
        self,
        rounds: Optional[int] = None,
        *,
        checkpoint_dir: Optional[Path | str] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        keep_checkpoints: int = 3,
        fault_injector=None,
    ) -> TrainingHistory:
        """Run communication rounds, optionally crash-safe.

        Without checkpoint arguments this behaves as it always has: ``rounds``
        more rounds are executed (defaulting to the configured count).

        With ``checkpoint_dir`` set, a :class:`~repro.fl.checkpoint.RunCheckpoint`
        is written atomically after every ``checkpoint_every``-th round (and
        always after the final one), keeping the newest ``keep_checkpoints``
        snapshots.  With ``resume=True`` the latest snapshot in
        ``checkpoint_dir`` is restored first — the runtime must have been
        constructed with the same configuration, scheduler, schedule and
        transport as the crashed run — and ``rounds`` becomes the *absolute*
        round target for the whole run (again defaulting to the configured
        count), so the call executes only the rounds the crash swallowed.
        Resume is bit-identical: final weights and all simulation-determined
        history fields match an uninterrupted run exactly.  When no snapshot
        exists yet, ``resume=True`` simply starts from round zero — the flag
        is safe to pass unconditionally on every (re)launch.

        ``fault_injector`` (defaulting to the one the runtime was constructed
        with, e.g. a :class:`~repro.fl.scenarios.ServerCrashSchedule`) is
        consulted *after* each round's checkpoint is persisted — the
        worst-case crash point — and may raise to kill the run.
        """
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be at least 1, got {checkpoint_every}")
        injector = fault_injector if fault_injector is not None else self.fault_injector
        directory = Path(checkpoint_dir) if checkpoint_dir is not None else None
        monitor = self.monitor

        if resume:
            from repro.fl.checkpoint import (
                fired_crash_rounds,
                latest_checkpoint,
                load_checkpoint,
                restore_runtime,
            )

            if directory is None:
                raise ValueError("resume=True requires checkpoint_dir")
            latest = latest_checkpoint(directory)
            if latest is not None:
                restore_runtime(self, load_checkpoint(latest))
            # One-shot fault schedules must not re-fire for crashes that
            # already happened: a crash round that fell between sparse
            # checkpoints — or before the very first checkpoint, in which
            # case there is no snapshot at all — is re-executed on resume and
            # would otherwise be re-crashed by every resume attempt.  The
            # durable markers say exactly which crashes fired.
            on_resume = getattr(injector, "on_resume", None)
            if callable(on_resume):
                on_resume(len(self.history), fired_crash_rounds(directory))
            target = rounds if rounds is not None else self.config.rounds
        else:
            target = len(self.history) + (
                rounds if rounds is not None else self.config.rounds
            )

        if monitor is not None:
            monitor.run_started(self, target_rounds=target)
        try:
            if self.engine is not None:
                self.engine.run(
                    target,
                    directory=directory,
                    checkpoint_every=checkpoint_every,
                    keep_checkpoints=keep_checkpoints,
                    injector=injector,
                )
            else:
                while len(self.history) < target:
                    self.run_round()
                    completed = len(self.history)
                    if directory is not None and (
                        completed % checkpoint_every == 0 or completed >= target
                    ):
                        self._write_due_checkpoint(directory, keep_checkpoints)
                    if injector is not None:
                        self._consult_injector(injector, completed - 1, directory)
        except BaseException as error:
            if monitor is not None:
                monitor.run_finished(status="crashed", error=error)
            raise
        if monitor is not None:
            monitor.run_finished(status="completed")
        return self.history

    def _write_due_checkpoint(self, directory: Path, keep_checkpoints: int) -> None:
        """Persist a checkpoint for the last completed round (due-check is the
        caller's: the legacy loop and the event engine share this body)."""
        from repro.fl.checkpoint import capture_runtime, write_checkpoint

        path = write_checkpoint(
            capture_runtime(self), directory, keep_last=keep_checkpoints
        )
        if self.monitor is not None:
            self.monitor.checkpoint_written(len(self.history) - 1, path)

    def _consult_injector(self, injector, round_index: int, directory) -> None:
        """Give the fault injector its post-checkpoint shot at ``round_index``."""
        try:
            injector.after_round(round_index)
        except BaseException as fault:
            # Leave a durable trace of the simulated failure so a resumed
            # process knows this one-shot event already fired (real crashes
            # need no such bookkeeping — only simulated ones are
            # re-executable).
            fault_round = getattr(fault, "round_index", None)
            if directory is not None and fault_round is not None:
                from repro.fl.checkpoint import record_crash_marker

                record_crash_marker(directory, fault_round)
            if self.monitor is not None:
                self.monitor.fault_injected(round_index, fault)
            raise

    def run_round(self) -> RoundRecord:
        """Execute one round under the configured scheduler."""
        if self.engine is not None:
            return self.engine.run_round()
        return self.scheduler.run_round(self)

    # ------------------------------------------------------------------
    # Scheduler-facing primitives
    # ------------------------------------------------------------------
    def start_round(self, eligible: Optional[np.ndarray] = None) -> RoundContext:
        """Sample participants, broadcast the global state, build client tasks.

        ``eligible`` (sorted client ids) lets the event engine hand over its
        incrementally maintained eligible set, skipping the full-fleet mask
        recomputation; ``None`` keeps the legacy mask path.
        """
        round_index = len(self.history)
        participants = self._sample_clients(round_index, eligible=eligible)
        learning_rate = (
            self.config.learning_rate * self.config.learning_rate_decay**round_index
        )
        broadcast_state, downlink, payload = self._broadcast(participants)
        context = RoundContext(
            round_index=round_index,
            participants=participants,
            broadcast_state=broadcast_state,
            learning_rate=learning_rate,
            downlink=downlink,
            broadcast_payload=payload,
        )
        context.tasks = [
            ClientTask(
                client=client,
                link=self.transport.uplink(client.client_id),
                broadcast_state=broadcast_state,
                learning_rate=learning_rate,
                downlink_seconds=downlink.per_client_seconds.get(client.client_id, 0.0),
                fault=(
                    self.client_faults.fault_for(round_index, client.client_id)
                    if self.client_faults is not None
                    else None
                ),
                broadcast_payload=payload,
            )
            for client in participants
        ]
        return context

    def execute_clients(self, context: RoundContext) -> List[ClientResult]:
        """Run the round's client tasks through the executor layer."""
        return self.executor.run_clients(context.tasks, codec=self.codec)

    def finish_round(
        self,
        context: RoundContext,
        results: List[ClientResult],
        aggregated_ids,
        round_seconds: float,
        client_weights: Optional[Dict[int, float]] = None,
        client_staleness: Optional[Dict[int, int]] = None,
    ) -> RoundRecord:
        """Evaluate the global model and append the round record."""
        evaluation = self.server.evaluate()
        client_weights = client_weights or {}
        client_staleness = client_staleness or {}

        # Bound-pressure accounting: how much of the codec's error bound each
        # delivered update actually consumed, per tensor.  Feeds the
        # observability layer's near-violation ranking (repro.obs.report).
        error_bound, bound_mode = _codec_error_bound(self.codec)
        client_utilization: Dict[int, float] = {}
        tensor_utilization: Dict[str, float] = {}
        if self.codec is not None and error_bound > 0.0:
            for result in results:
                if not result.delivered or not result.update.state_dict:
                    continue
                per_tensor = _bound_utilization(result, error_bound, bound_mode)
                if per_tensor:
                    client_utilization[result.client_id] = max(per_tensor.values())
                for name, value in per_tensor.items():
                    tensor_utilization[name] = max(tensor_utilization.get(name, 0.0), value)

        client_stats = [
            ClientRoundStat(
                client_id=result.client_id,
                num_samples=result.update.num_samples,
                train_loss=result.update.train_loss,
                train_accuracy=result.update.train_accuracy,
                train_seconds=result.update.train_seconds,
                compress_seconds=result.stats.compress_seconds,
                decompress_seconds=result.stats.decompress_seconds,
                measured_codec_seconds=_measured_codec_seconds(result.stats),
                transfer_seconds=result.stats.transfer_seconds,
                payload_nbytes=result.stats.payload_nbytes,
                compression_ratio=result.stats.ratio,
                downlink_seconds=context.downlink.per_client_seconds.get(
                    result.client_id, 0.0
                ),
                turnaround_seconds=result.turnaround_seconds,
                delivered=result.delivered,
                aggregated=result.client_id in aggregated_ids,
                staleness=client_staleness.get(result.client_id, 0),
                weight=client_weights.get(result.client_id, 0.0),
                bound_utilization=client_utilization.get(result.client_id, 0.0),
            )
            for result in results
        ]

        ratios = [result.stats.ratio for result in results]
        record = RoundRecord(
            round_index=context.round_index,
            global_accuracy=evaluation.accuracy,
            global_loss=evaluation.loss,
            mean_client_loss=(
                float(np.mean([r.update.train_loss for r in results])) if results else 0.0
            ),
            mean_client_accuracy=(
                float(np.mean([r.update.train_accuracy for r in results]))
                if results
                else 0.0
            ),
            # Only delivered updates contribute uplink bytes: a payload lost in
            # transit never reached the server, so counting it would overstate
            # the ingress the run actually paid for.  Transfer *time* still
            # sums over every attempt — the link was occupied (and synchronous
            # servers wait out the window) whether or not the bytes arrived.
            uplink_bytes=sum(
                result.stats.payload_nbytes for result in results if result.delivered
            ),
            uplink_seconds=float(sum(result.stats.transfer_seconds for result in results)),
            compression_seconds=float(sum(r.stats.compress_seconds for r in results)),
            decompression_seconds=float(sum(r.stats.decompress_seconds for r in results)),
            measured_codec_seconds=float(
                sum(_measured_codec_seconds(r.stats) for r in results)
            ),
            train_seconds=float(sum(r.update.train_seconds for r in results)),
            validation_seconds=evaluation.seconds,
            mean_compression_ratio=float(np.mean(ratios)) if ratios else 1.0,
            downlink_bytes=context.downlink.total_bytes,
            downlink_seconds=context.downlink.wallclock_seconds,
            downlink_aggregate_seconds=context.downlink.aggregate_seconds,
            broadcast_compress_seconds=context.downlink.compress_seconds,
            broadcast_decompress_seconds=context.downlink.decompress_seconds,
            participating_clients=len(context.participants),
            client_stats=client_stats,
            dropped_clients=sum(1 for result in results if not result.delivered),
            straggler_clients=sum(
                1
                for result in results
                if result.delivered and result.client_id not in aggregated_ids
            ),
            simulated_round_seconds=float(round_seconds),
            error_bound=error_bound,
            error_bound_mode=bound_mode,
            tensor_bound_utilization=tensor_utilization,
        )
        self.history.add(record)
        if self.monitor is not None:
            self.monitor.round_completed(record, runtime=self)
        return record

    # ------------------------------------------------------------------
    # Sampling and broadcast
    # ------------------------------------------------------------------
    def _sample_clients(
        self, round_index: int = 0, eligible: Optional[np.ndarray] = None
    ) -> List[FLClient]:
        """Sample this round's participants.

        When a participation schedule is configured, its availability mask
        restricts the eligible pool first; sampling then draws
        ``participant_count(client_fraction, len(eligible))`` clients (an
        explicit ceiling — see :func:`repro.fl.config.participant_count`)
        from the eligible set, so participation tracks fleet availability.
        Without a schedule the seed sampling path is used unchanged (the
        count is taken over the whole fleet), keeping default runs
        bit-identical.

        A pre-computed ``eligible`` array (the event engine's incrementally
        maintained set, equal to ``np.nonzero(mask)[0]``) bypasses the mask
        computation; the RNG draw is identical because ``Generator.choice``
        depends only on the pool size and draw count.
        """
        num_clients = len(self.clients)
        if eligible is None and self.schedule is not None:
            mask = np.asarray(self.schedule.mask(round_index, num_clients), dtype=bool)
            if mask.shape != (num_clients,):
                raise ValueError(
                    f"availability mask has shape {mask.shape}, expected ({num_clients},)"
                )
            eligible = np.nonzero(mask)[0]
        if eligible is not None:
            eligible = np.asarray(eligible, dtype=np.int64)
            if eligible.size == 0:
                return []

        if self.config.client_fraction >= 1.0:
            if eligible is None:
                return list(self.clients)
            return [self.clients[index] for index in eligible]

        if eligible is None:
            count = participant_count(self.config.client_fraction, num_clients)
            indices = self._sampling_rng.choice(num_clients, size=count, replace=False)
        else:
            count = participant_count(self.config.client_fraction, int(eligible.size))
            indices = self._sampling_rng.choice(eligible, size=count, replace=False)
        return [self.clients[index] for index in sorted(indices)]

    def _broadcast(self, participants: List[FLClient]) -> tuple:
        """Prepare the broadcast state and its downlink accounting.

        The paper compresses the uplink only; ``compress_downlink`` extends
        the codec to the broadcast path, in which case clients train on the
        state they actually receive (including the compression error).

        All serialization and codec work goes through the
        :class:`~repro.fl.broadcast.BroadcastCache`, so it happens **at most
        once per round** — and not at all when nothing changed since the
        previous round — with the codec seconds measured rather than burned
        untimed.  The wire buffer (``payload``) is built only when the active
        executor asks for one (``wants_broadcast_payload``).

        Returns ``(state, DownlinkStats, payload_or_None)``.  Independent
        heterogeneous links broadcast in parallel, so the wall-clock is the
        slowest link's time; a shared homogeneous channel serialises the
        copies (the seed arithmetic), so each client's receive time is its
        cumulative queue position and the wall-clock is the full queue.
        """
        global_state = self.server.global_state()
        build_payload = bool(getattr(self.executor, "wants_broadcast_payload", False))
        state, nbytes, payload, compress_seconds, decompress_seconds = (
            self.broadcast_cache.round_state(
                global_state,
                self.codec,
                self.config.compress_downlink,
                build_payload=build_payload,
            )
        )

        transmission = {
            client.client_id: self.transport.downlink_seconds(nbytes, client.client_id)
            for client in participants
        }
        aggregate = float(sum(transmission.values()))
        if self.transport.is_homogeneous:
            # One shared channel ships the copies back to back: client i's
            # copy only starts once the previous i copies have gone out, so
            # its receive time is the cumulative queue position.
            per_client = {}
            elapsed = 0.0
            for client in participants:
                elapsed += transmission[client.client_id]
                per_client[client.client_id] = elapsed
            wallclock = elapsed
        else:
            per_client = transmission
            wallclock = max(per_client.values(), default=0.0)
        downlink = DownlinkStats(
            payload_nbytes=nbytes,
            total_bytes=nbytes * len(participants),
            per_client_seconds=per_client,
            wallclock_seconds=wallclock,
            aggregate_seconds=aggregate,
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
        )
        return state, downlink, payload

    @property
    def channel(self):
        """The shared channel for homogeneous transports (``None`` otherwise)."""
        return self.transport.channel
