"""Pure-numpy neural-network substrate (the PyTorch stand-in).

Provides the ``Module`` / ``Parameter`` / ``state_dict`` surface the FedSZ
pipeline compresses, the layers needed by AlexNet / MobileNetV2 / ResNet, a
cross-entropy loss, SGD, and model profiling utilities.
"""

from repro.nn import functional
from repro.nn.flops import ModelProfile, count_flops, count_parameters, lossy_fraction, profile_model
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sequential,
)
from repro.nn.losses import CrossEntropyLoss, cross_entropy_with_grad
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.nn.parameter import Parameter

__all__ = [
    "functional",
    "ModelProfile",
    "count_flops",
    "count_parameters",
    "lossy_fraction",
    "profile_model",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "ReLU6",
    "Sequential",
    "CrossEntropyLoss",
    "cross_entropy_with_grad",
    "Module",
    "SGD",
    "Parameter",
]
