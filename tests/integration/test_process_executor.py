"""Acceptance tests for the process-parallel executor and its broadcast cache.

Three guarantees are pinned here:

* **determinism** — serial, thread and process executors produce bit-identical
  ``TrainingHistory.deterministic_rows()`` (and final weights) on a config that
  stresses every stream: participant sampling, link dropout, mobilenet-style
  stochastic layers and a FedSZ codec;
* **fault isolation** — a :class:`~repro.fl.scenarios.ClientCrash` fired inside
  a worker process surfaces as a dropped update with zero payload bytes, never
  a hung pool, and stays bit-identical across executors;
* **broadcast economy** — the global state is serialized/compressed at most
  once per round (cache counters), workers decode once per (round, worker),
  and a repeat broadcast (crash-all round) is a cache hit everywhere.

The >= 2x speedup claim is asserted only on hosts with >= 4 cores (the process
pool cannot beat serial without cores to run on); the overhead bound and all
byte-identity checks run everywhere — same gating as
``tests/integration/test_codec_parallel_speedup.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FedSZCompressor
from repro.data import load_dataset
from repro.fl import (
    ClientCrashSchedule,
    FederatedRuntime,
    FLConfig,
    LinkSpec,
    ParallelExecutor,
    ProcessParallelExecutor,
    SerialExecutor,
    Transport,
)
from repro.nn.models import create_model

WORKERS = 4
EXECUTORS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def data():
    full = load_dataset("cifar10", num_samples=160, image_size=8, seed=0)
    return full.split(0.75, seed=1)


def _make_executor(name: str, workers: int = 2):
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ParallelExecutor(max_workers=workers)
    return ProcessParallelExecutor(max_workers=workers)


def _build_runtime(
    data,
    executor_name: str,
    *,
    rounds: int = 3,
    client_fraction: float = 0.5,
    dropout: float = 0.3,
    client_faults=None,
) -> FederatedRuntime:
    train, val = data
    return FederatedRuntime(
        lambda: create_model("resnet18", "tiny", num_classes=10, seed=7),
        train,
        val,
        FLConfig(
            num_clients=4,
            rounds=rounds,
            batch_size=16,
            local_epochs=1,
            client_fraction=client_fraction,
            seed=3,
        ),
        codec=FedSZCompressor(error_bound=1e-2),
        executor=_make_executor(executor_name),
        transport=Transport.heterogeneous(
            [
                LinkSpec(bandwidth_mbps=bw, dropout_probability=dropout)
                for bw in (5.0, 10.0, 25.0, 50.0)
            ]
        ),
        client_faults=client_faults,
    )


def _run_all(data, **kwargs):
    """One full run per executor, closed afterwards; returns the runtimes."""
    runtimes = {}
    try:
        for name in EXECUTORS:
            runtime = _build_runtime(data, name, **kwargs)
            runtimes[name] = runtime
            runtime.run()
    finally:
        for runtime in runtimes.values():
            runtime.close()
    return runtimes


def _assert_states_identical(reference: FederatedRuntime, other: FederatedRuntime):
    reference_state = reference.server.global_state()
    other_state = other.server.global_state()
    assert reference_state.keys() == other_state.keys()
    for name in reference_state:
        np.testing.assert_array_equal(reference_state[name], other_state[name], err_msg=name)


def test_serial_thread_process_are_bit_identical(data):
    runtimes = _run_all(data)
    reference = runtimes["serial"]
    rows = reference.history.deterministic_rows()
    assert len(rows) == 3
    for name in ("thread", "process"):
        assert runtimes[name].history.deterministic_rows() == rows, name
        _assert_states_identical(reference, runtimes[name])


def test_client_crash_is_a_dropped_update_not_a_hung_pool(data):
    """Crash every participant of round 1: the round must complete with four
    dropped updates and zero uplink bytes, identically under all executors."""
    faults = {1: [0, 1, 2, 3]}
    runtimes = _run_all(
        data,
        client_fraction=1.0,
        dropout=0.0,
        client_faults=ClientCrashSchedule(faults),
    )
    reference = runtimes["serial"]
    crash_round = reference.history.records[1]
    assert crash_round.participating_clients == 4
    assert crash_round.dropped_clients == 4
    assert crash_round.uplink_bytes == 0
    assert crash_round.uplink_seconds == 0.0
    for stat in crash_round.client_stats:
        assert not stat.delivered
        assert not stat.aggregated
        assert stat.payload_nbytes == 0
        assert stat.train_seconds == 0.0
    # Nothing aggregated, so the global model is unchanged across the round.
    rows = reference.history.deterministic_rows()
    assert rows[1]["global_accuracy"] == rows[0]["global_accuracy"]
    for name in ("thread", "process"):
        assert runtimes[name].history.deterministic_rows() == rows, name
        _assert_states_identical(reference, runtimes[name])


def test_broadcast_is_prepared_at_most_once_per_round(data):
    """Cache counters over the crash-all run: rounds 0 and 1 change the state
    (miss), the crash-all round leaves it unchanged so round 2 is a hit — the
    wire buffer is built exactly twice for three rounds, and each of the two
    workers decodes exactly twice."""
    runtime = _build_runtime(
        data,
        "process",
        client_fraction=1.0,
        dropout=0.0,
        client_faults=ClientCrashSchedule({1: [0, 1, 2, 3]}),
    )
    try:
        runtime.run()
        cache = runtime.broadcast_cache
        assert cache.misses == 2
        assert cache.hits == 1
        assert cache.serializations == 2
        assert cache.compressions == 0  # compress_downlink is off
        worker_stats = runtime.executor.broadcast_cache_stats()
        assert sorted(worker_stats) == [0, 1]
        for stats in worker_stats.values():
            assert stats == {"hits": 1, "misses": 2}
    finally:
        runtime.close()

    # The parent-side cache works identically for the serial executor — it
    # just never builds a wire buffer (nothing asked for one).
    serial = _build_runtime(
        data,
        "serial",
        client_fraction=1.0,
        dropout=0.0,
        client_faults=ClientCrashSchedule({1: [0, 1, 2, 3]}),
    )
    serial.run()
    assert serial.broadcast_cache.misses == 2
    assert serial.broadcast_cache.hits == 1
    assert serial.broadcast_cache.serializations == 0


def test_process_executor_refuses_clone_less_codecs(data):
    """A codec whose streams are consumed in call order cannot run
    shared-nothing; binding must fail up front, not corrupt results later."""

    class StatefulCodec:
        def compress(self, state):  # pragma: no cover - never reached
            raise AssertionError

        def decompress(self, payload):  # pragma: no cover - never reached
            raise AssertionError

    train, val = data
    with pytest.raises(ValueError, match="clone"):
        FederatedRuntime(
            lambda: create_model("alexnet", "tiny", num_classes=10, seed=7),
            train,
            val,
            FLConfig(num_clients=2, rounds=1, batch_size=16, seed=3),
            codec=StatefulCodec(),
            executor=ProcessParallelExecutor(max_workers=2),
        )


# ----------------------------------------------------------------------
# Wall-clock claims (mirrors test_codec_parallel_speedup.py's gating)
# ----------------------------------------------------------------------
def _best_of(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_speed_runtime(executor) -> FederatedRuntime:
    full = load_dataset("cifar10", num_samples=640, image_size=8, seed=0)
    train, val = full.split(0.75, seed=1)
    return FederatedRuntime(
        lambda: create_model("resnet18", "tiny", num_classes=10, seed=7),
        train,
        val,
        FLConfig(
            num_clients=8, rounds=1, batch_size=16, local_epochs=2, seed=3
        ),
        codec=FedSZCompressor(error_bound=1e-2),
        executor=executor,
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"process-pool speedup needs >= {WORKERS} cores "
    f"(host has {os.cpu_count()}); workers cannot beat serial on fewer",
)
def test_process_round_speedup_at_four_workers():
    """>= 2x round wall-clock with 4 worker processes — the fl_parallel bench
    claim.  Unlike the thread pool, the whole client (pure-Python training
    loop included) runs outside the parent's GIL."""
    serial = _build_speed_runtime(SerialExecutor())
    process = _build_speed_runtime(ProcessParallelExecutor(max_workers=WORKERS))
    try:
        # Warm both paths (model materialisation, pool start) before timing.
        serial.run_round()
        process.run_round()
        serial_seconds = _best_of(serial.run_round)
        process_seconds = _best_of(process.run_round)
    finally:
        serial.close()
        process.close()
    speedup = serial_seconds / process_seconds
    assert speedup >= 2.0, (
        f"process-pool speedup {speedup:.2f}x "
        f"(serial {serial_seconds:.3f}s, {WORKERS} workers {process_seconds:.3f}s)"
    )


def test_process_overhead_is_bounded_on_any_host(data):
    """Even with nothing to overlap, dispatch/IPC must not collapse
    throughput: a process round stays within 3x of a serial round."""
    serial = _build_runtime(data, "serial", rounds=1, client_fraction=1.0, dropout=0.0)
    process = _build_runtime(data, "process", rounds=1, client_fraction=1.0, dropout=0.0)
    try:
        serial.run_round()
        process.run_round()  # pool start paid here, outside the timing
        serial_seconds = _best_of(serial.run_round)
        process_seconds = _best_of(process.run_round)
    finally:
        serial.close()
        process.close()
    assert process_seconds <= serial_seconds * 3.0, (
        f"process-pool overhead too high: serial {serial_seconds:.3f}s, "
        f"process {process_seconds:.3f}s"
    )
