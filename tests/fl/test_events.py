"""Unit tests for the discrete-event engine building blocks.

The integration-level equivalence guarantees (event engine == legacy loop,
bit for bit, across schedulers and executors) live in
``tests/integration/test_event_engine.py``; this module pins the pieces those
guarantees are built from: deterministic queue ordering, the
transitions-vs-mask contract of participation schedules, the incrementally
maintained eligible set, and the random-access seed derivation lazily built
transport links rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.events import (
    CLIENT_COMPLETION,
    STRAGGLER_DEADLINE,
    EligibleSet,
    Event,
    EventQueue,
)
from repro.fl.scenarios import (
    DiurnalSchedule,
    FlashCrowdSchedule,
    FullParticipation,
)
from repro.utils.seeding import SeedSequenceFactory


# ----------------------------------------------------------------------
# EventQueue
# ----------------------------------------------------------------------
def test_event_queue_orders_by_time():
    queue = EventQueue()
    for t in (3.0, 1.0, 2.0):
        queue.push(Event(kind=CLIENT_COMPLETION, time=t))
    assert [queue.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]
    assert not queue


def test_event_queue_breaks_time_ties_by_push_order():
    """Two events at the same instant pop in push order — the property the
    semi-sync deadline semantics (completion at t == deadline drains first)
    are built on."""
    queue = EventQueue()
    queue.push(Event(kind=CLIENT_COMPLETION, time=5.0, client_id=7))
    queue.push(Event(kind=STRAGGLER_DEADLINE, time=5.0))
    queue.push(Event(kind=CLIENT_COMPLETION, time=5.0, client_id=2))
    kinds = [queue.pop() for _ in range(3)]
    assert [e.kind for e in kinds] == [
        CLIENT_COMPLETION,
        STRAGGLER_DEADLINE,
        CLIENT_COMPLETION,
    ]
    assert kinds[0].client_id == 7  # push order, not id order
    assert kinds[2].client_id == 2


def test_event_queue_peek_and_len():
    queue = EventQueue()
    queue.push(Event(kind=CLIENT_COMPLETION, time=2.5))
    queue.push(Event(kind=CLIENT_COMPLETION, time=1.5))
    assert len(queue) == 2
    assert queue.peek_time() == 1.5
    queue.pop()
    assert len(queue) == 1


# ----------------------------------------------------------------------
# Schedule transitions == mask diffs
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "schedule",
    [
        FullParticipation(),
        DiurnalSchedule(period_rounds=4, min_availability=0.2, max_availability=0.9, seed=3),
        FlashCrowdSchedule(join_round=2, leave_round=5, crowd_fraction=0.5),
    ],
    ids=["full", "diurnal", "flash-crowd"],
)
def test_transitions_match_mask_diffs(schedule):
    """Every schedule's arrival/departure stream must reproduce the diff of
    consecutive availability masks (round 0 diffs against an empty fleet)."""
    num_clients = 64
    previous = np.zeros(num_clients, dtype=bool)
    for round_index in range(10):
        current = np.asarray(schedule.mask(round_index, num_clients), dtype=bool)
        arrivals, departures = schedule.transitions(round_index, num_clients)
        np.testing.assert_array_equal(arrivals, np.nonzero(current & ~previous)[0])
        np.testing.assert_array_equal(departures, np.nonzero(previous & ~current)[0])
        previous = current


@pytest.mark.parametrize(
    "schedule",
    [
        FullParticipation(),
        DiurnalSchedule(period_rounds=4, min_availability=0.2, max_availability=0.9, seed=3),
        FlashCrowdSchedule(join_round=2, leave_round=5, crowd_fraction=0.5),
    ],
    ids=["full", "diurnal", "flash-crowd"],
)
def test_eligible_set_tracks_masks_incrementally(schedule):
    """Folding the transition stream into an EligibleSet reproduces
    ``np.nonzero(mask)[0]`` bit for bit at every round."""
    num_clients = 64
    eligible = EligibleSet()
    for round_index in range(10):
        eligible.apply(*schedule.transitions(round_index, num_clients))
        mask = np.asarray(schedule.mask(round_index, num_clients), dtype=bool)
        expected = np.nonzero(mask)[0]
        np.testing.assert_array_equal(eligible.ids(), expected)
        assert eligible.ids().dtype == np.int64
        assert len(eligible) == int(expected.size)


def test_eligible_set_counts_touches():
    eligible = EligibleSet()
    eligible.apply(np.array([1, 3, 5]), np.array([], dtype=np.int64))
    eligible.apply(np.array([2]), np.array([3]))
    assert sorted(eligible.ids().tolist()) == [1, 2, 5]
    assert eligible.touched == 5
    eligible.reset_from_mask(np.array([True, False, True, False]))
    assert eligible.ids().tolist() == [0, 2]
    assert eligible.touched == 9  # the rebuild is a full-fleet touch


# ----------------------------------------------------------------------
# Config + seed plumbing the engine depends on
# ----------------------------------------------------------------------
def test_flconfig_validates_engine():
    assert FLConfig().engine == "rounds"
    assert FLConfig(engine="events").engine == "events"
    with pytest.raises(ValueError):
        FLConfig(engine="warp")


def test_seed_at_matches_sequential_derivation():
    """Random access into the spawn sequence equals sequential spawning — the
    property lazily materialised transport links rely on to match an eagerly
    seeded population."""
    sequential = SeedSequenceFactory(42)
    expected = [sequential.next_seed() for _ in range(16)]
    random_access = SeedSequenceFactory(42)
    assert [random_access.seed_at(i) for i in range(16)] == expected
    assert random_access.seed_at(3) == expected[3]  # revisiting is stable
    with pytest.raises(ValueError):
        random_access.seed_at(-1)
