"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures through the
harnesses in :mod:`repro.experiments`, at a reduced-but-representative size so
the whole suite completes in minutes on a laptop.  Each benchmark also
asserts the qualitative "shape" the paper reports (who wins, roughly by how
much, where crossovers fall), so running the suite doubles as a reproduction
check.
"""

from __future__ import annotations

import pytest

from repro.utils.seeding import set_global_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    set_global_seed(2024)
    yield


@pytest.fixture
def run_once(benchmark):
    """Run a harness exactly once under pytest-benchmark timing.

    The experiment harnesses are deterministic and comparatively slow, so a
    single timed round is both sufficient and what keeps the suite fast.
    """

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
