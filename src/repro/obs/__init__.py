"""Observability layer: live run monitoring and post-run error analysis.

Three pieces, deliberately decoupled from the simulation they observe:

* :class:`RunMonitor` (:mod:`repro.obs.monitor`) — a thread-safe in-process
  event bus that :class:`repro.fl.runtime.FederatedRuntime` feeds per-round
  events (progress, per-client straggler/drop stats, codec ratio and
  error-bound trajectories, broadcast-cache hit rates, checkpoint age).  It
  is strictly passive: it reads completed records and counters and never
  touches an RNG stream, so a monitored run is bit-identical to an
  unmonitored one.
* :class:`MonitorServer` (:mod:`repro.obs.server`) — a stdlib-only HTTP
  status endpoint plus a minimal HTML dashboard over a live monitor
  (``python -m repro.cli fl --monitor-port 8700``).  Routes live in
  :mod:`repro.obs.routes`, snapshot shaping in :mod:`repro.obs.services`.
* :func:`build_error_analysis` (:mod:`repro.obs.report`) — a deterministic
  post-run markdown report over a :class:`~repro.fl.history.TrainingHistory`
  (plus optional BENCH JSONs and gate comparisons): rounds/tensors where the
  error bound was nearly violated, adaptive-controller thrash, the worst
  clients/links, and the fault/checkpoint timeline.  CI attaches it to every
  bench run so a failed gate arrives with a diagnosis, not a bare number.
"""

from repro.obs.monitor import MonitorEvent, RunMonitor
from repro.obs.report import build_bench_diagnosis, build_error_analysis
from repro.obs.server import MonitorServer

__all__ = [
    "MonitorEvent",
    "RunMonitor",
    "MonitorServer",
    "build_bench_diagnosis",
    "build_error_analysis",
]
