"""Benchmark regenerating Figure 8 (communication time vs bandwidth sweep)."""

from __future__ import annotations

from repro.experiments import crossover_for, run_figure8


def test_figure8_bandwidth_sweep(run_once):
    result = run_once(
        run_figure8,
        compressors=("sz2", "sz3", "zfp"),
        max_elements_per_tensor=150_000,
    )
    print()
    print(result.to_text())

    def seconds(compressor, bandwidth):
        return [
            row["communication_seconds"]
            for row in result.filter(compressor=compressor)
            if abs(row["bandwidth_mbps"] - bandwidth) / bandwidth < 1e-6
        ][0]

    # Paper shape: at 10 Mbps every compressor clearly beats the raw transfer
    # (the SZ family by a much wider margin than ZFP, whose ratio is lower);
    # at 10 Gbps none of them is worthwhile any more, and the crossover sits
    # in the tens-to-hundreds of Mbps.
    for compressor in ("sz2", "sz3", "zfp"):
        assert seconds(compressor, 10.0) < seconds("original", 10.0) / 2
        assert seconds(compressor, 10_000.0) > seconds("original", 10_000.0)
        assert 50.0 <= crossover_for(result, compressor) <= 1500.0
    assert seconds("sz2", 10.0) < seconds("original", 10.0) / 5
    # SZ2 is the best choice at the edge bandwidth the paper highlights.
    assert seconds("sz2", 10.0) <= min(seconds("sz3", 10.0), seconds("zfp", 10.0)) * 1.2
