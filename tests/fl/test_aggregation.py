"""Tests for FedAvg aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import fedavg, state_dict_difference
from repro.nn.models import create_model


def test_fedavg_uniform_average():
    states = [
        {"w": np.array([1.0, 2.0], dtype=np.float32)},
        {"w": np.array([3.0, 4.0], dtype=np.float32)},
    ]
    result = fedavg(states)
    np.testing.assert_allclose(result["w"], [2.0, 3.0])


def test_fedavg_weighted_by_sample_counts():
    states = [
        {"w": np.array([0.0], dtype=np.float32)},
        {"w": np.array([10.0], dtype=np.float32)},
    ]
    result = fedavg(states, client_weights=[1, 3])
    np.testing.assert_allclose(result["w"], [7.5])


def test_fedavg_preserves_dtypes_and_rounds_integers():
    states = [
        {"count": np.array(3, dtype=np.int64), "w": np.ones(2, dtype=np.float32)},
        {"count": np.array(4, dtype=np.int64), "w": np.zeros(2, dtype=np.float32)},
    ]
    result = fedavg(states)
    assert result["count"].dtype == np.int64
    assert result["count"] == 4  # rint(3.5) rounds to even
    assert result["w"].dtype == np.float32


def test_fedavg_identity_for_single_client():
    state = create_model("mobilenetv2", "tiny", seed=0).state_dict()
    result = fedavg([state])
    for name in state:
        np.testing.assert_allclose(result[name], state[name], atol=1e-6)


def test_fedavg_validation_errors():
    with pytest.raises(ValueError):
        fedavg([])
    states = [{"w": np.zeros(2)}, {"w": np.zeros(2)}]
    with pytest.raises(ValueError):
        fedavg(states, client_weights=[1.0])
    with pytest.raises(ValueError):
        fedavg(states, client_weights=[0.0, 0.0])
    with pytest.raises(KeyError):
        fedavg([{"w": np.zeros(2)}, {"v": np.zeros(2)}])


def test_fedavg_of_model_states_loads_back():
    model = create_model("mobilenetv2", "tiny", seed=0)
    state_a = create_model("mobilenetv2", "tiny", seed=1).state_dict()
    state_b = create_model("mobilenetv2", "tiny", seed=2).state_dict()
    averaged = fedavg([state_a, state_b], client_weights=[10, 30])
    model.load_state_dict(averaged)  # shapes and dtypes must be compatible
    name = next(k for k in averaged if k.endswith("weight"))
    np.testing.assert_allclose(
        averaged[name], 0.25 * state_a[name] + 0.75 * state_b[name], atol=1e-6
    )


def test_state_dict_difference_only_float_tensors():
    new = {"w": np.array([2.0, 3.0]), "count": np.array(5, dtype=np.int64)}
    old = {"w": np.array([1.0, 1.0]), "count": np.array(4, dtype=np.int64)}
    difference = state_dict_difference(new, old)
    assert set(difference) == {"w"}
    np.testing.assert_allclose(difference["w"], [1.0, 2.0])


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=8
    ),
)
def test_fedavg_is_bounded_by_client_extremes(values):
    states = [{"w": np.array([v], dtype=np.float64)} for v in values]
    result = fedavg(states)
    assert min(values) - 1e-9 <= result["w"][0] <= max(values) + 1e-9
