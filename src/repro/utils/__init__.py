"""Shared utilities used across the FedSZ reproduction.

The helpers in this package are intentionally small and dependency-free:
deterministic seeding, byte-size formatting, simple wall-clock timers and
lightweight argument validation.  They are used by the compression substrate,
the neural-network substrate and the federated-learning runtime alike.
"""

from repro.utils.seeding import SeedSequenceFactory, default_rng, set_global_seed
from repro.utils.sizes import format_bytes, nbytes_of, sizeof_state_dict
from repro.utils.timing import Stopwatch, Timer, timed
from repro.utils.validation import (
    ensure_in,
    ensure_positive,
    ensure_probability,
    ensure_type,
)

__all__ = [
    "SeedSequenceFactory",
    "default_rng",
    "set_global_seed",
    "format_bytes",
    "nbytes_of",
    "sizeof_state_dict",
    "Stopwatch",
    "Timer",
    "timed",
    "ensure_in",
    "ensure_positive",
    "ensure_probability",
    "ensure_type",
]
