"""Throughput floors for the vectorised Huffman/bitstream hot paths.

Each micro-benchmark times the production path against the scalar reference
implementation it replaced (kept in :mod:`repro.compression.reference`) using
the same warmup + min-of-N discipline as the bench harness.  Minimum-of-N on
both sides makes the ratios robust to scheduler noise; the asserted floors
are a fraction of the typical speedups (the Huffman decode walk measures
>10x, ``pack_bit_flags`` and wide ``read_bits`` measure >30x), so failures
indicate a real de-vectorisation, not jitter.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.compression.bitstream import BitReader, BitWriter, pack_bit_flags
from repro.compression.huffman import HuffmanCode, HuffmanCodec
from repro.compression.reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
    ReferenceHuffmanCodec,
    reference_deserialize_table,
    reference_pack_bit_flags,
)


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _speedup(fast, slow, repeats=3):
    fast()  # warmup both paths before timing
    slow()
    return _best_of(slow, repeats) / _best_of(fast, repeats)


@pytest.fixture(scope="module")
def skewed_symbols():
    rng = np.random.default_rng(0)
    values = np.round(rng.laplace(scale=2.0, size=150_000)).astype(np.int64)
    return np.clip(values, -64, 64)


def test_huffman_decode_at_least_3x_faster_than_reference(skewed_symbols):
    codec, reference = HuffmanCodec(), ReferenceHuffmanCodec()
    payload = codec.encode(skewed_symbols)
    np.testing.assert_array_equal(reference.decode(payload), skewed_symbols)
    speedup = _speedup(lambda: codec.decode(payload), lambda: reference.decode(payload))
    assert speedup >= 3.0, f"vectorised Huffman decode only {speedup:.1f}x faster"


def test_huffman_table_deserialize_at_least_3x_faster_than_reference():
    table = HuffmanCode.from_symbols(np.arange(4096, dtype=np.int64)).serialize_table()
    speedup = _speedup(
        lambda: HuffmanCode.deserialize_table(table),
        lambda: reference_deserialize_table(table),
        repeats=5,
    )
    assert speedup >= 3.0, f"vectorised table deserialize only {speedup:.1f}x faster"


def test_pack_bit_flags_at_least_3x_faster_than_reference():
    rng = np.random.default_rng(1)
    flags = rng.random(1_000_000) < 0.3
    flag_list = flags.tolist()
    assert pack_bit_flags(flags) == reference_pack_bit_flags(flag_list)
    speedup = _speedup(
        lambda: pack_bit_flags(flags), lambda: reference_pack_bit_flags(flag_list)
    )
    assert speedup >= 3.0, f"vectorised pack_bit_flags only {speedup:.1f}x faster"


def test_read_bits_at_least_3x_faster_than_reference():
    rng = np.random.default_rng(2)
    payload = rng.integers(0, 256, size=64_000, dtype=np.uint8).tobytes()
    total_bits = len(payload) * 8
    width = 1024

    def drain(reader_cls):
        reader = reader_cls(payload)
        for _ in range(total_bits // width):
            reader.read_bits(width)

    speedup = _speedup(lambda: drain(BitReader), lambda: drain(ReferenceBitReader))
    assert speedup >= 3.0, f"vectorised read_bits only {speedup:.1f}x faster"


def test_bitwriter_per_bit_path_faster_than_reference():
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, size=30_000).tolist()

    def drain(writer_cls):
        writer = writer_cls()
        for bit in bits:
            writer.write_bit(bit)
        return writer.getvalue()

    assert drain(BitWriter) == drain(ReferenceBitWriter)
    # The per-bit path is bound by Python call overhead on both sides, so the
    # floor is deliberately lower than the 3x asserted for the array paths.
    speedup = _speedup(lambda: drain(BitWriter), lambda: drain(ReferenceBitWriter))
    assert speedup >= 1.3, f"lazy BitWriter per-bit path only {speedup:.1f}x faster"


def test_huffman_encode_no_slower_than_reference(skewed_symbols):
    codec, reference = HuffmanCodec(), ReferenceHuffmanCodec()
    assert codec.encode(skewed_symbols) == reference.encode(skewed_symbols)
    speedup = _speedup(
        lambda: codec.encode(skewed_symbols), lambda: reference.encode(skewed_symbols)
    )
    assert speedup >= 0.8, f"vectorised Huffman encode regressed to {speedup:.2f}x"
