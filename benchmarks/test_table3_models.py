"""Benchmark regenerating Table III (model characteristics)."""

from __future__ import annotations

import pytest

from repro.experiments import run_table3


def test_table3_model_characteristics(run_once):
    result = run_once(run_table3)
    print()
    print(result.to_text())

    rows = {row["model"]: row for row in result.rows}
    # Table III: AlexNet ~61M params / ~230MB, MobileNetV2 ~3.5M / ~14MB,
    # ResNet50 the standard torchvision 25.6M (the paper quotes 45M).
    assert rows["alexnet"]["parameters"] == pytest.approx(61.1e6, rel=0.02)
    assert rows["mobilenetv2"]["parameters"] == pytest.approx(3.5e6, rel=0.03)
    assert rows["resnet50"]["parameters"] == pytest.approx(25.6e6, rel=0.03)
    # Lossy-eligible share ordering: AlexNet > ResNet50 > MobileNetV2.
    assert (
        rows["alexnet"]["lossy_data_percent"]
        > rows["resnet50"]["lossy_data_percent"]
        > rows["mobilenetv2"]["lossy_data_percent"]
        > 95.0
    )
    # FLOPs ordering: ResNet50 >> AlexNet > MobileNetV2.
    assert rows["resnet50"]["flops_g"] > rows["alexnet"]["flops_g"] > rows["mobilenetv2"]["flops_g"]
