"""Runtime RNG/clock sanitizer: the dynamic half of the determinism lint.

The AST rules (DET001/DET002) catch global-RNG and wall-clock calls they can
*see*; this module catches the ones they cannot (dynamic dispatch, getattr,
third-party helpers).  While active, the legacy module-level
``numpy.random`` API, the stdlib ``random`` module functions and the banned
wall-clock sources (``time.time``/``time.time_ns``) raise
:class:`DeterminismViolation` — but only when called *from repo runtime
code* (a frame under ``src/repro``).  Callers outside the repo (pytest
internals, stdlib machinery, the tests themselves) pass through to the real
functions, so the sanitizer can wrap whole integration suites without
fighting the interpreter.

Activated by the autouse fixture in ``tests/integration/conftest.py`` around
the determinism suites (checkpoint-resume, process-executor, fleet-scale,
thread-stress); fork-based executor workers inherit the active patches, so
worker-side escapes fail loudly too.
"""

from __future__ import annotations

import functools
import random as _stdlib_random
import sys
import time as _time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["DeterminismViolation", "sanitized", "is_active"]


class DeterminismViolation(RuntimeError):
    """Repo runtime code touched global RNG or wall-clock under the sanitizer."""


#: numpy.random module-level functions backed by the hidden global
#: RandomState.  Mirrors rule_rng._NUMPY_GLOBAL_FNS, intersected with what
#: the installed numpy actually exposes.
_NUMPY_GLOBAL_FNS = (
    "seed", "get_state", "set_state",
    "rand", "randn", "randint",
    "random", "random_sample", "ranf", "sample", "bytes",
    "choice", "shuffle", "permutation",
    "beta", "binomial", "exponential", "gamma", "geometric", "gumbel",
    "laplace", "logistic", "lognormal", "multinomial", "multivariate_normal",
    "normal", "pareto", "poisson", "power", "rayleigh", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal", "standard_t",
    "triangular", "uniform", "vonmises", "wald", "weibull", "zipf",
)

_STDLIB_GLOBAL_FNS = (
    "seed", "getstate", "setstate", "getrandbits", "randbytes",
    "randrange", "randint", "choice", "choices", "shuffle", "sample",
    "random", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate",
)

_CLOCK_FNS = ("time", "time_ns")

#: Path fragment identifying repo runtime frames (src/repro/... on any OS).
_REPO_FRAGMENTS = ("/repro/", "\\repro\\")
_SELF_FILE = __file__

_active_depth = 0
_saved: List[Tuple[object, str, object]] = []


def is_active() -> bool:
    """Whether the sanitizer is currently patched in."""
    return _active_depth > 0


def _caller_is_repo_runtime() -> Tuple[bool, str]:
    """Inspect the calling frame (two hops up from the guard)."""
    frame = sys._getframe(2)
    filename = frame.f_code.co_filename
    location = f"{filename}:{frame.f_lineno}"
    if filename == _SELF_FILE:
        return False, location
    in_repo = any(fragment in filename for fragment in _REPO_FRAGMENTS)
    # The tests tree may exercise the globals directly while sanitized.
    in_tests = "/tests/" in filename or "\\tests\\" in filename
    return in_repo and not in_tests, location


def _guard(original: Callable, label: str) -> Callable:
    @functools.wraps(original)
    def guarded(*args, **kwargs):
        is_repo, location = _caller_is_repo_runtime()
        if is_repo:
            raise DeterminismViolation(
                f"{label} called from {location} while the RNG/clock "
                "sanitizer is active; repo runtime code must use explicit "
                "Generator streams / modelled time (see DET001/DET002)"
            )
        return original(*args, **kwargs)

    guarded.__repro_sanitizer__ = True
    return guarded


def _patch(module, names, prefix: str) -> None:
    for name in names:
        original = getattr(module, name, None)
        if original is None or getattr(original, "__repro_sanitizer__", False):
            continue
        _saved.append((module, name, original))
        setattr(module, name, _guard(original, f"{prefix}{name}"))


def _activate(rng: bool, clock: bool) -> None:
    if rng:
        _patch(np.random, _NUMPY_GLOBAL_FNS, "numpy.random.")
        _patch(_stdlib_random, _STDLIB_GLOBAL_FNS, "random.")
    if clock:
        _patch(_time, _CLOCK_FNS, "time.")


def _deactivate() -> None:
    while _saved:
        module, name, original = _saved.pop()
        setattr(module, name, original)


@contextmanager
def sanitized(rng: bool = True, clock: bool = True) -> Iterator[None]:
    """Context manager installing the sanitizer (re-entrant)."""
    global _active_depth
    if _active_depth == 0:
        _activate(rng=rng, clock=clock)
    _active_depth += 1
    try:
        yield
    finally:
        _active_depth -= 1
        if _active_depth == 0:
            _deactivate()


def violation_snapshot() -> Dict[str, int]:
    """Patch-state introspection for the self-tests."""
    return {
        "active_depth": _active_depth,
        "patched": len(_saved),
    }
