"""Tests for BENCH report comparison and the CLI compare gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import BENCH_SCHEMA, BENCH_SCHEMA_VERSION, compare_reports, load_report
from repro.cli import main


def _report(workload="tiny", **metrics):
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "created_at": "2026-01-01T00:00:00+00:00",
        "environment": {},
        "config": {"warmup": 1, "repeats": 3},
        "metrics": {name: {"seconds": seconds} for name, seconds in metrics.items()},
    }


def test_compare_ok_within_tolerance():
    result = compare_reports(_report(m=0.10), _report(m=0.15), tolerance=2.0)
    assert result.ok
    assert result.comparisons[0].status == "ok"
    assert result.comparisons[0].ratio == pytest.approx(1.5)


def test_compare_flags_regression_past_tolerance():
    result = compare_reports(_report(m=0.10), _report(m=0.25), tolerance=2.0)
    assert not result.ok
    assert result.failures[0].status == "regression"
    assert "FAILURE" in result.render()


def test_compare_noise_floor_suppresses_micro_jitter():
    # 5x over baseline but still under the 1 ms floor: not a regression.
    result = compare_reports(_report(m=1e-5), _report(m=5e-5), tolerance=2.0)
    assert result.ok
    # The same ratio above the floor fails.
    result = compare_reports(_report(m=1e-2), _report(m=5e-2), tolerance=2.0)
    assert not result.ok


def test_compare_normalize_cancels_uniform_machine_slowdown():
    baseline = _report(a=0.10, b=0.20, c=0.40)
    # Everything uniformly 2.5x slower (a slower CI runner): normalization
    # passes where absolute mode would fail every metric.
    uniform = _report(a=0.25, b=0.50, c=1.00)
    assert not compare_reports(baseline, uniform, tolerance=2.0).ok
    normalized = compare_reports(baseline, uniform, tolerance=2.0, normalize=True)
    assert normalized.ok
    assert normalized.speed_factor == pytest.approx(2.5)
    assert "machine-speed factor" in normalized.render()
    # One metric regressing 6x relative to its peers still fails.
    skewed = _report(a=0.25, b=0.50, c=2.40)
    result = compare_reports(baseline, skewed, tolerance=2.0, normalize=True)
    assert [c.name for c in result.failures] == ["c"]


def test_cli_compare_normalize_flag(tmp_path, capsys):
    import json as json_module

    baseline = tmp_path / "baseline.json"
    slower = tmp_path / "slower.json"
    baseline.write_text(json_module.dumps(_report(a=0.10, b=0.20, c=0.40)))
    slower.write_text(json_module.dumps(_report(a=0.25, b=0.50, c=1.00)))
    assert main(["bench", "compare", str(baseline), str(slower)]) == 1
    capsys.readouterr()
    assert main(["bench", "compare", str(baseline), str(slower), "--normalize"]) == 0
    capsys.readouterr()


def test_compare_missing_metric_fails_new_metric_does_not():
    baseline = _report(kept=0.1, dropped=0.1)
    current = _report(kept=0.1, added=0.1)
    result = compare_reports(baseline, current)
    statuses = {c.name: c.status for c in result.comparisons}
    assert statuses == {"kept": "ok", "dropped": "missing", "added": "new"}
    assert not result.ok


def test_compare_rejects_workload_mismatch():
    with pytest.raises(ValueError):
        compare_reports(_report(workload="a", m=0.1), _report(workload="b", m=0.1))


def test_load_report_validates_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(ValueError):
        load_report(path)


def test_cli_compare_exit_codes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    good = tmp_path / "good.json"
    bad = tmp_path / "bad.json"
    baseline.write_text(json.dumps(_report(m=0.10)))
    good.write_text(json.dumps(_report(m=0.12)))
    bad.write_text(json.dumps(_report(m=0.50)))

    assert main(["bench", "compare", str(baseline), str(good)]) == 0
    assert "OK" in capsys.readouterr().out
    assert main(["bench", "compare", str(baseline), str(bad)]) == 1
    assert "regression" in capsys.readouterr().out
    # Generous tolerance lets the same pair pass.
    assert main(["bench", "compare", str(baseline), str(bad), "--tolerance", "10"]) == 0
    capsys.readouterr()


def test_cli_compare_usage_errors(tmp_path, capsys):
    assert main(["bench", "compare", "only-one.json"]) == 2
    assert "baseline/current path pairs" in capsys.readouterr().err
    missing = tmp_path / "missing.json"
    present = tmp_path / "present.json"
    present.write_text(json.dumps(_report(m=0.1)))
    assert main(["bench", "compare", str(missing), str(present)]) == 2
