"""Acceptance tests for the layered runtime's system-level behaviour.

These cover the two headline claims of the scheduler/executor/transport
refactor: the parallel executor actually buys wall-clock time on a
multi-client round (the links really sleep, as in the paper's MPI + sleep
emulation), and a semi-synchronous round closes at its deadline instead of
waiting for an injected straggler.
"""

from __future__ import annotations

import time

import pytest

from repro.data import load_dataset
from repro.fl import (
    FLConfig,
    FLSimulation,
    LinkSpec,
    ParallelExecutor,
    SemiSynchronousScheduler,
    SerialExecutor,
    Transport,
    edge_fleet_specs,
)
from repro.nn.models import create_model


def _sleepy_transport(num_clients: int, latency_seconds: float) -> Transport:
    """Links that really sleep for their modelled latency (paper Section VI-C)."""
    return Transport.heterogeneous(
        [
            LinkSpec(
                bandwidth_mbps=10_000.0,
                latency_seconds=latency_seconds,
                real_sleep=True,
            )
            for _ in range(num_clients)
        ]
    )


def _run_once(executor, data, latency_seconds: float = 0.4):
    # The link sleep must dominate per-client compute even on a slow, loaded
    # CI runner (training is GIL-bound numpy, so in the worst case only the
    # sleeps overlap): speedup >= (8L + X) / (2L + X) where X bundles all the
    # shared serial work (8 training passes, validation, broadcast).  That
    # stays above 1.5x while X <= 10 * L = 4s; X is ~0.5s on a laptop.
    train, val = data
    config = FLConfig(num_clients=8, rounds=1, batch_size=32, seed=4)
    simulation = FLSimulation(
        lambda: create_model("mobilenetv2", "tiny", num_classes=10, seed=2),
        train,
        val,
        config,
        codec=None,
        executor=executor,
        transport=_sleepy_transport(8, latency_seconds),
    )
    start = time.perf_counter()
    history = simulation.run(1)
    return time.perf_counter() - start, history


def test_parallel_executor_speedup_on_eight_clients():
    """8 clients / 4 workers must be at least 1.5x faster wall-clock than the
    serial executor, with identical simulated results."""
    full = load_dataset("cifar10", num_samples=320, image_size=8, seed=0)
    data = full.split(0.75, seed=1)

    serial_seconds, serial_history = _run_once(SerialExecutor(), data)
    parallel_seconds, parallel_history = _run_once(ParallelExecutor(max_workers=4), data)

    assert serial_history.records[0].global_accuracy == pytest.approx(
        parallel_history.records[0].global_accuracy, abs=1e-12
    )
    assert serial_history.records[0].uplink_bytes == parallel_history.records[0].uplink_bytes

    speedup = serial_seconds / parallel_seconds
    assert speedup >= 1.5, (
        f"parallel executor speedup {speedup:.2f}x "
        f"(serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s)"
    )


def test_semi_sync_round_does_not_wait_for_straggler():
    """One injected straggler: the round closes at the deadline, aggregates
    everyone else, and the straggler is recorded, not waited for."""
    full = load_dataset("cifar10", num_samples=300, image_size=8, seed=3)
    train, val = full.split(0.8, seed=4)
    config = FLConfig(num_clients=4, rounds=1, batch_size=16, seed=6)
    deadline = 15.0
    simulation = FLSimulation(
        lambda: create_model("resnet50", "tiny", num_classes=10, seed=8),
        train,
        val,
        config,
        codec=None,
        scheduler=SemiSynchronousScheduler(deadline_seconds=deadline),
        transport=Transport.heterogeneous(
            edge_fleet_specs(4, bandwidths_mbps=(10.0,), straggler_ids=(3,),
                             straggler_factor=500.0)
        ),
    )
    record = simulation.run_round()

    by_id = {stat.client_id: stat for stat in record.client_stats}
    assert by_id[3].turnaround_seconds > deadline  # it really was a straggler
    assert record.straggler_clients == 1
    assert not by_id[3].aggregated
    assert sum(1 for stat in record.client_stats if stat.aggregated) == 3
    # The round's simulated duration is the deadline — not the straggler's
    # turnaround, which is what a fully synchronous round would have paid.
    assert record.simulated_round_seconds == pytest.approx(deadline)
    assert record.simulated_round_seconds < by_id[3].turnaround_seconds
