"""Tests for the canonical Huffman codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.errors import CorruptPayloadError
from repro.compression.huffman import (
    HuffmanCode,
    HuffmanCodec,
    assign_canonical_codes,
    build_code_lengths,
    build_frequency_table,
)


def test_frequency_table_counts():
    symbols = np.array([3, 3, 1, -2, 3, 1])
    unique, counts = build_frequency_table(symbols)
    assert unique.tolist() == [-2, 1, 3]
    assert counts.tolist() == [1, 2, 3]


def test_code_lengths_follow_frequencies():
    # More frequent symbols must never get longer codes than rarer ones.
    counts = np.array([100, 10, 5, 1])
    lengths = build_code_lengths(counts)
    assert lengths[0] <= lengths[1] <= lengths[3]
    assert lengths.min() >= 1


def test_single_symbol_alphabet_gets_one_bit():
    assert build_code_lengths(np.array([42])).tolist() == [1]


def test_kraft_inequality_holds():
    rng = np.random.default_rng(0)
    counts = rng.integers(1, 10_000, size=64)
    lengths = build_code_lengths(counts)
    assert float(np.sum(2.0 ** (-lengths.astype(float)))) <= 1.0 + 1e-12


def test_canonical_codes_are_prefix_free():
    counts = np.array([50, 20, 20, 5, 3, 1, 1])
    symbols = np.arange(counts.size)
    lengths = build_code_lengths(counts)
    _, ordered_lengths, codes = assign_canonical_codes(symbols, lengths)
    rendered = [
        format(int(code), f"0{int(length)}b")
        for code, length in zip(codes, ordered_lengths, strict=True)
    ]
    for i, a in enumerate(rendered):
        for j, b in enumerate(rendered):
            if i != j:
                assert not b.startswith(a), f"{a} is a prefix of {b}"


def test_codec_roundtrip_skewed_distribution():
    rng = np.random.default_rng(1)
    data = rng.choice([0, 0, 0, 0, 1, -1, 2, -2, 7], size=5000)
    codec = HuffmanCodec()
    decoded = codec.decode(codec.encode(data))
    np.testing.assert_array_equal(decoded, data)


def test_codec_roundtrip_negative_and_large_symbols():
    data = np.array([-(2**40), 2**40, 0, -1, 1, 2**40, -(2**40)])
    codec = HuffmanCodec()
    np.testing.assert_array_equal(codec.decode(codec.encode(data)), data)


def test_codec_empty_input():
    codec = HuffmanCodec()
    decoded = codec.decode(codec.encode(np.array([], dtype=np.int64)))
    assert decoded.size == 0


def test_codec_compresses_skewed_data_below_raw_size():
    rng = np.random.default_rng(2)
    data = rng.choice([0, 1, -1], size=20_000, p=[0.9, 0.05, 0.05]).astype(np.int64)
    payload = HuffmanCodec().encode(data)
    assert len(payload) < data.size * 2  # far below the 8 bytes/symbol raw cost


def test_codec_rejects_truncated_payload():
    payload = HuffmanCodec().encode(np.array([1, 2, 3, 4]))
    with pytest.raises(CorruptPayloadError):
        HuffmanCodec().decode(payload[: len(payload) - 2])


def test_expected_bits_counts_payload_and_rejects_unknown_symbols():
    data = np.array([1, 1, 1, 2, 2, 3], dtype=np.int64)
    code = HuffmanCode.from_symbols(data)
    length_of = {int(s): int(l) for s, l in zip(code.symbols, code.lengths, strict=True)}
    assert code.expected_bits(data) == sum(length_of[int(s)] for s in data)
    with pytest.raises(KeyError):
        code.expected_bits(np.array([99], dtype=np.int64))
    with pytest.raises(KeyError):
        code.expected_bits(np.array([-99], dtype=np.int64))


def test_table_serialization_roundtrip():
    data = np.array([5, 5, 5, -3, -3, 9])
    code = HuffmanCode.from_symbols(data)
    restored = HuffmanCode.deserialize_table(code.serialize_table())
    np.testing.assert_array_equal(restored.symbols, code.symbols)
    np.testing.assert_array_equal(restored.lengths, code.lengths)
    np.testing.assert_array_equal(restored.codes, code.codes)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=2000)
)
def test_codec_roundtrip_property(values):
    data = np.array(values, dtype=np.int64)
    codec = HuffmanCodec()
    np.testing.assert_array_equal(codec.decode(codec.encode(data)), data)
