"""Federated client: local SGD on private data.

A client owns its dataset, its mini-batch shuffle stream and — when it has
trained at least once — the random-stream states of the model's stochastic
layers (Dropout).  It does **not** necessarily own a model: when constructed
with a :class:`~repro.fl.state.ModelPool` (the fleet-scale runtime path), a
model is borrowed from the pool only for the duration of each training or
evaluation call, so resident models stay bounded by the pool size instead of
the fleet size.  Without a pool the client lazily builds and keeps a private
model on first use, which matches the original eager behaviour bit for bit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Optional

import numpy as np

from repro.data.datasets import SyntheticImageDataset
from repro.data.loader import DataLoader
from repro.fl.config import FLConfig
from repro.fl.state import (
    ModelPool,
    capture_stochastic_state,
    restore_stochastic_state,
)
from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD


@dataclass
class ClientUpdate:
    """What a client sends back to the server after local training."""

    client_id: int
    state_dict: Dict[str, np.ndarray]
    num_samples: int
    train_loss: float
    train_accuracy: float
    train_seconds: float


class FLClient:
    """One federated participant with a private dataset and (possibly pooled)
    local model."""

    def __init__(
        self,
        client_id: int,
        model_fn: Callable[[], Module],
        dataset: SyntheticImageDataset,
        config: FLConfig,
        seed: int = 0,
        model_pool: Optional[ModelPool] = None,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} received an empty dataset")
        self.client_id = int(client_id)
        self.dataset = dataset
        self.config = config
        self._model_fn = model_fn
        self._pool = model_pool
        self._own_model: Optional[Module] = None
        #: Saved bit-generator states of the model's stochastic layers, so a
        #: pooled (shared) model behaves exactly like a private one: each
        #: client's Dropout stream advances only with that client's training.
        self._stochastic_states: Optional[list] = None
        self.loader = DataLoader(
            dataset,
            batch_size=config.batch_size,
            shuffle=True,
            seed=seed,
        )
        self._loss = CrossEntropyLoss()

    @property
    def num_samples(self) -> int:
        """Number of local training samples (the FedAvg weight)."""
        return len(self.dataset)

    @property
    def model(self) -> Module:
        """The client's private model (pool-less clients only).

        Pooled clients have no resident model between rounds — that is the
        point of the fleet-scale runtime — so accessing this raises.
        """
        if self._pool is not None:
            raise AttributeError(
                f"client {self.client_id} borrows models from a pool and holds "
                "none between rounds; use train()/evaluate() instead"
            )
        if self._own_model is None:
            self._own_model = self._model_fn()
        return self._own_model

    @contextmanager
    def _borrow_model(self) -> Iterator[Module]:
        """Yield a model carrying this client's stochastic-layer streams."""
        if self._pool is None:
            yield self.model
            return
        with self._pool.borrow() as model:
            states = (
                self._stochastic_states
                if self._stochastic_states is not None
                else self._pool.pristine_states
            )
            restore_stochastic_state(model, states)
            try:
                yield model
            finally:
                self._stochastic_states = capture_stochastic_state(model)

    def train(
        self,
        global_state: Mapping[str, np.ndarray],
        learning_rate: float | None = None,
    ) -> ClientUpdate:
        """Run the configured number of local epochs starting from ``global_state``.

        ``learning_rate`` overrides the configured rate for this round (used by
        the per-round decay schedule).
        """
        with self._borrow_model() as model:
            # Timer starts once a model is in hand: lazy construction or a
            # wait for a pool slot is setup cost, not local-training time —
            # the eager implementation paid it at init, outside this window.
            start = time.perf_counter()
            model.load_state_dict(dict(global_state))
            model.train()
            optimizer = SGD(
                model.parameters(),
                lr=learning_rate if learning_rate is not None else self.config.learning_rate,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
            )

            total_loss = 0.0
            total_correct = 0.0
            total_seen = 0
            for _ in range(self.config.local_epochs):
                for images, labels in self.loader:
                    optimizer.zero_grad()
                    logits = model(images)
                    loss = self._loss(logits, labels)
                    model.backward(self._loss.backward())
                    optimizer.step()
                    batch = labels.shape[0]
                    total_loss += loss * batch
                    total_correct += F.accuracy(logits, labels) * batch
                    total_seen += batch

            state_dict = model.state_dict()
            elapsed = time.perf_counter() - start
        return ClientUpdate(
            client_id=self.client_id,
            state_dict=state_dict,
            num_samples=self.num_samples,
            train_loss=total_loss / max(total_seen, 1),
            train_accuracy=total_correct / max(total_seen, 1),
            train_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Snapshot this client's advancing streams for a run checkpoint.

        Two streams move during training and must survive a crash for resume
        to be bit-identical: the mini-batch shuffle generator (advances once
        per epoch) and the model's stochastic-layer streams (Dropout; held in
        ``_stochastic_states`` for pooled clients, inside the private model
        otherwise).  Parameters are *not* captured here — the broadcast state
        overwrites them wholesale at the start of every round.
        """
        if self._pool is not None:
            stochastic = (
                list(self._stochastic_states)
                if self._stochastic_states is not None
                else None
            )
        elif self._own_model is not None:
            stochastic = capture_stochastic_state(self._own_model)
        else:
            stochastic = None
        return {
            "loader_rng": self.loader.get_rng_state(),
            "stochastic": stochastic,
        }

    def restore_checkpoint_state(self, state: Mapping) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        self.loader.set_rng_state(state["loader_rng"])
        stochastic = state.get("stochastic")
        if self._pool is not None:
            self._stochastic_states = list(stochastic) if stochastic is not None else None
        elif stochastic is not None:
            restore_stochastic_state(self.model, stochastic)

    def evaluate(self, state_dict: Mapping[str, np.ndarray]) -> Dict[str, float]:
        """Evaluate a state dict on this client's local data (no training).

        The forward pass runs in mini-batches of ``config.eval_batch_size``
        so peak activation memory is bounded by the batch size rather than
        the client's dataset — the loss and accuracy are computed once over
        the concatenated logits, so a dataset that fits in a single batch
        produces exactly the historical one-shot result.
        """
        batch_size = max(1, int(self.config.eval_batch_size))
        with self._borrow_model() as model:
            model.load_state_dict(dict(state_dict))
            model.eval()
            images = self.dataset.images
            chunks = [
                model(images[start : start + batch_size])
                for start in range(0, len(self.dataset), batch_size)
            ]
            logits = chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)
            loss = self._loss(logits, self.dataset.labels)
            return {
                "loss": loss,
                "accuracy": F.accuracy(logits, self.dataset.labels),
                "num_samples": float(len(self.dataset)),
            }
