"""Performance benchmark subsystem.

Three layers, mirroring the rest of the repo's architecture:

* :mod:`repro.bench.harness` — warmup + min-of-N timing of named metrics,
  with optional per-phase breakdowns recorded through the repo's
  :class:`~repro.utils.timing.Timer`.
* :mod:`repro.bench.workloads` — a registry of benchmark workloads: codec
  state-dict compression, full FL rounds on the scheduler/executor/transport
  stack, and Huffman/bitstream micro-benchmarks (timed against the scalar
  references in :mod:`repro.compression.reference`).
* :mod:`repro.bench.reporter` / :mod:`repro.bench.compare` — schema-versioned
  ``BENCH_<workload>.json`` emission, human-readable tables, and a diff mode
  that gates CI on regressions past a tolerance.

Driven by ``python -m repro.cli bench``; see the README for usage.
"""

from repro.bench.compare import ComparisonResult, compare_reports, load_report
from repro.bench.harness import BenchHarness, MetricRecord
from repro.bench.reporter import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    build_report,
    render_report,
    validate_report,
    write_report,
)
from repro.bench.workloads import available_workloads, get_workload, run_workload

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchHarness",
    "ComparisonResult",
    "MetricRecord",
    "available_workloads",
    "build_report",
    "compare_reports",
    "get_workload",
    "load_report",
    "render_report",
    "run_workload",
    "validate_report",
    "write_report",
]
