"""Figure 7 — total communication time per model over different REL bounds.

At a 10 Mbps emulated uplink, the paper compares the time to ship one client
update (compression + decompression + transfer of the compressed payload)
against the uncompressed transfer for error bounds 1e-5 … 1e-2, finding an
order-of-magnitude reduction at every bound (13.26× for AlexNet at 1e-2).

The harness measures the real FedSZ ratio on trained-like state dicts, models
the codec runtime with the Raspberry Pi 5 profile, and evaluates the Eqn.-1
communication time on the configured link.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import FedSZConfig, compress_state_dict
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import PAPER_MODELS, pretrained_like_state_dict
from repro.fl.transport import ClientLink, LinkSpec

DEFAULT_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2)

#: Full state-dict sizes (bytes) of the paper-scale models, used to scale the
#: sub-sampled measurement back to whole-model communication times.
PAPER_STATE_NBYTES: Dict[str, int] = {
    "alexnet": 244_000_000,
    "mobilenetv2": 14_000_000,
    "resnet50": 102_000_000,
}


def run_figure7(
    models: Sequence[str] = PAPER_MODELS,
    error_bounds: Sequence[float] = DEFAULT_BOUNDS,
    bandwidth_mbps: float = 10.0,
    device: Optional[str] = "raspberry-pi-5",
    max_elements_per_tensor: Optional[int] = 200_000,
    dataset: str = "cifar10",
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 7 (communication time vs error bound at 10 Mbps)."""
    result = ExperimentResult(
        name=f"Figure 7 — communication time vs REL bound at {bandwidth_mbps:g} Mbps",
        description=(
            "End-to-end time (codec + transfer) to ship one client update, per model and "
            "error bound, against the uncompressed baseline."
        ),
    )
    # One edge client's uplink from the transport layer: the link carries the
    # bandwidth and the device profile that models codec runtime on-client.
    uplink = ClientLink(0, LinkSpec(bandwidth_mbps=bandwidth_mbps, device=device))

    for model in models:
        state = pretrained_like_state_dict(model, dataset, max_elements_per_tensor, seed)
        sampled_nbytes = sum(v.nbytes for v in state.values())
        full_nbytes = PAPER_STATE_NBYTES.get(model, sampled_nbytes)
        scale = full_nbytes / sampled_nbytes

        baseline = uplink.estimate_upload(full_nbytes, None)
        result.add_row(
            model=model,
            error_bound=0.0,
            compressed=False,
            ratio=1.0,
            communication_seconds=baseline.total_seconds,
            speedup=1.0,
        )

        for bound in error_bounds:
            _, report = compress_state_dict(state, FedSZConfig(error_bound=bound))
            compressed_full = int(report.compressed_nbytes * scale)
            estimate = uplink.estimate_upload(
                full_nbytes,
                compressed_full,
                compressor="sz2",
                error_bound=bound,
                measured_compress_seconds=report.compress_seconds * scale,
                measured_decompress_seconds=(report.decompress_seconds or 0.0) * scale,
            )
            result.add_row(
                model=model,
                error_bound=bound,
                compressed=True,
                ratio=report.ratio,
                communication_seconds=estimate.total_seconds,
                speedup=baseline.total_seconds / estimate.total_seconds,
            )

    for model in models:
        rows = [r for r in result.filter(model=model, compressed=True) if r["error_bound"] == 1e-2]
        if rows:
            result.add_note(
                f"{model}: {rows[0]['speedup']:.1f}x faster than uncompressed at REL 1e-2 "
                "(paper: 13.26x for AlexNet)"
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure7(max_elements_per_tensor=100_000).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
