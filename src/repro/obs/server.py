"""Stdlib HTTP status endpoint + minimal dashboard over a :class:`RunMonitor`.

``MonitorServer`` wraps :class:`http.server.ThreadingHTTPServer` in a daemon
thread so it can sit next to a running fleet without new dependencies or any
effect on the simulation (readers only ever see monitor snapshots).  JSON
routes come from :data:`repro.obs.routes.ROUTES`; ``/`` serves one embedded
HTML page that polls ``/api/status`` and renders progress, the codec
trajectories and the per-client table client-side.

Typical use::

    monitor = RunMonitor()
    with MonitorServer(monitor, port=0) as server:   # port=0 → ephemeral
        print(f"dashboard at http://127.0.0.1:{server.port}/")
        runtime = FederatedRuntime(config, monitor=monitor)
        runtime.run()

or, from the CLI, ``python -m repro.cli fl --monitor-port 8700``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.routes import ROUTES

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro fleet monitor</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
         background: #101418; color: #d8dee4; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
  .cards { display: flex; gap: 1rem; flex-wrap: wrap; }
  .card { background: #1b2128; border: 1px solid #2c343d; border-radius: 6px;
          padding: 0.7rem 1rem; min-width: 9rem; }
  .card .label { font-size: 0.7rem; color: #8b97a3; text-transform: uppercase; }
  .card .value { font-size: 1.3rem; }
  table { border-collapse: collapse; margin-top: 0.5rem; }
  th, td { border: 1px solid #2c343d; padding: 0.25rem 0.6rem;
           font-size: 0.8rem; text-align: right; }
  th { background: #1b2128; color: #8b97a3; }
  #bar { height: 0.6rem; background: #1b2128; border-radius: 3px;
         overflow: hidden; margin: 0.5rem 0 1rem; }
  #bar > div { height: 100%; background: #4c9f70; width: 0; }
  .warn { color: #e5c07b; } .bad { color: #e06c75; }
</style>
</head>
<body>
<h1>repro fleet monitor — <span id="status">connecting…</span></h1>
<div id="bar"><div id="barfill"></div></div>
<div class="cards" id="cards"></div>
<h2>Rounds (last 20)</h2>
<table id="rounds"></table>
<h2>Clients</h2>
<table id="clients"></table>
<script>
function fmt(x, d) {
  if (x === null || x === undefined) return "-";
  return (typeof x === "number") ? x.toFixed(d === undefined ? 3 : d) : x;
}
function card(label, value, cls) {
  return '<div class="card"><div class="label">' + label +
         '</div><div class="value ' + (cls || "") + '">' + value + "</div></div>";
}
function render(s) {
  document.getElementById("status").textContent = s.status;
  var p = s.progress;
  document.getElementById("barfill").style.width =
    Math.round(100 * (p.fraction || 0)) + "%";
  var last = s.rounds.length ? s.rounds[s.rounds.length - 1] : null;
  var cache = s.broadcast_cache || {};
  var lookups = (cache.hits || 0) + (cache.misses || 0);
  var ckpt = s.checkpoint || {};
  var util = last ? last.max_bound_utilization : 0;
  var cards =
    card("round", p.rounds_completed + " / " + p.target_rounds) +
    card("accuracy", last ? fmt(last.accuracy, 4) : "-") +
    card("ratio", last ? fmt(last.ratio, 2) + "x" : "-") +
    card("bound use", fmt(util, 3),
         util > 1 ? "bad" : (util > 0.9 ? "warn" : "")) +
    card("cache hits", lookups ? fmt(100 * (cache.hits || 0) / lookups, 0) + "%" : "-") +
    card("ckpt age", ckpt.age_seconds !== undefined ? fmt(ckpt.age_seconds, 0) + "s" : "-") +
    card("faults", (s.faults || []).length, (s.faults || []).length ? "warn" : "");
  document.getElementById("cards").innerHTML = cards;
  var rh = "<tr><th>round</th><th>acc</th><th>loss</th><th>part</th>" +
           "<th>drop</th><th>strag</th><th>ratio</th><th>bound use</th></tr>";
  s.rounds.slice(-20).forEach(function (r) {
    rh += "<tr><td>" + r.round + "</td><td>" + fmt(r.accuracy, 4) +
          "</td><td>" + fmt(r.loss, 4) + "</td><td>" + r.participants +
          "</td><td>" + r.dropped + "</td><td>" + r.stragglers +
          "</td><td>" + fmt(r.ratio, 2) + "</td><td>" +
          fmt(r.max_bound_utilization, 3) + "</td></tr>";
  });
  document.getElementById("rounds").innerHTML = rh;
  var ch = "<tr><th>client</th><th>rounds</th><th>drops</th><th>strag</th>" +
           "<th>max turnaround</th><th>last ratio</th><th>bound use</th></tr>";
  s.clients.forEach(function (c) {
    ch += "<tr><td>" + c.client_id + "</td><td>" + c.rounds + "</td><td>" +
          c.dropped + "</td><td>" + c.stragglers + "</td><td>" +
          fmt(c.max_turnaround_seconds, 2) + "s</td><td>" +
          fmt(c.last_ratio, 2) + "</td><td>" +
          fmt(c.max_bound_utilization, 3) + "</td></tr>";
  });
  document.getElementById("clients").innerHTML = ch;
}
function poll() {
  fetch("/api/status").then(function (r) { return r.json(); })
    .then(render).catch(function () {
      document.getElementById("status").textContent = "unreachable";
    });
}
poll();
setInterval(poll, 1000);
</script>
</body>
</html>
"""


class _MonitorRequestHandler(BaseHTTPRequestHandler):
    """Dispatches GETs to :data:`ROUTES`; ``/`` serves the dashboard."""

    # Set by MonitorServer before the server starts.
    monitor = None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/index.html"):
            body = DASHBOARD_HTML.encode("utf-8")
            self._respond(200, "text/html; charset=utf-8", body)
            return
        handler = ROUTES.get(path)
        if handler is None:
            body = json.dumps({"error": "not found", "path": path}).encode("utf-8")
            self._respond(404, "application/json", body)
            return
        try:
            payload = handler(self.monitor)
            body = json.dumps(payload).encode("utf-8")
        except Exception as exc:  # pragma: no cover - defensive
            body = json.dumps({"error": f"{type(exc).__name__}: {exc}"}).encode("utf-8")
            self._respond(500, "application/json", body)
            return
        self._respond(200, "application/json", body)

    def _respond(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr logging; runs must own their stdout."""


class MonitorServer:
    """Background HTTP server exposing a monitor's live snapshot.

    ``port=0`` binds an ephemeral port (read it back via :attr:`port`), which
    is what tests use to avoid collisions.  The server thread is a daemon so a
    crashed run never hangs on shutdown, but call :meth:`stop` (or use the
    context-manager form) for an orderly close.
    """

    def __init__(self, monitor, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type(
            "_BoundMonitorRequestHandler", (_MonitorRequestHandler,), {"monitor": monitor}
        )
        self.monitor = monitor
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-monitor-http",
            daemon=True,
        )
        self._started = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._started = False
        self._httpd.server_close()

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = ["MonitorServer", "DASHBOARD_HTML"]
