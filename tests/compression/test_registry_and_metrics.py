"""Tests for the compressor registry and the measurement helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    ErrorBoundMode,
    SZ2Compressor,
    available_lossless_compressors,
    available_lossy_compressors,
    compression_ratio,
    evaluate_lossless,
    evaluate_lossy,
    get_lossless_compressor,
    get_lossy_compressor,
    max_abs_error,
    mean_squared_error,
    psnr,
    register_lossless,
    register_lossy,
)
from repro.compression.base import CompressionStats, pack_array, pack_sections, unpack_array, unpack_sections
from repro.compression.errors import CorruptPayloadError, UnknownCompressorError
from repro.compression.lossless import ZlibCompressor
from repro.compression.metrics import stats_from_evaluation


def test_builtin_registrations_present():
    assert set(available_lossy_compressors()) >= {"sz2", "sz3", "szx", "zfp"}
    assert set(available_lossless_compressors()) >= {"blosc-lz", "zstd", "zlib", "gzip", "xz"}


def test_unknown_names_raise():
    with pytest.raises(UnknownCompressorError):
        get_lossy_compressor("definitely-not-a-compressor")
    with pytest.raises(UnknownCompressorError):
        get_lossless_compressor("definitely-not-a-compressor")


def test_lookup_is_case_insensitive():
    assert get_lossy_compressor("SZ2").name == "sz2"


def test_custom_registration_roundtrip():
    register_lossy("sz2-custom", lambda: SZ2Compressor(block_size=64))
    assert get_lossy_compressor("sz2-custom").block_size == 64
    register_lossless("zlib-fast", lambda: ZlibCompressor(level=1))
    assert get_lossless_compressor("zlib-fast").level == 1


def test_compression_ratio_and_edge_cases():
    assert compression_ratio(100, 10) == 10.0
    assert compression_ratio(100, 0) == float("inf")


def test_error_metrics(rng):
    original = rng.normal(0, 1, 1000)
    noisy = original + 0.01
    assert max_abs_error(original, noisy) == pytest.approx(0.01)
    assert mean_squared_error(original, noisy) == pytest.approx(1e-4)
    assert psnr(original, original) == float("inf")
    assert psnr(original, noisy) > 20


def test_evaluate_lossy_populates_all_fields(spiky_weights):
    evaluation = evaluate_lossy(SZ2Compressor(), spiky_weights, 1e-2, ErrorBoundMode.REL)
    assert evaluation.compressor == "sz2"
    assert evaluation.ratio > 1.0
    assert evaluation.compress_seconds > 0
    assert evaluation.decompress_seconds > 0
    assert evaluation.max_abs_error <= 1e-2 * (spiky_weights.max() - spiky_weights.min()) * 1.001
    row = evaluation.as_row()
    assert {"compressor", "ratio", "throughput_mb_s"} <= set(row)


def test_evaluate_lossless_checks_roundtrip(rng):
    data = rng.integers(0, 255, 10_000, dtype=np.uint8).tobytes()
    evaluation = evaluate_lossless(ZlibCompressor(), data)
    assert evaluation.original_nbytes == len(data)
    assert evaluation.compress_throughput_mbps > 0


def test_stats_from_evaluation(spiky_weights):
    evaluation = evaluate_lossy(SZ2Compressor(), spiky_weights, 1e-2)
    stats = stats_from_evaluation(evaluation)
    assert isinstance(stats, CompressionStats)
    assert stats.ratio == pytest.approx(evaluation.ratio)


def test_compression_stats_properties():
    stats = CompressionStats(original_nbytes=1000, compressed_nbytes=100, compress_seconds=0.001)
    assert stats.ratio == 10.0
    assert stats.compress_throughput_mbps == pytest.approx(1.0)


def test_pack_sections_roundtrip():
    sections = {"meta": b"\x01\x02", "codes": b"payload", "empty": b""}
    assert unpack_sections(pack_sections(sections)) == sections


def test_pack_sections_corrupt_magic():
    payload = pack_sections({"a": b"b"})
    with pytest.raises(CorruptPayloadError):
        unpack_sections(b"ZZZZ" + payload[4:])


def test_pack_array_roundtrip_various_dtypes(rng):
    for dtype in (np.float32, np.float64, np.int64, np.uint8):
        array = rng.integers(0, 100, size=(3, 5)).astype(dtype)
        restored = unpack_array(pack_array(array))
        np.testing.assert_array_equal(restored, array)
        assert restored.dtype == array.dtype


def test_pack_array_scalar_and_empty():
    np.testing.assert_array_equal(unpack_array(pack_array(np.float32(3.5))), np.float32(3.5))
    assert unpack_array(pack_array(np.zeros(0, dtype=np.float32))).size == 0


def test_unpack_array_size_mismatch_detected():
    payload = pack_array(np.arange(10, dtype=np.float32))
    with pytest.raises(CorruptPayloadError):
        unpack_array(payload[:-4])
