"""Experiment harnesses: one module per table/figure of the paper.

Each ``run_*`` function regenerates the corresponding table or figure as an
:class:`~repro.experiments.reporting.ExperimentResult` (rows + notes) that the
benchmarks execute and EXPERIMENTS.md records.  The harnesses accept size
parameters so they can run at laptop scale by default and at paper scale when
given more budget.

| Experiment | Function |
|---|---|
| Table I    | :func:`run_table1`  — EBLC comparison (runtime/throughput/ratio) |
| Table II   | :func:`run_table2`  — lossless codec comparison on metadata |
| Table III  | :func:`run_table3`  — model characteristics |
| Table IV   | :func:`run_table4`  — dataset characteristics |
| Table V    | :func:`run_table5`  — FedSZ compression ratios |
| Figure 2   | :func:`run_figure2` — weights vs scientific data |
| Figure 3   | :func:`run_figure3` — weight distributions |
| Figure 4   | :func:`run_figure4` — accuracy convergence per EBLC |
| Figure 5   | :func:`run_figure5` — accuracy vs error bound |
| Figure 6   | :func:`run_figure6` — epoch-time breakdown |
| Figure 7   | :func:`run_figure7` — communication time vs bound |
| Figure 8   | :func:`run_figure8` — communication time vs bandwidth |
| Figure 9   | :func:`run_figure9` — weak/strong scaling |
| Figure 10  | :func:`run_figure10` — error distributions |
"""

from repro.experiments.figure2_data_characterization import run_figure2
from repro.experiments.figure3_weight_distributions import run_figure3, weight_histogram
from repro.experiments.figure4_convergence import final_accuracies, run_figure4
from repro.experiments.figure5_accuracy_vs_bound import accuracy_cliff_bound, run_figure5
from repro.experiments.figure6_epoch_breakdown import run_figure6
from repro.experiments.figure7_comm_time_vs_bound import run_figure7
from repro.experiments.figure8_bandwidth_sweep import crossover_for, default_bandwidths, run_figure8
from repro.experiments.figure9_scaling import calibrate_scaling_inputs, run_figure9
from repro.experiments.figure10_error_distribution import run_figure10
from repro.experiments.reporting import ExperimentResult, render_table
from repro.experiments.table1_eblc_comparison import run_table1
from repro.experiments.table2_lossless_comparison import metadata_payload, run_table2
from repro.experiments.table3_model_characteristics import run_table3
from repro.experiments.table4_dataset_characteristics import run_table4
from repro.experiments.table5_compression_ratios import run_table5
from repro.experiments.workloads import (
    FederatedSetup,
    build_federated_setup,
    evaluate_state_dict,
    model_weight_sample,
    pretrained_like_state_dict,
    train_tiny_model,
)

__all__ = [
    "ExperimentResult",
    "render_table",
    "run_table1",
    "run_table2",
    "metadata_payload",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure2",
    "run_figure3",
    "weight_histogram",
    "run_figure4",
    "final_accuracies",
    "run_figure5",
    "accuracy_cliff_bound",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "crossover_for",
    "default_bandwidths",
    "run_figure9",
    "calibrate_scaling_inputs",
    "run_figure10",
    "FederatedSetup",
    "build_federated_setup",
    "evaluate_state_dict",
    "model_weight_sample",
    "pretrained_like_state_dict",
    "train_tiny_model",
]
