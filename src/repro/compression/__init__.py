"""Error-bounded lossy and lossless compression substrate.

This package re-implements, from scratch and in pure numpy, the compressor
suite the FedSZ paper builds on:

* :class:`SZ2Compressor` — blockwise hybrid Lorenzo/regression prediction,
  error-bounded quantization and an entropy stage (SZ2 analogue, the
  compressor FedSZ ultimately selects).
* :class:`SZ3Compressor` — multi-level spline-interpolation prediction
  (SZ3 analogue).
* :class:`SZxCompressor` — constant-block detection plus bit truncation
  (SZx analogue, built for speed).
* :class:`ZFPCompressor` — block transform with fixed-precision coefficient
  coding (ZFP analogue).
* Lossless codecs: blosc-lz and zstd stand-ins plus genuine gzip/zlib/xz.

All lossy codecs honour the same error-bound contract used throughout the
paper: with a relative bound ε, every reconstructed value deviates from the
original by at most ε·(max−min) (ZFP, faithful to the original tool, maps the
bound onto a fixed precision instead of guaranteeing it).
"""

from repro.compression.base import (
    CompressionStats,
    ErrorBoundMode,
    LosslessCompressor,
    LossyCompressor,
    resolve_error_bound,
    safe_throughput_mbps,
    validate_lossy_input,
)
from repro.compression.entropy import decode_indices, encode_indices
from repro.compression.errors import (
    CompressionError,
    CorruptPayloadError,
    InvalidErrorBoundError,
    UnknownCompressorError,
    UnsupportedDataError,
)
from repro.compression.huffman import HuffmanCode, HuffmanCodec
from repro.compression.lossless import (
    BloscLZCompressor,
    GzipCompressor,
    XzCompressor,
    ZlibCompressor,
    ZstdCompressor,
)
from repro.compression.metrics import (
    LosslessEvaluation,
    LossyEvaluation,
    compression_ratio,
    evaluate_lossless,
    evaluate_lossy,
    max_abs_error,
    mean_squared_error,
    psnr,
)
from repro.compression.quantizer import (
    QuantizationResult,
    dequantize_residuals,
    quantize_absolute,
    quantize_residuals,
    verify_error_bound,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.registry import (
    available_lossless_compressors,
    available_lossy_compressors,
    get_lossless_compressor,
    get_lossy_compressor,
    register_lossless,
    register_lossy,
    register_predictor,
)
from repro.compression.stages import (
    EntropyStage,
    PredictorStage,
    Quantizer,
    StageContext,
    StagedCompressor,
)
from repro.compression.sz2 import SZ2Compressor
from repro.compression.sz3 import SZ3Compressor
from repro.compression.szx import SZxCompressor
from repro.compression.zfp import ZFPCompressor, precision_for_relative_bound

__all__ = [
    "CompressionStats",
    "ErrorBoundMode",
    "LosslessCompressor",
    "LossyCompressor",
    "resolve_error_bound",
    "safe_throughput_mbps",
    "validate_lossy_input",
    "EntropyStage",
    "PredictorStage",
    "Quantizer",
    "StageContext",
    "StagedCompressor",
    "encode_indices",
    "decode_indices",
    "CompressionError",
    "CorruptPayloadError",
    "InvalidErrorBoundError",
    "UnknownCompressorError",
    "UnsupportedDataError",
    "HuffmanCode",
    "HuffmanCodec",
    "BloscLZCompressor",
    "GzipCompressor",
    "XzCompressor",
    "ZlibCompressor",
    "ZstdCompressor",
    "LossyEvaluation",
    "LosslessEvaluation",
    "compression_ratio",
    "evaluate_lossy",
    "evaluate_lossless",
    "max_abs_error",
    "mean_squared_error",
    "psnr",
    "QuantizationResult",
    "quantize_absolute",
    "quantize_residuals",
    "dequantize_residuals",
    "verify_error_bound",
    "zigzag_encode",
    "zigzag_decode",
    "available_lossy_compressors",
    "available_lossless_compressors",
    "get_lossy_compressor",
    "get_lossless_compressor",
    "register_lossy",
    "register_lossless",
    "register_predictor",
    "SZ2Compressor",
    "SZ3Compressor",
    "SZxCompressor",
    "ZFPCompressor",
    "precision_for_relative_bound",
]
