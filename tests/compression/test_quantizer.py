"""Tests for the uniform error-bounded quantizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.errors import InvalidErrorBoundError
from repro.compression.quantizer import (
    dequantize_residuals,
    quantize_absolute,
    quantize_residuals,
    verify_error_bound,
    zigzag_decode,
    zigzag_encode,
)


def test_absolute_quantization_respects_bound(rng):
    data = rng.normal(0, 1, 5000)
    result = quantize_absolute(data, error_bound=0.01)
    np.testing.assert_array_less(np.abs(result.dequantize() - data), 0.01 + 1e-12)


def test_absolute_quantization_uses_min_as_default_offset(rng):
    data = rng.uniform(5.0, 6.0, 100)
    result = quantize_absolute(data, error_bound=0.05)
    assert result.offset == pytest.approx(data.min())
    assert result.indices.min() >= 0


def test_residual_quantization_roundtrip(rng):
    data = rng.normal(0, 1, 1000)
    predictions = data + rng.normal(0, 0.1, 1000)
    indices = quantize_residuals(data, predictions, error_bound=0.02)
    reconstructed = dequantize_residuals(indices, predictions, error_bound=0.02)
    np.testing.assert_array_less(np.abs(reconstructed - data), 0.02 + 1e-12)


def test_invalid_error_bound_raises():
    with pytest.raises(InvalidErrorBoundError):
        quantize_absolute(np.zeros(3), error_bound=0.0)
    with pytest.raises(InvalidErrorBoundError):
        quantize_residuals(np.zeros(3), np.zeros(3), error_bound=-1.0)


def test_zigzag_mapping_small_values():
    values = np.array([0, -1, 1, -2, 2, -3])
    encoded = zigzag_encode(values)
    assert encoded.tolist() == [0, 1, 2, 3, 4, 5]
    np.testing.assert_array_equal(zigzag_decode(encoded), values)


def test_verify_error_bound_detects_violation():
    original = np.array([0.0, 1.0, 2.0])
    good = original + 0.009
    bad = original + np.array([0.0, 0.05, 0.0])
    assert verify_error_bound(original, good, 0.01)
    assert not verify_error_bound(original, bad, 0.01)


def test_verify_error_bound_empty_arrays():
    assert verify_error_bound(np.array([]), np.array([]), 1e-3)


@settings(max_examples=50, deadline=None)
@given(
    data=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=500),
        elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    ),
    error_bound=st.floats(min_value=1e-6, max_value=10.0),
)
def test_absolute_quantization_error_bound_property(data, error_bound):
    result = quantize_absolute(data, error_bound=error_bound)
    assert verify_error_bound(data, result.dequantize(), error_bound)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=0, max_size=200))
def test_zigzag_roundtrip_property(values):
    array = np.array(values, dtype=np.int64)
    np.testing.assert_array_equal(zigzag_decode(zigzag_encode(array)), array)
    assert np.all(zigzag_encode(array) >= 0)
