"""DET002 — wall-clock must never contaminate simulation state.

Two checks:

1. **Banned sources.** ``time.time``/``time.time_ns`` and the ``datetime``
   "now" family are host wall-clock; nothing under ``src/repro`` may call
   them except ``utils/timing.py`` (the sanctioned measurement module) and
   explicitly justified call sites (inline suppression with a reason).
   ``time.perf_counter``/``time.monotonic`` stay legal for *measurement*.

2. **Taint into deterministic fields.** Any value derived from a timing call
   (including ``perf_counter``) that is passed as a keyword argument — or
   assigned to an attribute — named after a field of
   ``TrainingHistory.deterministic_rows()`` is flagged: those fields must be
   simulation-determined (modelled link times, byte counts), never measured,
   or resume==uninterrupted and serial==parallel comparisons break by
   scheduling noise.  The taint tracking is shallow and per-function scope —
   deliberately simple, matched by the runtime sanitizer which catches what
   the AST cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules import LintRule, register_rule

#: Never legal outside utils/timing.py (real wall-clock).
_BANNED_SOURCES = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Legal for measurement, but their results are tainted for check 2.
_MEASUREMENT_SOURCES = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
}) | _BANNED_SOURCES

#: Fields of TrainingHistory.deterministic_rows() — the bit-identity surface.
#: (Measured fields like train_seconds/compress_seconds are intentionally
#: absent: measurement belongs there.)
DETERMINISTIC_FIELDS = frozenset({
    "global_accuracy", "global_loss",
    "mean_client_loss", "mean_client_accuracy",
    "uplink_bytes", "uplink_seconds",
    "downlink_bytes", "downlink_seconds", "downlink_aggregate_seconds",
    "mean_compression_ratio", "participating_clients",
    "dropped_clients", "straggler_clients",
    "num_samples", "train_loss", "train_accuracy",
    "payload_nbytes", "compression_ratio", "transfer_seconds",
    "delivered", "aggregated", "staleness", "weight",
    "simulated_round_seconds",
})

_EXEMPT_SUFFIXES = ("utils/timing.py",)


@register_rule
class WallClockRule(LintRule):
    rule_id = "DET002"
    summary = "no wall-clock sources; no timing values in deterministic fields"
    invariant = (
        "deterministic_rows() fields are simulation-determined; host clocks "
        "stay in measurement-only fields so resume/executor comparisons hold"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path.endswith(_EXEMPT_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved in _BANNED_SOURCES:
                    yield self.finding(
                        module, node,
                        f"wall-clock call {resolved}() outside utils/timing.py; "
                        "simulation code must use modelled time, measurement "
                        "code time.perf_counter()",
                    )
        for scope in ast.walk(module.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_taint(module, scope)

    # ------------------------------------------------------------------
    # Shallow per-function taint: timing call -> name -> deterministic sink
    # ------------------------------------------------------------------
    def _check_taint(self, module: ModuleContext, fn: ast.FunctionDef) -> Iterator[Finding]:
        tainted: Set[str] = set()

        def is_tainted(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Call):
                return module.resolve(expr.func) in _MEASUREMENT_SOURCES
            if isinstance(expr, ast.Name):
                return expr.id in tainted
            if isinstance(expr, ast.BinOp):
                return is_tainted(expr.left) or is_tainted(expr.right)
            if isinstance(expr, ast.UnaryOp):
                return is_tainted(expr.operand)
            if isinstance(expr, ast.IfExp):
                return is_tainted(expr.body) or is_tainted(expr.orelse)
            return False

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and is_tainted(node.value):
                for target in node.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            tainted.add(name.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                if is_tainted(node.value) or node.target.id in tainted:
                    if is_tainted(node.value):
                        tainted.add(node.target.id)

        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg in DETERMINISTIC_FIELDS and is_tainted(keyword.value):
                        yield self.finding(
                            module, keyword.value,
                            f"timing-derived value passed as {keyword.arg}=, a "
                            "deterministic_rows() field; deterministic fields "
                            "must be simulation-modelled, not measured",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if not is_tainted(value):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in DETERMINISTIC_FIELDS
                    ):
                        yield self.finding(
                            module, node,
                            f"timing-derived value assigned to .{target.attr}, "
                            "a deterministic_rows() field; deterministic "
                            "fields must be simulation-modelled, not measured",
                        )
