"""Unit tests for the crash-safe checkpoint subsystem (schema, atomicity,
retention, validation)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.compression.base import pack_sections
from repro.core.adaptive import AdaptiveErrorBoundController, AdaptiveFedSZCompressor
from repro.core.serializer import frame_checksummed, serialize_named_arrays
from repro.data import load_dataset
from repro.fl import FederatedRuntime, FLConfig, LinkSpec, Transport
from repro.fl.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    capture_runtime,
    checkpoint_path,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    restore_runtime,
    write_checkpoint,
)
from repro.fl.scheduler import SemiSynchronousScheduler
from repro.nn.models import create_model
from repro.privacy import DPFedSZCompressor


@pytest.fixture(scope="module")
def data():
    full = load_dataset("cifar10", num_samples=160, image_size=8, seed=0)
    return full.split(0.75, seed=1)


@pytest.fixture
def model_fn():
    return lambda: create_model("alexnet", "tiny", num_classes=10, seed=9)


def _build_runtime(data, model_fn, **config_overrides):
    train, val = data
    kwargs = dict(num_clients=3, rounds=2, batch_size=16, seed=3)
    kwargs.update(config_overrides)
    return FederatedRuntime(model_fn, train, val, FLConfig(**kwargs))


# ----------------------------------------------------------------------
# Snapshot round trip
# ----------------------------------------------------------------------
def test_checkpoint_bytes_roundtrip_preserves_everything(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn)
    runtime.run_round()
    checkpoint = capture_runtime(runtime)

    path = write_checkpoint(checkpoint, tmp_path)
    assert path == checkpoint_path(tmp_path, 1)
    loaded = load_checkpoint(path)

    assert loaded.schema_version == checkpoint.schema_version
    assert loaded.rounds_completed == 1
    assert loaded.config == checkpoint.config
    assert loaded.scheduler == checkpoint.scheduler
    assert loaded.sampling_rng == checkpoint.sampling_rng
    assert loaded.link_rngs == checkpoint.link_rngs
    assert loaded.clients == checkpoint.clients
    assert loaded.history_rows == checkpoint.history_rows
    assert loaded.model_state.keys() == checkpoint.model_state.keys()
    for name in checkpoint.model_state:
        np.testing.assert_array_equal(loaded.model_state[name], checkpoint.model_state[name])
        assert loaded.model_state[name].dtype == checkpoint.model_state[name].dtype


def test_restore_reproduces_sampling_and_client_streams(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn, client_fraction=0.5)
    runtime.run_round()
    write_checkpoint(capture_runtime(runtime), tmp_path)

    fresh = _build_runtime(data, model_fn, client_fraction=0.5)
    restore_runtime(fresh, load_checkpoint(latest_checkpoint(tmp_path)))

    assert len(fresh.history) == 1
    assert fresh.history.records == runtime.history.records
    assert fresh._sampling_rng.bit_generator.state == runtime._sampling_rng.bit_generator.state
    # Continuing both runtimes draws identical participant samples.
    assert [c.client_id for c in fresh._sample_clients(1)] == [
        c.client_id for c in runtime._sample_clients(1)
    ]


# ----------------------------------------------------------------------
# Corruption, truncation, schema versioning
# ----------------------------------------------------------------------
def _write_valid_checkpoint(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn)
    runtime.run_round()
    return write_checkpoint(capture_runtime(runtime), tmp_path)


def test_corrupt_checkpoint_rejected_with_clear_error(data, model_fn, tmp_path):
    path = _write_valid_checkpoint(data, model_fn, tmp_path)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # flip one byte in the body
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="checksum mismatch"):
        load_checkpoint(path)


def test_truncated_checkpoint_rejected(data, model_fn, tmp_path):
    path = _write_valid_checkpoint(data, model_fn, tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        load_checkpoint(path)
    path.write_bytes(blob[:6])  # shorter than even the frame header
    with pytest.raises(CheckpointError, match="too short"):
        load_checkpoint(path)


def test_foreign_magic_rejected(tmp_path):
    path = tmp_path / "checkpoint_round000001.ckpt"
    path.write_bytes(b"JUNKJUNKJUNKJUNK")
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint(path)


def test_old_schema_version_refused(data, model_fn, tmp_path):
    """A file from an incompatible release must fail loudly, not mis-parse."""
    runtime = _build_runtime(data, model_fn)
    checkpoint = capture_runtime(runtime)
    meta = {
        "schema_version": 0,  # ancient
        "rounds_completed": 0,
        "config": checkpoint.config,
        "scheduler": checkpoint.scheduler,
        "schedule": None,
        "transport": checkpoint.transport,
        "sampling_rng": checkpoint.sampling_rng,
        "link_rngs": {},
        "clients": {},
        "codec": None,
    }
    payload = pack_sections(
        {
            "meta": json.dumps(meta).encode("utf-8"),
            "model": serialize_named_arrays(checkpoint.model_state),
            "history": b"[]",
        }
    )
    path = tmp_path / "checkpoint_round000000.ckpt"
    path.write_bytes(frame_checksummed(CHECKPOINT_MAGIC, payload))
    with pytest.raises(CheckpointError, match="schema version 0"):
        load_checkpoint(path)


# ----------------------------------------------------------------------
# Atomic writes and retention
# ----------------------------------------------------------------------
def test_crash_during_write_leaves_no_partial_files(data, model_fn, tmp_path, monkeypatch):
    """Simulate the process dying at the publish step: the directory must
    contain no (partial) .ckpt and no leftover temporary."""
    runtime = _build_runtime(data, model_fn)
    checkpoint = capture_runtime(runtime)

    def crash(*args, **kwargs):
        raise OSError("simulated crash during rename")

    monkeypatch.setattr(os, "replace", crash)
    with pytest.raises(OSError, match="simulated crash"):
        write_checkpoint(checkpoint, tmp_path)
    assert list(tmp_path.iterdir()) == []


def test_crash_before_publish_is_invisible_to_discovery(data, model_fn, tmp_path):
    """A stray temporary from a hard kill (no cleanup ran) is ignored by
    discovery and never mistaken for a snapshot."""
    (tmp_path / ".checkpoint_round000009.ckpt.tmp.12345").write_bytes(b"partial")
    assert list_checkpoints(tmp_path) == []
    assert latest_checkpoint(tmp_path) is None
    # A later successful write coexists with (and is found despite) the stray.
    runtime = _build_runtime(data, model_fn)
    path = write_checkpoint(capture_runtime(runtime), tmp_path)
    assert latest_checkpoint(tmp_path) == path


def test_retention_keeps_only_newest_snapshots(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn, rounds=5)
    for _ in range(5):
        runtime.run_round()
        write_checkpoint(capture_runtime(runtime), tmp_path, keep_last=2)
    names = [path.name for path in list_checkpoints(tmp_path)]
    assert names == ["checkpoint_round000004.ckpt", "checkpoint_round000005.ckpt"]
    with pytest.raises(ValueError):
        write_checkpoint(capture_runtime(runtime), tmp_path, keep_last=0)


def test_latest_checkpoint_picks_highest_round(tmp_path):
    assert latest_checkpoint(tmp_path / "missing") is None
    for rounds in (3, 1, 2):
        (tmp_path / f"checkpoint_round{rounds:06d}.ckpt").write_bytes(b"x")
    latest = latest_checkpoint(tmp_path)
    assert latest is not None and latest.name == "checkpoint_round000003.ckpt"


# ----------------------------------------------------------------------
# Resume validation
# ----------------------------------------------------------------------
def test_resume_refuses_mismatched_config(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn)
    runtime.run_round()
    write_checkpoint(capture_runtime(runtime), tmp_path)
    other = _build_runtime(data, model_fn, seed=4)
    with pytest.raises(CheckpointError, match="run configuration"):
        restore_runtime(other, load_checkpoint(latest_checkpoint(tmp_path)))


def test_resume_allows_execution_only_config_changes(data, model_fn, tmp_path):
    """The round target and the model-pool bound do not affect the simulated
    outcome, so resuming may change them (e.g. to extend a finished run)."""
    runtime = _build_runtime(data, model_fn)
    runtime.run_round()
    write_checkpoint(capture_runtime(runtime), tmp_path)
    other = _build_runtime(data, model_fn, rounds=7, max_resident_models=2)
    restore_runtime(other, load_checkpoint(latest_checkpoint(tmp_path)))
    assert len(other.history) == 1


def test_resume_refuses_mismatched_scheduler(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn)
    runtime.run_round()
    write_checkpoint(capture_runtime(runtime), tmp_path)
    train, val = data
    other = FederatedRuntime(
        model_fn, train, val,
        FLConfig(num_clients=3, rounds=2, batch_size=16, seed=3),
        scheduler=SemiSynchronousScheduler(deadline_seconds=10.0),
    )
    with pytest.raises(CheckpointError, match="scheduler"):
        restore_runtime(other, load_checkpoint(latest_checkpoint(tmp_path)))


def test_resume_refuses_mismatched_transport(data, model_fn, tmp_path):
    runtime = _build_runtime(data, model_fn)
    runtime.run_round()
    write_checkpoint(capture_runtime(runtime), tmp_path)
    train, val = data
    other = FederatedRuntime(
        model_fn, train, val,
        FLConfig(num_clients=3, rounds=2, batch_size=16, seed=3),
        transport=Transport.heterogeneous([LinkSpec(bandwidth_mbps=5.0)] * 3),
    )
    with pytest.raises(CheckpointError, match="transport"):
        restore_runtime(other, load_checkpoint(latest_checkpoint(tmp_path)))


def test_resume_refuses_mismatched_codec(data, model_fn, tmp_path):
    """A checkpoint from a DP-codec run must not restore into a codec-less
    runtime (or any codec with a different identity/settings)."""
    train, val = data
    config = FLConfig(num_clients=3, rounds=2, batch_size=16, seed=3)
    stateful = FederatedRuntime(
        model_fn, train, val, config, codec=DPFedSZCompressor(seed=5)
    )
    stateful.run_round()
    write_checkpoint(capture_runtime(stateful), tmp_path)
    plain = FederatedRuntime(model_fn, train, val, config)
    with pytest.raises(CheckpointError, match="codec"):
        restore_runtime(plain, load_checkpoint(latest_checkpoint(tmp_path)))
    # Same codec class but a different privacy budget is also refused.
    retuned = FederatedRuntime(
        model_fn, train, val, config, codec=DPFedSZCompressor(epsilon_per_round=2.0, seed=5)
    )
    with pytest.raises(CheckpointError, match="codec"):
        restore_runtime(retuned, load_checkpoint(latest_checkpoint(tmp_path)))
    # The matching codec restores fine.
    matching = FederatedRuntime(
        model_fn, train, val, config, codec=DPFedSZCompressor(seed=5)
    )
    restore_runtime(matching, load_checkpoint(latest_checkpoint(tmp_path)))
    assert matching.codec.rounds_released == stateful.codec.rounds_released


# ----------------------------------------------------------------------
# Stateful-codec snapshots
# ----------------------------------------------------------------------
def test_dp_codec_checkpoint_state_roundtrip():
    codec = DPFedSZCompressor(seed=5)
    codec.compress({"w": np.ones((40, 40), dtype=np.float32)})
    state = codec.checkpoint_state()
    state = json.loads(json.dumps(state))  # must survive the JSON leg

    other = DPFedSZCompressor(seed=99)
    other.restore_checkpoint_state(state)
    assert other.rounds_released == codec.rounds_released
    assert other.spent_epsilon == codec.spent_epsilon
    payload_a = codec.compress({"w": np.ones((40, 40), dtype=np.float32)})
    payload_b = other.compress({"w": np.ones((40, 40), dtype=np.float32)})
    assert payload_a == payload_b  # identical noise stream continuation
    with pytest.raises(ValueError, match="dp-fedsz"):
        other.restore_checkpoint_state({"kind": "adaptive-fedsz"})


def test_adaptive_codec_checkpoint_state_roundtrip():
    codec = AdaptiveFedSZCompressor(
        AdaptiveErrorBoundController(initial_bound=1e-2, tolerance=0.0, patience=1)
    )
    codec.observe_accuracy(0.5)
    codec.observe_accuracy(0.2)  # forces a tighten
    state = json.loads(json.dumps(codec.checkpoint_state()))

    other = AdaptiveFedSZCompressor(
        AdaptiveErrorBoundController(initial_bound=1e-2, tolerance=0.0, patience=1)
    )
    other.restore_checkpoint_state(state)
    assert other.current_bound == codec.current_bound
    assert other.controller.best_accuracy == codec.controller.best_accuracy
    assert other.controller.adjustments == codec.controller.adjustments
    # The restored controller continues the feedback loop identically.
    assert other.observe_accuracy(0.6).action == codec.observe_accuracy(0.6).action
    assert other.current_bound == codec.current_bound


def test_fresh_run_into_stale_directory_prunes_abandoned_timeline(data, model_fn, tmp_path):
    """Regression: retention pruned purely by round number, so a fresh run
    re-using a directory holding a *longer* crashed run's snapshots deleted
    its own just-written snapshot and left the stale files as latest."""
    long_run = _build_runtime(data, model_fn, rounds=6)
    for _ in range(6):
        long_run.run_round()
        write_checkpoint(capture_runtime(long_run), tmp_path, keep_last=3)
    assert [p.name for p in list_checkpoints(tmp_path)] == [
        "checkpoint_round000004.ckpt",
        "checkpoint_round000005.ckpt",
        "checkpoint_round000006.ckpt",
    ]

    fresh = _build_runtime(data, model_fn)
    fresh.run_round()
    written = write_checkpoint(capture_runtime(fresh), tmp_path, keep_last=3)
    assert written.exists()
    assert list_checkpoints(tmp_path) == [written]
    assert latest_checkpoint(tmp_path) == written
    assert load_checkpoint(written).rounds_completed == 1
