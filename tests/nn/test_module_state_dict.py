"""Tests for the Module / Parameter / state_dict machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear, Module, Parameter, ReLU, Sequential


class _TinyNet(Module):
    def __init__(self) -> None:
        super().__init__()
        self.features = Sequential(
            Conv2d(3, 4, 3, padding=1, bias=False),
            BatchNorm2d(4),
            ReLU(),
        )
        self.classifier = Linear(4, 2)

    def forward(self, inputs):
        hidden = self.features(inputs)
        return self.classifier(hidden.mean(axis=(2, 3)))


def test_parameter_shape_and_grad_accumulation():
    parameter = Parameter(np.zeros((2, 3)))
    parameter.accumulate_grad(np.ones((2, 3)))
    parameter.accumulate_grad(np.ones((2, 3)))
    np.testing.assert_array_equal(parameter.grad, 2 * np.ones((2, 3)))
    parameter.zero_grad()
    assert parameter.grad is None


def test_parameter_rejects_mismatched_grad():
    parameter = Parameter(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        parameter.accumulate_grad(np.ones((3, 2)))


def test_named_parameters_use_dotted_paths():
    net = _TinyNet()
    names = [name for name, _ in net.named_parameters()]
    assert "features.0.weight" in names
    assert "features.1.weight" in names  # BatchNorm gamma
    assert "classifier.weight" in names
    assert "classifier.bias" in names


def test_state_dict_includes_buffers():
    net = _TinyNet()
    state = net.state_dict()
    assert "features.1.running_mean" in state
    assert "features.1.running_var" in state
    assert "features.1.num_batches_tracked" in state
    # Every entry is a numpy array copy, not a live view.
    state["classifier.weight"][...] = 123.0
    assert not np.allclose(net.classifier.weight.data, 123.0)


def test_state_dict_roundtrip_restores_exactly(rng):
    net_a = _TinyNet()
    net_b = _TinyNet()
    state = net_a.state_dict()
    net_b.load_state_dict(state)
    for name, value in net_b.state_dict().items():
        np.testing.assert_array_equal(value, state[name])


def test_load_state_dict_strict_detects_missing_and_unexpected():
    net = _TinyNet()
    state = net.state_dict()
    state.pop("classifier.bias")
    with pytest.raises(KeyError):
        net.load_state_dict(state)
    state = net.state_dict()
    state["not.a.parameter"] = np.zeros(3)
    with pytest.raises(KeyError):
        net.load_state_dict(state)
    # Non-strict loading tolerates both.
    net.load_state_dict(state, strict=False)


def test_load_state_dict_rejects_shape_mismatch():
    net = _TinyNet()
    state = net.state_dict()
    state["classifier.weight"] = np.zeros((5, 5), dtype=np.float32)
    with pytest.raises(ValueError):
        net.load_state_dict(state)


def test_train_eval_mode_propagates():
    net = _TinyNet()
    net.eval()
    assert not net.training
    assert not net.features[1].training
    net.train()
    assert net.features[1].training


def test_zero_grad_clears_all_parameters(rng):
    net = _TinyNet()
    for parameter in net.parameters():
        parameter.accumulate_grad(np.ones_like(parameter.data))
    net.zero_grad()
    assert all(parameter.grad is None for parameter in net.parameters())


def test_num_parameters_and_state_nbytes():
    net = _TinyNet()
    expected = sum(p.size for p in net.parameters())
    assert net.num_parameters() == expected
    assert net.state_nbytes() == sum(v.nbytes for v in net.state_dict().values())


def test_setattr_before_init_raises():
    class Broken(Module):
        def __init__(self):
            self.weight = Parameter(np.zeros(3))  # missing super().__init__()

    with pytest.raises(AttributeError):
        Broken()


def test_sequential_indexing_and_append():
    seq = Sequential(ReLU())
    assert len(seq) == 1
    seq.append(ReLU())
    assert len(seq) == 2
    assert isinstance(seq[1], ReLU)
