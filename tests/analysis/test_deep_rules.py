"""Positive/negative fixture pairs for every whole-program rule family.

Mirrors ``test_rules.py``: each deep rule gets at least one tiny project it
must fire on and one structurally-adjacent project it must stay silent on.
The repo-wide pin (``test_repo_src_has_no_deep_findings``) keeps ``src/``
itself clean so the committed empty baseline holds.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_deep, lint_deep_sources
from repro.analysis.deep import get_deep_rule


def findings(rule_id, *sources):
    return lint_deep_sources(
        [(path, textwrap.dedent(source)) for path, source in sources],
        rules=[get_deep_rule(rule_id)],
    )


# ----------------------------------------------------------------------
# CONC001/CONC002 — lock discipline
# ----------------------------------------------------------------------
LOCKED_COUNTER = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self._items = []

        def bump(self):
            with self._lock:
                self._count += 1
                self._items.append(self._count)
    """


class TestConc001:
    def test_fires_on_unguarded_write(self):
        hits = findings("CONC001", ("src/fx/mod.py", LOCKED_COUNTER + """
        def reset(self):
            self._count = 0
    """))
        assert [f.rule for f in hits] == ["CONC001"]
        assert "Counter._count" in hits[0].message

    def test_fires_on_unguarded_in_place_mutation(self):
        hits = findings("CONC001", ("src/fx/mod.py", LOCKED_COUNTER + """
        def drop(self):
            self._items.clear()
    """))
        assert [f.rule for f in hits] == ["CONC001"]
        assert "mutated in place" in hits[0].message

    def test_silent_when_every_mutation_is_locked(self):
        assert not findings("CONC001", ("src/fx/mod.py", LOCKED_COUNTER + """
        def reset(self):
            with self._lock:
                self._count = 0
    """))

    def test_silent_in_lockless_class(self):
        # No lock attribute -> thread-confined by design, out of scope.
        assert not findings("CONC001", ("src/fx/mod.py", """
            class Cache:
                def __init__(self):
                    self._hits = 0
                def record(self):
                    self._hits += 1
        """))

    def test_init_writes_are_exempt(self):
        assert not findings("CONC001", ("src/fx/mod.py", LOCKED_COUNTER))


class TestConc002:
    def test_fires_on_unguarded_read(self):
        hits = findings("CONC002", ("src/fx/mod.py", LOCKED_COUNTER + """
        @property
        def count(self):
            return self._count
    """))
        assert [f.rule for f in hits] == ["CONC002"]
        assert "read without it" in hits[0].message

    def test_silent_when_reads_take_the_lock(self):
        assert not findings("CONC002", ("src/fx/mod.py", LOCKED_COUNTER + """
        @property
        def count(self):
            with self._lock:
                return self._count
    """))

    def test_suppression_comment_is_honoured(self):
        assert not findings("CONC002", ("src/fx/mod.py", LOCKED_COUNTER + """
        @property
        def count(self):
            return self._count  # repro-lint: disable=CONC002 -- torn read tolerated
    """))


# ----------------------------------------------------------------------
# FORK002 — transitive pickle-safety
# ----------------------------------------------------------------------
class TestFork002:
    def test_fires_on_forbidden_type_two_hops_deep(self):
        hits = findings("FORK002", ("src/fx/mod.py", """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class FaultPlan:
                callback: Callable

            @dataclass
            class WorkerTaskSpec:
                client_id: int
                plan: FaultPlan
        """))
        assert [f.rule for f in hits] == ["FORK002"]
        assert "plan.callback" in hits[0].message

    def test_fires_on_reachable_lock_owning_class(self):
        hits = findings("FORK002", ("src/fx/mod.py", """
            import threading
            from dataclasses import dataclass

            class Helper:
                def __init__(self):
                    self._lock = threading.Lock()

            @dataclass
            class WorkerTaskSpec:
                helper: Helper
        """))
        assert [f.rule for f in hits] == ["FORK002"]
        assert "lock attribute" in hits[0].message

    def test_direct_forbidden_field_left_to_fork001(self):
        # Depth-1 is the shallow rule's finding; no double report here.
        assert not findings("FORK002", ("src/fx/mod.py", """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class WorkerTaskSpec:
                callback: Callable
        """))

    def test_silent_on_plain_data_and_cycles(self):
        assert not findings("FORK002", ("src/fx/mod.py", """
            from dataclasses import dataclass
            from typing import Optional

            @dataclass
            class Node:
                value: int
                next: "Optional[Node]"

            @dataclass
            class WorkerTaskSpec:
                head: Node
        """))

    def test_walks_across_modules(self):
        hits = findings(
            "FORK002",
            ("src/fx/faults.py", """
                from dataclasses import dataclass
                from typing import Callable

                @dataclass
                class FaultPlan:
                    callback: Callable
            """),
            ("src/fx/spec.py", """
                from dataclasses import dataclass
                from fx.faults import FaultPlan

                @dataclass
                class WorkerTaskSpec:
                    plan: FaultPlan
            """),
        )
        assert [f.rule for f in hits] == ["FORK002"]


# ----------------------------------------------------------------------
# DET005 — interprocedural RNG/clock taint
# ----------------------------------------------------------------------
class TestDet005:
    def test_fires_on_cross_module_timing_return(self):
        hits = findings(
            "DET005",
            ("src/fx/timing.py", """
                import time

                def elapsed(start):
                    return time.perf_counter() - start
            """),
            ("src/fx/record.py", """
                from fx.timing import elapsed

                class Recorder:
                    def finish(self, record, start):
                        record.uplink_seconds = elapsed(start)
            """),
        )
        assert [f.rule for f in hits] == ["DET005"]
        assert "fx.timing.elapsed" in hits[0].message
        assert hits[0].path == "src/fx/record.py"

    def test_fires_at_call_site_of_parameter_sink(self):
        hits = findings("DET005", ("src/fx/mod.py", """
            import time

            class Store:
                def put(self, record, value):
                    record.uplink_seconds = value

                def run(self, record):
                    start = time.perf_counter()
                    self.put(record, time.perf_counter() - start)
        """))
        assert [f.rule for f in hits] == ["DET005"]
        assert "passed as 'value'" in hits[0].message

    def test_fires_on_entropy_reaching_deterministic_field(self):
        hits = findings("DET005", ("src/fx/mod.py", """
            import os

            def token():
                return os.urandom(8)

            class Recorder:
                def stamp(self, record):
                    record.uplink_bytes = len(token())
        """))
        assert [f.rule for f in hits] == ["DET005"]
        assert "host entropy" in hits[0].message

    def test_fires_on_timing_in_checkpoint_state(self):
        hits = findings("DET005", ("src/fx/mod.py", """
            import time

            class Codec:
                def checkpoint_state(self):
                    return {"stamp": time.perf_counter()}
        """))
        assert [f.rule for f in hits] == ["DET005"]
        assert "checkpoint state" in hits[0].message

    def test_fires_on_wall_clock_bound_as_value(self):
        hits = findings("DET005", ("src/fx/mod.py", """
            import time

            class Monitor:
                def __init__(self, clock=None):
                    self._clock = clock if clock is not None else time.time
        """))
        assert [f.rule for f in hits] == ["DET005"]
        assert "referenced as a value" in hits[0].message

    def test_silent_on_modelled_values(self):
        assert not findings(
            "DET005",
            ("src/fx/model.py", """
                def modelled_seconds(nbytes, bandwidth):
                    return nbytes / bandwidth
            """),
            ("src/fx/record.py", """
                from fx.model import modelled_seconds

                class Recorder:
                    def finish(self, record, nbytes):
                        record.uplink_seconds = modelled_seconds(nbytes, 1e6)
            """),
        )

    def test_silent_on_timing_into_observational_field(self):
        assert not findings("DET005", ("src/fx/mod.py", """
            import time

            def elapsed(start):
                return time.perf_counter() - start

            class Recorder:
                def finish(self, record, start):
                    record.train_seconds_wall = elapsed(start)
        """))

    def test_sanctioned_timing_module_is_exempt(self):
        assert not findings("DET005", ("src/repro/utils/timing.py", """
            import time

            class Probe:
                def __init__(self):
                    self._clock = time.perf_counter
        """))


# ----------------------------------------------------------------------
# EXH001 — event-kind dispatch exhaustiveness
# ----------------------------------------------------------------------
class TestExh001:
    def test_fires_on_pushed_but_never_dispatched_kind(self):
        hits = findings("EXH001", ("src/fx/events.py", """
            ROUND_START = "round-start"
            CLIENT_DONE = "client-done"

            def emit(queue):
                queue.push(kind=ROUND_START)
                queue.push(kind=CLIENT_DONE)

            def consume(event):
                if event.kind == ROUND_START:
                    return 1
                return 0
        """))
        assert [f.rule for f in hits] == ["EXH001"]
        assert "CLIENT_DONE" in hits[0].message
        assert hits[0].line == 3  # anchored at the constant's definition

    def test_silent_when_dispatch_lives_in_another_module(self):
        assert not findings(
            "EXH001",
            ("src/fx/events.py", """
                ROUND_START = "round-start"

                def emit(queue):
                    queue.push(kind=ROUND_START)
            """),
            ("src/fx/scheduler.py", """
                from fx.events import ROUND_START

                def consume(event):
                    return event.kind == ROUND_START
            """),
        )

    def test_membership_dispatch_counts(self):
        assert not findings("EXH001", ("src/fx/events.py", """
            A = "a"
            B = "b"

            def emit(queue):
                queue.push(kind=A)
                queue.push(kind=B)

            def consume(event):
                return event.kind in (A, B)
        """))

    def test_defined_but_never_pushed_kind_is_fine(self):
        assert not findings("EXH001", ("src/fx/events.py", """
            USED = "used"
            DORMANT = "dormant"

            def emit(queue):
                queue.push(kind=USED)

            def consume(event):
                return event.kind == USED
        """))


# ----------------------------------------------------------------------
# EXH002 — field classification and checkpoint coverage
# ----------------------------------------------------------------------
CLASSIFIED_MODULE = """
    from dataclasses import dataclass

    @dataclass
    class Stat:
        x: int
        y: float

    DETERMINISTIC_STAT_FIELDS = frozenset({"x"})
    OBSERVATIONAL_STAT_FIELDS = frozenset({"y"})

    @dataclass
    class History:
        def deterministic_rows(self):
            return []
    """


class TestExh002Classification:
    def test_fires_when_no_classification_sets_exist(self):
        hits = findings("EXH002", ("src/fx/history.py", """
            from dataclasses import dataclass

            @dataclass
            class Stat:
                x: int

            @dataclass
            class History:
                def deterministic_rows(self):
                    return []
        """))
        assert [f.rule for f in hits] == ["EXH002"]
        assert "DETERMINISTIC_STAT_FIELDS" in hits[0].message

    def test_fires_on_unclassified_field(self):
        hits = findings("EXH002", ("src/fx/history.py", """
            from dataclasses import dataclass

            @dataclass
            class Stat:
                x: int
                y: float

            DETERMINISTIC_STAT_FIELDS = frozenset({"x"})
            OBSERVATIONAL_STAT_FIELDS = frozenset()

            @dataclass
            class History:
                def deterministic_rows(self):
                    return []
        """))
        assert [f.rule for f in hits] == ["EXH002"]
        assert "Stat.y" in hits[0].message

    def test_fires_on_overlap_and_phantom(self):
        hits = findings("EXH002", ("src/fx/history.py", """
            from dataclasses import dataclass

            @dataclass
            class Stat:
                x: int

            DETERMINISTIC_STAT_FIELDS = frozenset({"x", "ghost"})
            OBSERVATIONAL_STAT_FIELDS = frozenset({"x"})

            @dataclass
            class History:
                def deterministic_rows(self):
                    return []
        """))
        messages = " | ".join(f.message for f in hits)
        assert "both" in messages and "ghost" in messages

    def test_silent_on_complete_disjoint_partition(self):
        assert not findings("EXH002", ("src/fx/history.py", CLASSIFIED_MODULE))

    def test_rows_defining_class_is_exempt(self):
        # TrainingHistory itself is the API, not a record needing a partition.
        hits = findings("EXH002", ("src/fx/history.py", CLASSIFIED_MODULE))
        assert not [f for f in hits if "History" in f.message]


class TestExh002Checkpoint:
    def test_fires_on_evolving_attr_missing_from_checkpoint(self):
        hits = findings("EXH002", ("src/fx/codec.py", """
            class Codec:
                def __init__(self, rng):
                    self._rng = rng
                    self._bound = 1.0

                def compress(self, x):
                    self._bound = self._bound * 0.5
                    return x + self._rng.normal()

                def checkpoint_state(self):
                    return {"nothing": None}

                def restore_checkpoint_state(self, state):
                    pass
        """))
        assert {f.rule for f in hits} == {"EXH002"}
        attrs = " | ".join(f.message for f in hits)
        assert "_bound" in attrs and "_rng" in attrs

    def test_silent_when_checkpoint_covers_the_state(self):
        assert not findings("EXH002", ("src/fx/codec.py", """
            class Codec:
                def __init__(self, rng):
                    self._rng = rng
                    self._bound = 1.0

                def compress(self, x):
                    self._bound = self._bound * 0.5
                    return x + self._rng.normal()

                def checkpoint_state(self):
                    return {"rng": self._rng.bit_generator.state, "bound": self._bound}

                def restore_checkpoint_state(self, state):
                    self._rng = state["rng"]
                    self._bound = state["bound"]
        """))

    def test_plain_classes_without_codec_surface_are_exempt(self):
        # checkpoint_state alone (e.g. FLClient) doesn't trigger coverage.
        assert not findings("EXH002", ("src/fx/client.py", """
            class FLClient:
                def __init__(self):
                    self._own_model = None

                def train(self):
                    self._own_model = object()

                def checkpoint_state(self):
                    return {}
        """))


# ----------------------------------------------------------------------
# Repo-wide pins
# ----------------------------------------------------------------------
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_repo_src_has_no_deep_findings():
    """The committed baseline is empty and must stay that way."""
    result, _project = lint_deep([REPO_SRC], cache_dir=None)
    rendered = "\n".join(f.render() for f in result.findings)
    assert not result.findings, f"deep lint found:\n{rendered}"


def test_repo_negative_pins_stay_clean():
    """BroadcastCache (lockless by design) and RunMonitor (fully disciplined)
    must not start firing CONC rules as extractor heuristics evolve."""
    result, project = lint_deep([REPO_SRC], cache_dir=None)
    cache_cls = project.classes.get("repro.fl.broadcast.BroadcastCache")
    assert cache_cls is not None and not cache_cls.lock_attrs
    monitor_cls = project.classes.get("repro.obs.monitor.RunMonitor")
    assert monitor_cls is not None and "_lock" in monitor_cls.lock_attrs
    assert not [f for f in result.findings if f.rule.startswith("CONC")]
