"""Ablation benches for the design choices called out in DESIGN.md §6.

Each ablation varies one knob of the FedSZ pipeline on the same trained-like
state dict and checks the expected direction of the effect:

* partition threshold — how much of the state dict takes the lossy path;
* entropy backend — DEFLATE vs canonical Huffman for SZ2's index stream;
* error-bound mode — relative vs absolute bounds;
* lossless codec choice for the metadata partition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import ErrorBoundMode, SZ2Compressor
from repro.core import FedSZConfig, compress_state_dict, partition_state_dict
from repro.experiments import model_weight_sample, pretrained_like_state_dict

_STATE = pretrained_like_state_dict("mobilenetv2", "cifar10", max_elements_per_tensor=80_000, seed=5)
_WEIGHTS = model_weight_sample("alexnet", num_values=200_000, seed=5)


def test_ablation_partition_threshold(run_once):
    def sweep():
        rows = []
        for threshold in (0, 1024, 65_536, 10**9):
            partition = partition_state_dict(_STATE, threshold=threshold)
            _, report = compress_state_dict(
                _STATE, FedSZConfig(error_bound=1e-2, partition_threshold=threshold)
            )
            rows.append(
                {
                    "threshold": threshold,
                    "lossy_fraction": partition.lossy_fraction,
                    "ratio": report.ratio,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    for row in rows:
        print(row)
    fractions = [row["lossy_fraction"] for row in rows]
    assert fractions == sorted(fractions, reverse=True)
    # Sending everything through the lossless path (threshold = 1e9) loses
    # almost all of the compression benefit.
    assert rows[-1]["ratio"] < rows[1]["ratio"] / 2
    # The default threshold keeps ~all of the achievable ratio.
    assert rows[1]["ratio"] > 0.8 * rows[0]["ratio"]


def test_ablation_entropy_backend(run_once):
    def compare():
        deflate = SZ2Compressor(entropy_backend="deflate")
        huffman = SZ2Compressor(entropy_backend="huffman")
        return {
            "deflate_nbytes": len(deflate.compress(_WEIGHTS, 1e-2)),
            "huffman_nbytes": len(huffman.compress(_WEIGHTS, 1e-2)),
        }

    sizes = run_once(compare)
    print()
    print(sizes)
    # Both entropy stages land in the same size class (within 2x of each
    # other); DEFLATE is the default because it is much faster in pure Python.
    assert 0.5 < sizes["deflate_nbytes"] / sizes["huffman_nbytes"] < 2.0


def test_ablation_error_bound_mode(run_once):
    def compare():
        codec = SZ2Compressor()
        value_range = float(_WEIGHTS.max() - _WEIGHTS.min())
        relative = codec.compress(_WEIGHTS, 1e-2, ErrorBoundMode.REL)
        absolute = codec.compress(_WEIGHTS, 1e-2 * value_range, ErrorBoundMode.ABS)
        return {"relative_nbytes": len(relative), "absolute_nbytes": len(absolute)}

    sizes = run_once(compare)
    print()
    print(sizes)
    # An ABS bound equal to REL x range is the same operating point, so the
    # two payloads must be nearly identical — validating the REL resolution.
    assert sizes["relative_nbytes"] == pytest.approx(sizes["absolute_nbytes"], rel=0.02)


def test_ablation_lossless_codec_choice(run_once):
    def sweep():
        rows = []
        for codec_name in ("blosc-lz", "zstd", "xz"):
            _, report = compress_state_dict(
                _STATE, FedSZConfig(error_bound=1e-2, lossless_compressor=codec_name)
            )
            rows.append(
                {
                    "lossless": codec_name,
                    "ratio": report.ratio,
                    "lossless_ratio": report.lossless_ratio,
                    "compress_seconds": report.compress_seconds,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    for row in rows:
        print(row)
    ratios = [row["ratio"] for row in rows]
    # The metadata partition is ~3% of MobileNetV2's bytes, so the choice of
    # lossless codec barely moves the end-to-end ratio (<15% spread) — the
    # reason the paper picks the fastest codec rather than the densest one.
    assert (max(ratios) - min(ratios)) / max(ratios) < 0.15
    assert all(np.isfinite(row["lossless_ratio"]) for row in rows)
