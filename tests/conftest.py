"""Shared pytest fixtures for the FedSZ reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import registry as _compressor_registry
from repro.utils.seeding import set_global_seed


@pytest.fixture(autouse=True)
def _deterministic_seed():
    """Every test starts from the same global seed for reproducibility."""
    set_global_seed(1234)
    yield


@pytest.fixture(autouse=True)
def _isolated_compressor_registry():
    """Snapshot and restore the global compressor registries around each test.

    Tests exercising ``register_lossy`` / ``register_lossless`` would
    otherwise leak their custom factories into every later test in the run —
    exactly the kind of order-dependent state this suite must not have.
    """
    lossy = dict(_compressor_registry._LOSSY_FACTORIES)
    lossless = dict(_compressor_registry._LOSSLESS_FACTORIES)
    yield
    _compressor_registry._LOSSY_FACTORIES.clear()
    _compressor_registry._LOSSY_FACTORIES.update(lossy)
    _compressor_registry._LOSSLESS_FACTORIES.clear()
    _compressor_registry._LOSSLESS_FACTORIES.update(lossless)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(42)


@pytest.fixture
def spiky_weights(rng: np.random.Generator) -> np.ndarray:
    """Weight-like data: dense near zero with sparse large outliers.

    This mirrors the FL model-parameter distributions characterised in
    Figure 2/3 of the paper (spiky 1-D float data).
    """
    values = rng.normal(0.0, 0.02, 20_000).astype(np.float32)
    outlier_positions = rng.choice(values.size, 64, replace=False)
    values[outlier_positions] = rng.uniform(-0.9, 0.9, 64).astype(np.float32)
    return values


@pytest.fixture
def smooth_field(rng: np.random.Generator) -> np.ndarray:
    """Smooth scientific-simulation-like 1-D field (Miranda-style)."""
    x = np.linspace(0.0, 8.0 * np.pi, 20_000)
    signal = np.sin(x) + 0.3 * np.sin(3.1 * x) + 0.002 * rng.normal(0.0, 1.0, x.size)
    return signal.astype(np.float32)
