"""Federated-learning runtime (the APPFL/FedAvg stand-in).

Clients run local SGD on private synthetic data, the server aggregates with
FedAvg and validates the global model, and the simulation loop routes every
client update through a pluggable codec (FedSZ or the uncompressed baseline)
and a bandwidth-limited simulated channel.
"""

from repro.fl.aggregation import fedavg, state_dict_difference
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.config import FLConfig
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.server import EvaluationResult, FLServer
from repro.fl.simulation import FLSimulation, UpdateCodec, run_federated_training

__all__ = [
    "fedavg",
    "state_dict_difference",
    "ClientUpdate",
    "FLClient",
    "FLConfig",
    "RoundRecord",
    "TrainingHistory",
    "EvaluationResult",
    "FLServer",
    "FLSimulation",
    "UpdateCodec",
    "run_federated_training",
]
