"""The TensorTask engine: parallel == serial payloads, per-tensor timings.

The tensor-parallel hot path must be a pure scheduling change — the assembled
FedSZ bitstream is byte-identical to the serial path for any worker count —
and both paths must record measured per-tensor compress/decompress times on
the report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedSZCompressor
from repro.core.config import FedSZConfig
from repro.core.pipeline import (
    TensorTask,
    compress_state_dict,
    decompress_state_dict,
    resolve_codec_workers,
    roundtrip_state_dict,
)


@pytest.fixture(scope="module")
def model_state():
    from repro.nn.models import create_model

    return create_model("mobilenetv2", "tiny", seed=3).state_dict()


def _lossy_names(state, threshold=1024):
    from repro.core.partition import partition_state_dict

    return set(partition_state_dict(state, threshold).lossy)


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_parallel_payload_byte_identical_to_serial(model_state, workers):
    serial_payload, _ = compress_state_dict(model_state, FedSZConfig())
    parallel_payload, report = compress_state_dict(
        model_state, FedSZConfig(parallel_tensors=True, max_codec_workers=workers)
    )
    assert parallel_payload == serial_payload
    assert report.codec_workers == min(workers, report.lossy_tensor_count)


def test_parallel_and_serial_roundtrips_agree(model_state):
    serial, _ = roundtrip_state_dict(model_state, FedSZConfig())
    parallel, _ = roundtrip_state_dict(
        model_state, FedSZConfig(parallel_tensors=True, max_codec_workers=4)
    )
    assert set(serial) == set(parallel)
    for name in serial:
        np.testing.assert_array_equal(serial[name], parallel[name])


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_per_tensor_timing_maps_cover_the_lossy_partition(model_state, parallel):
    config = FedSZConfig(parallel_tensors=parallel, max_codec_workers=4)
    _, report = roundtrip_state_dict(model_state, config)
    expected = _lossy_names(model_state)
    assert set(report.per_tensor_compress_seconds) == expected
    assert set(report.per_tensor_decompress_seconds) == expected
    assert all(seconds >= 0.0 for seconds in report.per_tensor_compress_seconds.values())
    assert report.lossy_compress_seconds == pytest.approx(
        sum(report.per_tensor_compress_seconds.values())
    )
    # Every task's timing window lies inside the compress wall and at most
    # ``codec_workers`` tasks overlap, so the summed codec time is bounded by
    # workers x wall (== the wall itself on the serial path).
    assert report.lossy_compress_seconds <= report.compress_seconds * report.codec_workers


def test_fedsz_compressor_exposes_parallel_knobs(model_state):
    codec = FedSZCompressor(error_bound=1e-2, parallel_tensors=True, max_codec_workers=4)
    payload = codec.compress(model_state)
    assert payload == FedSZCompressor(error_bound=1e-2).compress(model_state)
    restored = codec.decompress(payload)
    assert set(restored) == set(model_state)
    assert set(codec.last_report.per_tensor_decompress_seconds) == _lossy_names(model_state)
    duplicate = codec.clone()
    assert duplicate.config.parallel_tensors and duplicate.config.max_codec_workers == 4


def test_decompress_of_foreign_payload_does_not_pollute_last_report(model_state):
    """Timings from some other payload must not be mixed into a report that
    describes a different compression."""
    codec = FedSZCompressor(error_bound=1e-2)
    codec.compress(model_state)
    own_decode_keys = _lossy_names(model_state)

    foreign_state = {"only.weight": np.ones((64, 64), dtype=np.float32)}
    foreign_payload = FedSZCompressor(error_bound=1e-2).compress(foreign_state)
    restored = codec.decompress(foreign_payload)
    assert set(restored) == {"only.weight"}
    assert codec.last_report.per_tensor_decompress_seconds == {}

    # Decompressing the matching payload still records its timings.
    codec.decompress(codec.compress(model_state))
    assert set(codec.last_report.per_tensor_decompress_seconds) == own_decode_keys


def test_decompress_honours_explicit_config_and_report(model_state):
    payload, report = compress_state_dict(model_state, FedSZConfig())
    state = decompress_state_dict(
        payload,
        FedSZConfig(parallel_tensors=True, max_codec_workers=4),
        report=report,
    )
    assert set(report.per_tensor_decompress_seconds) == _lossy_names(model_state)
    for name, tensor in state.items():
        assert tensor.shape == np.asarray(model_state[name]).shape


def test_resolve_codec_workers_bounds():
    serial = FedSZConfig()
    parallel = FedSZConfig(parallel_tensors=True, max_codec_workers=8)
    assert resolve_codec_workers(serial, 10) == 1
    assert resolve_codec_workers(parallel, 0) == 1
    assert resolve_codec_workers(parallel, 1) == 1
    assert resolve_codec_workers(parallel, 3) == 3  # never more lanes than tasks
    assert resolve_codec_workers(parallel, 100) == 8
    unlimited = FedSZConfig(parallel_tensors=True)  # None → cpu count
    assert 1 <= resolve_codec_workers(unlimited, 100) <= 100


def test_invalid_max_codec_workers_rejected():
    with pytest.raises(ValueError):
        FedSZConfig(max_codec_workers=0)
    with pytest.raises(ValueError):
        FedSZCompressor(max_codec_workers=-2)


def test_tensor_task_nbytes():
    task = TensorTask(name="w", tensor=np.zeros((4, 4), dtype=np.float32))
    assert task.nbytes == 64
