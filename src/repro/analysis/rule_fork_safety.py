"""FORK001 — worker-crossing types must be spawn-safe.

``ProcessParallelExecutor`` ships ``_ClientTaskSpec``/``_WorkerTaskResult``
(and the fault objects they carry) across the fork boundary today; the
planned socket executor will pickle the same types to other *hosts*, where a
fork can no longer smuggle live parent objects through memory inheritance.
This rule proves the spec types stay live-object-free: no callables, no
lambdas, no threading primitives, no queues/pools/modules — ids, seeds and
plain-data specs only.

A class is *worker-crossing* when its name matches the executor protocol
suffixes (``*TaskSpec``, ``*TaskResult``, ``*LinkSpec``), is one of the
fault types shipped inside a spec, or carries an explicit
``# repro-lint: worker-crossing`` comment on its ``class`` line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules import LintRule, register_rule

_CROSSING_SUFFIXES = ("TaskSpec", "TaskResult", "LinkSpec")
_CROSSING_NAMES = frozenset({"ClientCrash", "BroadcastPayload"})
_MARKER_RE = re.compile(r"#\s*repro-lint:\s*worker-crossing")

#: Type names that are (or hold) live process-local objects.
_FORBIDDEN_TYPES = frozenset({
    "Callable", "Lambda", "FunctionType", "MethodType", "ModuleType",
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Thread", "Timer", "local",
    "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue", "JoinableQueue",
    "Process", "Pool", "ThreadPoolExecutor", "ProcessPoolExecutor",
    "Connection", "Pipe", "socket", "SharedMemory",
    "TextIOWrapper", "BufferedReader", "BufferedWriter", "IO", "BinaryIO",
    "TextIO",
})


def _is_worker_crossing(module: ModuleContext, cls: ast.ClassDef) -> bool:
    if cls.name.endswith(_CROSSING_SUFFIXES) or cls.name in _CROSSING_NAMES:
        return True
    header = module.line_at(cls.lineno)
    return _MARKER_RE.search(header) is not None


def _forbidden_in_annotation(annotation: ast.AST) -> Iterator[str]:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in _FORBIDDEN_TYPES:
            yield node.id
        elif isinstance(node, ast.Attribute) and node.attr in _FORBIDDEN_TYPES:
            yield node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("Callable[..., int]") — cheap substring scan.
            for name in _FORBIDDEN_TYPES:
                if re.search(rf"\b{name}\b", node.value):
                    yield name


def _inside_default_factory(lambda_node: ast.Lambda, cls: ast.ClassDef) -> bool:
    """Is this lambda a dataclass ``field(default_factory=lambda: ...)``?

    A default_factory lambda runs at *construction* time in whichever process
    builds the instance; the produced value (not the lambda) is what crosses
    the boundary, so it is fork-safe.
    """
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "default_factory" and keyword.value is lambda_node:
                    return True
    return False


@register_rule
class ForkSafetyRule(LintRule):
    rule_id = "FORK001"
    summary = "worker-crossing task specs stay lambda/closure/lock/thread-free"
    invariant = (
        "executor task specs pickle cleanly under spawn (and future socket "
        "transport): plain data only, no live parent objects"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_worker_crossing(module, node):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        # Field annotations (dataclass fields and class-level attributes).
        for item in cls.body:
            if isinstance(item, ast.AnnAssign):
                for name in sorted(set(_forbidden_in_annotation(item.annotation))):
                    yield self.finding(
                        module, item,
                        f"worker-crossing class {cls.name} declares a "
                        f"{name}-typed field; specs must carry plain data "
                        "(ids, seeds, arrays), not live objects",
                    )

        # Lambdas anywhere in the class body (defaults, methods), except
        # dataclass default_factory thunks which never cross the boundary.
        for node in ast.walk(cls):
            if isinstance(node, ast.Lambda) and not _inside_default_factory(node, cls):
                yield self.finding(
                    module, node,
                    f"lambda inside worker-crossing class {cls.name}; lambdas "
                    "do not pickle — ship a name or plain value and rebuild "
                    "the callable worker-side",
                )

        # Instance attributes bound to obviously-live objects in methods.
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                callee = module.dotted_name(node.value.func) or ""
                tail = callee.rpartition(".")[2]
                if tail not in _FORBIDDEN_TYPES:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        yield self.finding(
                            module, node,
                            f"worker-crossing class {cls.name} binds self."
                            f"{target.attr} to {tail}(); live objects cannot "
                            "cross the fork/spawn boundary",
                        )
