"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import available_experiments, build_parser, main, run_experiment


def test_available_experiments_cover_all_tables_and_figures():
    names = available_experiments()
    assert {"table1", "table2", "table3", "table4", "table5"} <= set(names)
    assert {f"figure{i}" for i in range(2, 11)} <= set(names)
    assert len(names) == 14


def test_run_experiment_quick_mode_returns_rows():
    result = run_experiment("figure3", quick=True)
    assert result.rows
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_cli_list_command(capsys):
    assert main(["list"]) == 0
    captured = capsys.readouterr()
    assert "table1" in captured.out
    assert "figure10" in captured.out


def test_cli_run_prints_table(capsys):
    assert main(["run", "table4", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "CIFAR-10" in captured.out
    assert "Caltech101" in captured.out


def test_cli_run_unknown_experiment_errors(capsys):
    assert main(["run", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_run_writes_output_file(tmp_path, capsys):
    destination = tmp_path / "figure3.txt"
    assert main(["run", "figure3", "--quick", "--output", str(destination)]) == 0
    assert destination.exists()
    assert "mobilenetv2" in destination.read_text()


def test_cli_output_directory_mode(tmp_path):
    assert main(["run", "table4", "--quick", "--output", str(tmp_path / "results")]) == 0
    assert (tmp_path / "results" / "table4.txt").exists()


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_fl_subcommand_runs_layered_runtime(capsys):
    exit_code = main(
        [
            "fl",
            "--rounds", "1",
            "--samples", "160",
            "--clients", "2",
            "--executor", "parallel",
            "--workers", "2",
            "--scheduler", "async",
            "--per-client",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "turnaround_seconds" in out  # per-client table printed


def test_cli_fl_checkpoint_crash_and_resume(tmp_path, capsys):
    """The unreliable-server scenario exits 3 at the simulated crash, leaves
    resumable snapshots behind, and --resume completes the run."""
    directory = tmp_path / "ckpts"
    common = [
        "fl",
        "--scenario", "unreliable-server",
        "--clients", "4",
        "--rounds", "4",
        "--samples", "160",
        "--checkpoint-dir", str(directory),
    ]
    assert main(common) == 3
    err = capsys.readouterr().err
    assert "simulated server crash" in err
    assert "--resume" in err
    assert any(path.suffix == ".ckpt" for path in directory.iterdir())

    assert main(common + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "accuracy" in out


def test_cli_fl_resume_requires_checkpoint_dir(capsys):
    exit_code = main(["fl", "--rounds", "1", "--samples", "160",
                      "--clients", "2", "--resume"])
    assert exit_code == 2
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_cli_fl_checkpoint_every_requires_checkpoint_dir(capsys):
    exit_code = main(["fl", "--rounds", "1", "--samples", "160",
                      "--clients", "2", "--checkpoint-every", "5"])
    assert exit_code == 2
    assert "--checkpoint-dir" in capsys.readouterr().err
