"""Compressor and error-bound selection (Problems 1 and 2, Section IV).

Problem 1 (Eqn. 2) picks the lossy compressor that maximises compression
ratio and minimises runtime subject to the runtime staying below the
uncompressed transfer time on the target link.  Problem 2 (Eqn. 3) picks the
error bound that maximises communication savings while keeping inference
accuracy within a tolerance of the uncompressed baseline.

Both are implemented as explicit, deterministic searches over measured
candidates — the same procedure the paper follows empirically (Tables I and
V, Figure 5) — rather than black-box optimisers, so the selection is
reproducible and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compression.base import ErrorBoundMode
from repro.compression.metrics import LossyEvaluation, evaluate_lossy
from repro.compression.registry import get_lossy_compressor
from repro.network.bandwidth import BandwidthModel


@dataclass(frozen=True)
class CompressorCandidate:
    """One (compressor, error bound) evaluation considered by Problem 1."""

    compressor: str
    error_bound: float
    ratio: float
    compress_seconds: float
    feasible: bool

    @property
    def score(self) -> float:
        """Scalarised objective: ratio per unit runtime (higher is better)."""
        if self.compress_seconds <= 0:
            return float("inf")
        return self.ratio / self.compress_seconds


@dataclass(frozen=True)
class CompressorSelection:
    """Outcome of Problem 1."""

    best: CompressorCandidate
    candidates: List[CompressorCandidate]


def select_lossy_compressor(
    sample: np.ndarray,
    candidates: Sequence[str] = ("sz2", "sz3", "szx", "zfp"),
    error_bound: float = 1e-2,
    mode: ErrorBoundMode = ErrorBoundMode.REL,
    bandwidth_mbps: float = 10.0,
    ratio_weight: float = 1.0,
    runtime_weight: float = 0.25,
    minimum_ratio: float = 1.0,
    timing_repeats: int = 3,
) -> CompressorSelection:
    """Solve Problem 1 empirically on a representative data sample.

    Every candidate is run on ``sample``; candidates whose runtime exceeds the
    uncompressed transfer time ``S / B_N`` or whose ratio falls below
    ``minimum_ratio`` are infeasible.  Among feasible candidates the one with
    the best weighted log-ratio / log-runtime trade-off wins, which mirrors
    the paper's conclusion that a moderately slower compressor is worth a
    clearly higher ratio.

    Runtimes enter the objective, so each candidate is timed
    ``timing_repeats`` times and the minimum is used — otherwise a single
    noisy measurement on a busy machine can crown a different winner from one
    call to the next.
    """
    sample = np.asarray(sample)
    link = BandwidthModel(bandwidth_mbps)
    transfer_budget = link.transmission_seconds(sample.nbytes)

    evaluated: List[CompressorCandidate] = []
    for name in candidates:
        evaluation: LossyEvaluation = evaluate_lossy(
            get_lossy_compressor(name), sample, error_bound, mode,
            timing_repeats=timing_repeats,
        )
        feasible = (
            evaluation.compress_seconds < transfer_budget
            and evaluation.ratio >= minimum_ratio
        )
        evaluated.append(
            CompressorCandidate(
                compressor=name,
                error_bound=error_bound,
                ratio=evaluation.ratio,
                compress_seconds=evaluation.compress_seconds,
                feasible=feasible,
            )
        )

    feasible_candidates = [c for c in evaluated if c.feasible]
    pool = feasible_candidates or evaluated

    def objective(candidate: CompressorCandidate) -> float:
        runtime = max(candidate.compress_seconds, 1e-9)
        return ratio_weight * np.log(max(candidate.ratio, 1e-9)) - runtime_weight * np.log(runtime)

    best = max(pool, key=objective)
    return CompressorSelection(best=best, candidates=evaluated)


@dataclass(frozen=True)
class ErrorBoundCandidate:
    """One error-bound evaluation considered by Problem 2."""

    error_bound: float
    accuracy: float
    communication_nbytes: int


@dataclass(frozen=True)
class ErrorBoundSelection:
    """Outcome of Problem 2."""

    best: ErrorBoundCandidate
    baseline_accuracy: float
    tolerance: float
    candidates: List[ErrorBoundCandidate]


def select_error_bound(
    candidates: Sequence[ErrorBoundCandidate],
    baseline_accuracy: float,
    tolerance: float = 0.005,
) -> ErrorBoundSelection:
    """Solve Problem 2 given measured (bound, accuracy, bytes) triples.

    The selected bound is the one with the smallest communication cost among
    those whose accuracy stays within ``tolerance`` of the uncompressed
    baseline; if none qualifies, the bound with the smallest accuracy gap
    wins.  With the paper's measurements this procedure returns 1e-2.
    """
    if not candidates:
        raise ValueError("select_error_bound needs at least one candidate")
    ordered = sorted(candidates, key=lambda c: c.error_bound)
    within_tolerance = [
        c for c in ordered if baseline_accuracy - c.accuracy <= tolerance
    ]
    if within_tolerance:
        best = min(within_tolerance, key=lambda c: c.communication_nbytes)
    else:
        best = min(ordered, key=lambda c: abs(baseline_accuracy - c.accuracy))
    return ErrorBoundSelection(
        best=best,
        baseline_accuracy=baseline_accuracy,
        tolerance=tolerance,
        candidates=list(ordered),
    )


def candidates_from_measurements(
    measurements: Dict[float, Dict[str, float]],
) -> List[ErrorBoundCandidate]:
    """Convenience: turn ``{bound: {"accuracy":..., "nbytes":...}}`` into candidates."""
    candidates = []
    for bound, values in measurements.items():
        candidates.append(
            ErrorBoundCandidate(
                error_bound=float(bound),
                accuracy=float(values["accuracy"]),
                communication_nbytes=int(values["nbytes"]),
            )
        )
    return candidates


def recommended_error_bound(selection: Optional[ErrorBoundSelection] = None) -> float:
    """The paper's recommended operating point (1e-2) unless a selection says otherwise."""
    if selection is None:
        return 1e-2
    return selection.best.error_bound
