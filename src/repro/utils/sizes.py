"""Byte-size helpers.

FedSZ's evaluation is all about sizes: state-dict bytes before and after
compression, bandwidth in megabits per second, and human-readable reporting of
both.  The helpers here centralise those conversions.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

#: Bytes per unit for the binary prefixes used in reports.
_BINARY_UNITS = ("B", "KiB", "MiB", "GiB", "TiB")

#: Bits per megabit, used when converting bandwidths expressed in Mbps.
BITS_PER_MEGABIT = 1_000_000


def nbytes_of(array: np.ndarray) -> int:
    """Return the raw byte footprint of a numpy array."""
    return int(np.asarray(array).nbytes)


def sizeof_state_dict(state_dict: Mapping[str, np.ndarray]) -> int:
    """Total byte footprint of a model state dictionary."""
    return int(sum(nbytes_of(v) for v in state_dict.values()))


def format_bytes(num_bytes: float, precision: int = 2) -> str:
    """Format a byte count with binary prefixes, e.g. ``'230.00 MiB'``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in _BINARY_UNITS:
        if value < 1024.0 or unit == _BINARY_UNITS[-1]:
            return f"{value:.{precision}f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def megabits_per_second_to_bytes_per_second(mbps: float) -> float:
    """Convert a bandwidth in Mbps (network convention, 10^6) to bytes/s."""
    if mbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {mbps} Mbps")
    return mbps * BITS_PER_MEGABIT / 8.0


def transmission_seconds(num_bytes: float, bandwidth_mbps: float) -> float:
    """Time to push ``num_bytes`` through a ``bandwidth_mbps`` link."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return num_bytes / megabits_per_second_to_bytes_per_second(bandwidth_mbps)
