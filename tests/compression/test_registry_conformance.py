"""Conformance contract for every codec reachable through the registry.

Any compressor registered under :mod:`repro.compression.registry` — built-in
or plugged in later — must honour the same minimal contract the FedSZ
pipeline and the parallel executors rely on: cheap ``clone()``, round-trips
of degenerate inputs (empty, scalar) and of float32/float64 tensors, and
correct ABS vs REL error-bound semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    ErrorBoundMode,
    available_lossless_compressors,
    available_lossy_compressors,
    get_lossless_compressor,
    get_lossy_compressor,
)
from repro.compression.quantizer import verify_error_bound


@pytest.fixture(params=available_lossy_compressors())
def lossy_codec(request):
    return get_lossy_compressor(request.param)


@pytest.fixture(params=available_lossless_compressors())
def lossless_codec(request):
    return get_lossless_compressor(request.param)


def _weight_like(dtype):
    rng = np.random.default_rng(11)
    return rng.normal(0.0, 0.05, 4096).astype(dtype)


# ----------------------------------------------------------------------
# Lossy codecs
# ----------------------------------------------------------------------
def test_lossy_clone_is_independent_same_config(lossy_codec):
    duplicate = lossy_codec.clone()
    assert duplicate is not lossy_codec
    assert type(duplicate) is type(lossy_codec)
    assert vars(duplicate) == vars(lossy_codec)
    # The clone is immediately usable and mutations do not flow back.
    data = _weight_like(np.float32)
    np.testing.assert_array_equal(
        duplicate.decompress(duplicate.compress(data, 1e-2)),
        lossy_codec.decompress(lossy_codec.compress(data, 1e-2)),
    )


def test_lossy_roundtrips_empty_array(lossy_codec):
    for dtype in (np.float32, np.float64):
        restored = lossy_codec.decompress(lossy_codec.compress(np.array([], dtype=dtype), 1e-2))
        assert restored.size == 0
        assert restored.dtype == dtype


def test_lossy_roundtrips_scalar(lossy_codec):
    scalar = np.array(0.375, dtype=np.float32)
    restored = lossy_codec.decompress(lossy_codec.compress(scalar, 1e-2))
    assert restored.shape == ()
    assert restored.dtype == scalar.dtype
    assert abs(float(restored) - 0.375) < 0.1


@pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["float32", "float64"])
def test_lossy_roundtrips_tensor_dtype_and_shape(lossy_codec, dtype):
    data = _weight_like(dtype).reshape(64, 64)
    restored = lossy_codec.decompress(lossy_codec.compress(data, 1e-2))
    assert restored.shape == data.shape
    assert restored.dtype == data.dtype


def test_lossy_honors_abs_vs_rel_bounds(lossy_codec):
    data = _weight_like(np.float64)
    value_range = float(data.max() - data.min())
    rel_bound, abs_bound = 1e-2, 1e-3
    rel_restored = lossy_codec.decompress(
        lossy_codec.compress(data, rel_bound, ErrorBoundMode.REL)
    )
    abs_restored = lossy_codec.decompress(
        lossy_codec.compress(data, abs_bound, ErrorBoundMode.ABS)
    )
    if lossy_codec.strictly_bounded:
        assert verify_error_bound(data, rel_restored, rel_bound * value_range)
        assert verify_error_bound(data, abs_restored, abs_bound)
    else:
        # ZFP-style codecs map the bound onto a retained precision; the two
        # modes must still both reconstruct and track the requested tolerance
        # direction (the ABS bound here is the tighter one).
        rel_error = float(np.max(np.abs(data - rel_restored)))
        abs_error = float(np.max(np.abs(data - abs_restored)))
        assert abs_error <= rel_error
        assert abs_error < value_range


# ----------------------------------------------------------------------
# Lossless codecs
# ----------------------------------------------------------------------
def test_lossless_clone_is_independent_same_config(lossless_codec):
    duplicate = lossless_codec.clone()
    assert duplicate is not lossless_codec
    assert type(duplicate) is type(lossless_codec)
    payload = b"the same bytes through any clone" * 32
    assert duplicate.decompress(duplicate.compress(payload)) == payload


def test_lossless_roundtrips_empty_and_binary(lossless_codec):
    for payload in (b"", bytes(range(256)) * 16):
        assert lossless_codec.decompress(lossless_codec.compress(payload)) == payload
