"""Tests for the FedSZ pipeline, serializer and public compressor API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.base import ErrorBoundMode
from repro.compression.errors import CorruptPayloadError
from repro.core import (
    FedSZCompressor,
    FedSZConfig,
    IdentityCodec,
    compress_state_dict,
    decompress_state_dict,
    deserialize_named_arrays,
    roundtrip_state_dict,
    serialize_named_arrays,
)
from repro.core.serializer import build_fedsz_payload, parse_fedsz_payload
from repro.nn.models import create_model


@pytest.fixture(scope="module")
def tiny_state():
    return create_model("alexnet", "tiny", num_classes=10, seed=3).state_dict()


@pytest.fixture(scope="module")
def mobilenet_state():
    return create_model("mobilenetv2", "tiny", num_classes=10, seed=3).state_dict()


# ----------------------------------------------------------------------
# Serializer
# ----------------------------------------------------------------------
def test_named_array_serialization_roundtrip(tiny_state):
    payload = serialize_named_arrays(tiny_state)
    restored = deserialize_named_arrays(payload)
    assert set(restored) == set(tiny_state)
    for name in tiny_state:
        np.testing.assert_array_equal(restored[name], tiny_state[name])
        assert restored[name].dtype == tiny_state[name].dtype


def test_fedsz_payload_framing_roundtrip():
    header = {"lossy_compressor": "sz2", "error_bound": 1e-2}
    payload = build_fedsz_payload(header, {"a.weight": b"\x01\x02"}, b"lossless-bytes")
    parsed_header, lossy, lossless = parse_fedsz_payload(payload)
    assert parsed_header["lossy_compressor"] == "sz2"
    assert parsed_header["format_version"] == 1
    assert lossy == {"a.weight": b"\x01\x02"}
    assert lossless == b"lossless-bytes"


def test_fedsz_payload_rejects_missing_sections():
    with pytest.raises(CorruptPayloadError):
        parse_fedsz_payload(serialize_named_arrays({"x": np.zeros(3)}))


def test_fedsz_payload_rejects_corrupt_header():
    payload = build_fedsz_payload({"x": 1}, {}, b"")
    with pytest.raises(CorruptPayloadError):
        parse_fedsz_payload(payload[: len(payload) // 2])


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
def test_pipeline_roundtrip_preserves_keys_shapes_dtypes(tiny_state):
    restored, report = roundtrip_state_dict(tiny_state, FedSZConfig(error_bound=1e-2))
    assert set(restored) == set(tiny_state)
    for name, tensor in tiny_state.items():
        assert restored[name].shape == tensor.shape
        assert restored[name].dtype == tensor.dtype
    assert report.ratio > 1.0
    assert report.decompress_seconds is not None


def test_pipeline_respects_relative_error_bound(tiny_state):
    config = FedSZConfig(error_bound=1e-2)
    restored, _ = roundtrip_state_dict(tiny_state, config)
    for name, tensor in tiny_state.items():
        if "weight" in name and tensor.size > config.partition_threshold:
            value_range = float(tensor.max() - tensor.min())
            max_error = float(np.max(np.abs(restored[name] - tensor)))
            assert max_error <= 1e-2 * value_range * 1.01 + 1e-7, name
        else:
            np.testing.assert_array_equal(restored[name], tensor)


def test_pipeline_lossless_partition_is_bit_exact(mobilenet_state):
    restored, _ = roundtrip_state_dict(mobilenet_state, FedSZConfig(error_bound=1e-1))
    for name, tensor in mobilenet_state.items():
        if "running_" in name or "num_batches" in name or "bias" in name:
            np.testing.assert_array_equal(restored[name], tensor)


def test_pipeline_report_accounting(tiny_state):
    payload, report = compress_state_dict(tiny_state, FedSZConfig())
    assert report.compressed_nbytes == len(payload)
    assert report.original_nbytes == sum(v.nbytes for v in tiny_state.values())
    assert report.lossy_tensor_count + report.lossless_tensor_count == len(tiny_state)
    assert report.lossy_original_nbytes + report.lossless_original_nbytes == report.original_nbytes
    assert set(report.per_tensor_ratio) == {
        name
        for name, value in tiny_state.items()
        if "weight" in name and value.size > 1024
    }
    row = report.as_row()
    assert row["ratio"] == pytest.approx(report.ratio)


def test_larger_error_bound_gives_smaller_payload(tiny_state):
    loose, _ = compress_state_dict(tiny_state, FedSZConfig(error_bound=1e-1))
    tight, _ = compress_state_dict(tiny_state, FedSZConfig(error_bound=1e-4))
    assert len(loose) < len(tight)


@pytest.mark.parametrize("compressor", ["sz2", "sz3", "szx", "zfp"])
def test_pipeline_works_with_every_eblc(tiny_state, compressor):
    config = FedSZConfig(error_bound=1e-2, lossy_compressor=compressor)
    restored, report = roundtrip_state_dict(tiny_state, config)
    assert set(restored) == set(tiny_state)
    assert report.ratio > 1.0


@pytest.mark.parametrize("lossless", ["blosc-lz", "zstd", "gzip", "zlib", "xz"])
def test_pipeline_works_with_every_lossless_codec(mobilenet_state, lossless):
    config = FedSZConfig(error_bound=1e-2, lossless_compressor=lossless)
    restored, _ = roundtrip_state_dict(mobilenet_state, config)
    for name, tensor in mobilenet_state.items():
        if "running_" in name:
            np.testing.assert_array_equal(restored[name], tensor)


def test_pipeline_absolute_bound_mode(tiny_state):
    config = FedSZConfig(error_bound=1e-3, error_bound_mode=ErrorBoundMode.ABS)
    restored, _ = roundtrip_state_dict(tiny_state, config)
    for name, tensor in tiny_state.items():
        if "weight" in name and tensor.size > config.partition_threshold:
            assert float(np.max(np.abs(restored[name] - tensor))) <= 1e-3 * 1.01 + 1e-7


def test_config_validation():
    with pytest.raises(ValueError):
        FedSZConfig(error_bound=0.0)
    with pytest.raises(ValueError):
        FedSZConfig(partition_threshold=-1)
    assert "sz2" in FedSZConfig().describe()


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def test_fedsz_compressor_end_to_end(tiny_state):
    codec = FedSZCompressor(error_bound=1e-2)
    payload = codec.compress(tiny_state)
    restored = codec.decompress(payload)
    assert set(restored) == set(tiny_state)
    report = codec.report()
    assert report.ratio > 1.5
    assert codec.last_report is report


def test_fedsz_compressor_report_before_use_raises():
    with pytest.raises(RuntimeError):
        FedSZCompressor().report()


def test_fedsz_compressor_worthwhile_decision(tiny_state):
    codec = FedSZCompressor(error_bound=1e-2)
    codec.compress(tiny_state)
    slow_link = codec.is_worthwhile(bandwidth_mbps=1.0)
    assert slow_link.worthwhile


def test_fedsz_compression_errors_population(tiny_state):
    codec = FedSZCompressor(error_bound=1e-2)
    restored = codec.decompress(codec.compress(tiny_state))
    errors = codec.compression_errors(tiny_state, restored)
    assert errors.size > 1000
    assert np.abs(errors).max() > 0


def test_fedsz_from_config(tiny_state):
    config = FedSZConfig(error_bound=5e-3, lossy_compressor="sz3")
    codec = FedSZCompressor.from_config(config)
    assert codec.config is config
    codec.compress(tiny_state)
    assert codec.report().ratio > 1.0


def test_identity_codec_roundtrip(tiny_state):
    codec = IdentityCodec()
    payload = codec.compress(tiny_state)
    restored = codec.decompress(payload)
    for name in tiny_state:
        np.testing.assert_array_equal(restored[name], tiny_state[name])
    assert codec.last_report.ratio == pytest.approx(1.0, rel=0.05)


def test_lossy_options_applied_when_valid(tiny_state):
    payload, report = compress_state_dict(
        tiny_state, FedSZConfig(error_bound=1e-2, lossy_options={"block_size": 64})
    )
    assert report.ratio > 1.0
    restored = decompress_state_dict(payload)
    assert set(restored) == set(tiny_state)


def test_lossy_options_rejects_unknown_names(tiny_state):
    """A typo'd option must fail loudly instead of being setattr-ed onto the
    codec instance and silently ignored."""
    with pytest.raises(ValueError, match="blocksize"):
        compress_state_dict(
            tiny_state, FedSZConfig(error_bound=1e-2, lossy_options={"blocksize": 64})
        )
    with pytest.raises(ValueError, match="available options"):
        FedSZCompressor(lossy_options={"not_an_option": 1}).compress(tiny_state)


def test_codec_clone_is_independent(tiny_state):
    codec = FedSZCompressor(error_bound=1e-3, lossy_compressor="sz3")
    clone = codec.clone()
    assert clone is not codec
    assert clone.config == codec.config
    clone.compress(tiny_state)
    assert clone.last_report is not None
    assert codec.last_report is None  # the original's report is untouched
    identity = IdentityCodec()
    identity_clone = identity.clone()
    identity_clone.compress(tiny_state)
    assert identity.last_report is None
