"""Common interfaces and payload framing for all compressors.

Two abstract interfaces are defined:

* :class:`LossyCompressor` — error-bounded lossy compressors (SZ2, SZ3, SZx,
  ZFP analogues).  ``compress`` takes a float array and an error bound and
  returns a self-describing byte payload; ``decompress`` reconstructs an array
  with the same shape/dtype whose element-wise deviation from the original is
  bounded by the requested error bound.
* :class:`LosslessCompressor` — byte-oriented lossless codecs (blosc-lz, zstd,
  gzip, zlib, xz stand-ins/wrappers).

A small section-based framing format (:func:`pack_sections` /
:func:`unpack_sections`) is shared by all payloads so every compressor byte
stream is self-describing and independently decodable.
"""

from __future__ import annotations

import copy
import math
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.compression.errors import (
    CorruptPayloadError,
    InvalidErrorBoundError,
    UnsupportedDataError,
)

_SECTION_MAGIC = b"RPRS"
_HEADER_STRUCT = struct.Struct("<4sI")
_ENTRY_STRUCT = struct.Struct("<HQ")


class ErrorBoundMode(str, Enum):
    """How the numeric error bound argument should be interpreted.

    * ``ABS`` — the bound is an absolute tolerance: ``|x - x̂| <= bound``.
    * ``REL`` — the bound is relative to the value range of the input:
      ``|x - x̂| <= bound * (max(x) - min(x))``.  This is the mode used
      throughout the FedSZ paper ("REL error bound").
    """

    ABS = "abs"
    REL = "rel"


def resolve_error_bound(
    data: np.ndarray, error_bound: float, mode: ErrorBoundMode
) -> float:
    """Convert a (bound, mode) pair into an absolute tolerance for ``data``.

    For ``REL`` mode the value range of ``data`` is used, matching SZ's
    ``REL`` semantics.  A constant array has zero range; in that case the
    resolved absolute bound is 0.0 and callers are expected to fall back to an
    exact representation (which is trivially cheap for constant data).
    """
    if not np.isfinite(error_bound) or error_bound <= 0:
        raise InvalidErrorBoundError(
            f"error bound must be a positive finite number, got {error_bound!r}"
        )
    if mode == ErrorBoundMode.ABS:
        return float(error_bound)
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return float(error_bound)
    value_range = float(finite.max() - finite.min())
    return float(error_bound * value_range)


def safe_throughput_mbps(nbytes: int, seconds: Optional[float]) -> float:
    """Throughput in MB/s that never raises on degenerate timings.

    Sub-microsecond codec calls can report an elapsed time of exactly zero
    (clock granularity) or a denormal float (min-of-N over already-tiny
    measurements); both map to ``inf`` — "too fast to measure" — instead of a
    ``ZeroDivisionError`` or an overflow warning escaping into a report.
    """
    if seconds is None or not seconds > 0.0 or not math.isfinite(seconds):
        return float("inf")
    throughput = nbytes / 1e6 / seconds
    if not math.isfinite(throughput):  # denormal elapsed overflows the division
        return float("inf")
    return throughput


@dataclass(frozen=True)
class CompressionStats:
    """Measurements describing one compression invocation."""

    original_nbytes: int
    compressed_nbytes: int
    compress_seconds: float
    decompress_seconds: Optional[float] = None
    max_abs_error: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Compression ratio (original size / compressed size)."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @property
    def compress_throughput_mbps(self) -> float:
        """Compression throughput in MB/s (10^6 bytes per second)."""
        return safe_throughput_mbps(self.original_nbytes, self.compress_seconds)

    @property
    def decompress_throughput_mbps(self) -> float:
        """Decompression throughput in MB/s of reconstructed data."""
        return safe_throughput_mbps(self.original_nbytes, self.decompress_seconds)


def validate_lossy_input(data: np.ndarray, codec: str = "lossy") -> np.ndarray:
    """Uniform input policy shared by every error-bounded lossy codec.

    The policy (identical for SZ2, SZ3, SZx, ZFP and any predictor-stage codec
    added through :mod:`repro.compression.stages`):

    * only floating-point dtypes are accepted — integer, boolean, complex and
      object arrays raise :class:`UnsupportedDataError`;
    * every value must be finite: ``NaN``, ``+Inf`` and ``-Inf`` all raise
      :class:`UnsupportedDataError`.  Error-bounded quantization of a
      non-finite value is undefined (``|x - x̂| <= ε`` cannot hold), and
      silently passing such values through would corrupt downstream model
      aggregation, so rejection is loud and happens before any bytes are
      produced;
    * empty arrays are allowed and round-trip to empty arrays.

    ``codec`` names the caller in the error message so pipeline-level failures
    point at the stage that rejected the tensor.
    """
    data = np.asarray(data)
    if data.dtype.kind not in "f":
        raise UnsupportedDataError(
            f"{codec}: lossy compressors expect floating-point data, got dtype {data.dtype}"
        )
    if not np.all(np.isfinite(data)):
        raise UnsupportedDataError(
            f"{codec}: lossy compressors require finite input values "
            "(NaN/+Inf/-Inf are rejected; see repro.compression.base.validate_lossy_input)"
        )
    return data


class LossyCompressor(ABC):
    """Interface implemented by every error-bounded lossy compressor."""

    #: Short registry name, e.g. ``"sz2"``.
    name: str = "lossy"

    #: Whether decompressed output strictly satisfies ``|x - x̂| <= ε``.
    #: ZFP's fixed-precision mode is the one analogue that does not.
    strictly_bounded: bool = True

    def clone(self) -> "LossyCompressor":
        """A fresh codec with the same configuration.

        Stage-based codecs keep all state in plain configuration attributes
        (stages themselves are stateless), so a shallow copy is a complete,
        O(1) clone.  Codecs carrying mutable state must override this.
        """
        return copy.copy(self)

    @abstractmethod
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        """Compress a floating-point array into a self-describing payload."""

    @abstractmethod
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the array encoded in ``payload``."""

    def roundtrip(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> Tuple[np.ndarray, CompressionStats]:
        """Compress then decompress, returning the reconstruction and stats."""
        import time

        data = np.asarray(data)
        start = time.perf_counter()
        payload = self.compress(data, error_bound, mode)
        compress_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reconstructed = self.decompress(payload)
        decompress_seconds = time.perf_counter() - start
        max_abs_error = float(np.max(np.abs(data.astype(np.float64) - reconstructed)))
        stats = CompressionStats(
            original_nbytes=int(data.nbytes),
            compressed_nbytes=len(payload),
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            max_abs_error=max_abs_error,
            metadata={"compressor": self.name, "error_bound": error_bound, "mode": mode.value},
        )
        return reconstructed, stats

    def _validate_input(self, data: np.ndarray) -> np.ndarray:
        """Apply the shared input policy (see :func:`validate_lossy_input`)."""
        return validate_lossy_input(data, codec=self.name)


class LosslessCompressor(ABC):
    """Interface implemented by byte-oriented lossless codecs."""

    #: Short registry name, e.g. ``"blosc-lz"``.
    name: str = "lossless"

    def clone(self) -> "LosslessCompressor":
        """A fresh codec with the same configuration (see LossyCompressor.clone)."""
        return copy.copy(self)

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress a byte string."""

    @abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Exactly reconstruct the byte string encoded in ``payload``."""

    def roundtrip(self, data: bytes) -> Tuple[bytes, CompressionStats]:
        """Compress then decompress, returning the output bytes and stats."""
        import time

        start = time.perf_counter()
        payload = self.compress(data)
        compress_seconds = time.perf_counter() - start
        start = time.perf_counter()
        restored = self.decompress(payload)
        decompress_seconds = time.perf_counter() - start
        stats = CompressionStats(
            original_nbytes=len(data),
            compressed_nbytes=len(payload),
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            metadata={"compressor": self.name},
        )
        return restored, stats


def begin_sections(buffer: bytearray, count: int) -> None:
    """Write the section-stream header (magic + section count) into ``buffer``."""
    buffer += _HEADER_STRUCT.pack(_SECTION_MAGIC, count)


def append_section_header(buffer: bytearray, name: str, data_nbytes: int) -> None:
    """Write one section's entry header + name, promising ``data_nbytes`` of data.

    The caller must append exactly ``data_nbytes`` bytes afterwards; this
    split lets composite payloads stream nested sections straight into the
    final buffer instead of materialising them as an intermediate blob first.
    """
    encoded_name = name.encode("utf-8")
    if len(encoded_name) > 0xFFFF:
        raise ValueError(f"section name too long: {name!r}")
    buffer += _ENTRY_STRUCT.pack(len(encoded_name), data_nbytes)
    buffer += encoded_name


def append_section(buffer: bytearray, name: str, data: bytes) -> None:
    """Write one complete named section (header + data) into ``buffer``."""
    append_section_header(buffer, name, len(data))
    buffer += data


def sections_nbytes(sizes: Mapping[str, int]) -> int:
    """Framed size of a section stream holding the given per-section data sizes."""
    total = _HEADER_STRUCT.size
    for name, size in sizes.items():
        total += _ENTRY_STRUCT.size + len(name.encode("utf-8")) + size
    return total


def pack_sections(sections: Mapping[str, bytes]) -> bytes:
    """Serialize named byte sections into a single framed payload.

    The format is: magic, section count, then for each section a
    (name-length, data-length) header followed by the UTF-8 name and the raw
    data.  Section order is preserved.
    """
    buffer = bytearray()
    begin_sections(buffer, len(sections))
    for name, data in sections.items():
        append_section(buffer, name, bytes(data))
    return bytes(buffer)


def unpack_sections(payload: bytes) -> Dict[str, bytes]:
    """Inverse of :func:`pack_sections`."""
    if len(payload) < _HEADER_STRUCT.size:
        raise CorruptPayloadError("payload too short to contain a section header")
    magic, count = _HEADER_STRUCT.unpack_from(payload, 0)
    if magic != _SECTION_MAGIC:
        raise CorruptPayloadError(f"bad payload magic {magic!r}")
    offset = _HEADER_STRUCT.size
    sections: Dict[str, bytes] = {}
    for _ in range(count):
        if offset + _ENTRY_STRUCT.size > len(payload):
            raise CorruptPayloadError("truncated section entry header")
        name_len, data_len = _ENTRY_STRUCT.unpack_from(payload, offset)
        offset += _ENTRY_STRUCT.size
        end_of_name = offset + name_len
        end_of_data = end_of_name + data_len
        if end_of_data > len(payload):
            raise CorruptPayloadError("truncated section data")
        name = payload[offset:end_of_name].decode("utf-8")
        sections[name] = payload[end_of_name:end_of_data]
        offset = end_of_data
    return sections


def pack_array(array: np.ndarray) -> bytes:
    """Serialize a numpy array (dtype, shape and raw bytes) into one section."""
    original = np.asarray(array)
    # np.ascontiguousarray promotes 0-d arrays to 1-d; preserve the true shape.
    array = np.ascontiguousarray(original).reshape(original.shape)
    dtype_name = array.dtype.str.encode("ascii")
    header = struct.pack("<H", len(dtype_name)) + dtype_name
    header += struct.pack("<B", array.ndim)
    header += struct.pack(f"<{array.ndim}q", *array.shape) if array.ndim else b""
    return header + array.tobytes()


def unpack_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`pack_array`."""
    if len(payload) < 2:
        raise CorruptPayloadError("array payload too short")
    (dtype_len,) = struct.unpack_from("<H", payload, 0)
    offset = 2
    dtype_name = payload[offset : offset + dtype_len].decode("ascii")
    offset += dtype_len
    (ndim,) = struct.unpack_from("<B", payload, offset)
    offset += 1
    shape: Tuple[int, ...] = ()
    if ndim:
        shape = struct.unpack_from(f"<{ndim}q", payload, offset)
        offset += 8 * ndim
    dtype = np.dtype(dtype_name)
    expected = int(np.prod(shape)) if shape else 1
    raw = payload[offset:]
    if len(raw) != expected * dtype.itemsize:
        raise CorruptPayloadError(
            f"array payload size mismatch: expected {expected * dtype.itemsize} bytes, got {len(raw)}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
