"""SZ3-style error-bounded lossy compressor, as a predictor stage.

SZ3 (Liang et al., IEEE TBD 2023; Zhao et al., ICDE 2021) replaces SZ2's
blockwise Lorenzo/regression hybrid with a multi-level dynamic spline
interpolation predictor: the data are refined level by level, and each new
point is predicted from already-reconstructed neighbours with linear or cubic
interpolation before its residual is quantized.  SZ3 is itself architected as
a modular predictor/quantizer/encoder pipeline — exactly the decomposition
:mod:`repro.compression.stages` provides — so this module holds only the
multi-level interpolation predictor:

* a binary multi-level refinement over the flattened tensor, processing
  strides ``2^k, 2^{k-1}, …, 1``;
* per-point cubic interpolation when four reconstructed neighbours exist,
  falling back to linear interpolation and finally to previous-value
  prediction near the boundaries.

Prediction always uses *reconstructed* values, so the decompressor can follow
the identical schedule and the error bound holds exactly; outputs are
bit-identical to the pre-refactor implementation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.compression.entropy import EntropyBackend
from repro.compression.errors import CorruptPayloadError
from repro.compression.stages import (
    EntropyStage,
    PredictorStage,
    Quantizer,
    StageContext,
    StagedCompressor,
)

#: Classic 4-point cubic interpolation weights used by SZ3's spline predictor.
_CUBIC_WEIGHTS = (-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0)


class SZ3Predictor(PredictorStage):
    """Multi-level spline interpolation prediction (SZ3 analogue)."""

    name = "sz3-interpolation"

    def __init__(self, use_cubic: bool, entropy: EntropyStage) -> None:
        self.use_cubic = bool(use_cubic)
        self.entropy = entropy

    def prepare(self, flat: np.ndarray, ctx: StageContext) -> None:
        super().prepare(flat, ctx)
        ctx.params["use_cubic"] = self.use_cubic

    def encode(self, flat: np.ndarray, ctx: StageContext) -> Dict[str, bytes]:
        bin_width = ctx.bin_width
        reconstruction = np.zeros_like(flat)
        codes: List[np.ndarray] = []

        # Anchor point: the first element is quantized against zero.
        anchor_index = np.rint(flat[0] / bin_width).astype(np.int64)
        reconstruction[0] = anchor_index * bin_width
        codes.append(np.atleast_1d(anchor_index))

        for stride in _interpolation_strides(flat.size):
            targets = np.arange(stride, flat.size, 2 * stride)
            if targets.size == 0:
                continue
            predictions = _predict(reconstruction, targets, stride, flat.size, self.use_cubic)
            level_codes = Quantizer.encode(flat[targets], predictions, ctx)
            reconstruction[targets] = Quantizer.decode(level_codes, predictions, ctx)
            codes.append(level_codes)

        return {"codes": self.entropy.encode(np.concatenate(codes))}

    def decode(self, sections: Mapping[str, bytes], ctx: StageContext) -> np.ndarray:
        size = ctx.size
        bin_width = ctx.bin_width
        use_cubic = bool(ctx.params["use_cubic"])

        all_codes = EntropyStage.decode(sections["codes"])
        reconstruction = np.zeros(size, dtype=np.float64)

        if all_codes.size == 0:
            raise CorruptPayloadError("sz3 payload holds no quantization codes")
        reconstruction[0] = all_codes[0] * bin_width
        cursor = 1

        for stride in _interpolation_strides(size):
            targets = np.arange(stride, size, 2 * stride)
            if targets.size == 0:
                continue
            level_codes = all_codes[cursor : cursor + targets.size]
            if level_codes.size != targets.size:
                raise CorruptPayloadError("sz3 payload truncated: missing level codes")
            cursor += targets.size
            predictions = _predict(reconstruction, targets, stride, size, use_cubic)
            reconstruction[targets] = Quantizer.decode(level_codes, predictions, ctx)

        return reconstruction


class SZ3Compressor(StagedCompressor):
    """Multi-level interpolation predictor compressor (SZ3 analogue)."""

    name = "sz3"

    def __init__(
        self,
        entropy_backend: EntropyBackend = "deflate",
        compression_level: int = 6,
        use_cubic: bool = True,
    ) -> None:
        self.entropy_backend = entropy_backend
        self.compression_level = int(compression_level)
        self.use_cubic = bool(use_cubic)

    def _predictor(self) -> SZ3Predictor:
        return SZ3Predictor(
            self.use_cubic, EntropyStage(self.entropy_backend, self.compression_level)
        )


def _interpolation_strides(size: int) -> List[int]:
    """Strides processed from coarsest to finest for an array of ``size``."""
    if size <= 1:
        return []
    strides: List[int] = []
    stride = 1
    while stride < size:
        strides.append(stride)
        stride *= 2
    return list(reversed(strides))


def _predict(
    reconstruction: np.ndarray,
    targets: np.ndarray,
    stride: int,
    size: int,
    use_cubic: bool,
) -> np.ndarray:
    """Interpolate target points from already-reconstructed neighbours.

    Left neighbours at ``target - stride`` always exist (they belong to a
    coarser level).  Right neighbours at ``target + stride`` exist unless the
    target sits near the end of the array; in that case previous-value
    prediction is used, matching SZ3's boundary fallback.
    """
    left = reconstruction[targets - stride]
    right_index = targets + stride
    has_right = right_index < size
    right = np.where(has_right, reconstruction[np.minimum(right_index, size - 1)], left)
    predictions = np.where(has_right, 0.5 * (left + right), left)

    if use_cubic:
        far_left_index = targets - 3 * stride
        far_right_index = targets + 3 * stride
        has_cubic = (far_left_index >= 0) & (far_right_index < size) & has_right
        if np.any(has_cubic):
            w0, w1, w2, w3 = _CUBIC_WEIGHTS
            cubic = (
                w0 * reconstruction[np.maximum(far_left_index, 0)]
                + w1 * left
                + w2 * right
                + w3 * reconstruction[np.minimum(far_right_index, size - 1)]
            )
            predictions = np.where(has_cubic, cubic, predictions)
    return predictions
