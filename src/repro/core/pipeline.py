"""The FedSZ compression / decompression pipeline (Figure 1).

``compress_state_dict`` implements the client-side pipeline:

1. partition the ``state_dict`` into lossy and lossless components
   (Algorithm 1);
2. run the error-bounded lossy compressor over each large weight tensor and
   the lossless codec over the serialized remainder;
3. assemble a single self-describing bitstream for transmission.

``decompress_state_dict`` implements the server-side inverse: split the
bitstream, decompress both partitions, reshape every entry back to its tensor
and return a state dict that can be loaded straight into the global model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.compression.registry import get_lossless_compressor, get_lossy_compressor
from repro.core.config import FedSZConfig
from repro.core.partition import partition_state_dict
from repro.core.serializer import (
    build_fedsz_payload,
    deserialize_named_arrays,
    parse_fedsz_payload,
    serialize_named_arrays,
)


@dataclass
class FedSZReport:
    """Size and runtime accounting for one compression invocation."""

    original_nbytes: int = 0
    compressed_nbytes: int = 0
    lossy_original_nbytes: int = 0
    lossy_compressed_nbytes: int = 0
    lossless_original_nbytes: int = 0
    lossless_compressed_nbytes: int = 0
    lossy_tensor_count: int = 0
    lossless_tensor_count: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: Optional[float] = None
    per_tensor_ratio: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Overall state-dict compression ratio."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @property
    def lossy_ratio(self) -> float:
        """Compression ratio of the lossy partition alone."""
        if self.lossy_compressed_nbytes == 0:
            return float("inf")
        return self.lossy_original_nbytes / self.lossy_compressed_nbytes

    @property
    def lossless_ratio(self) -> float:
        """Compression ratio of the lossless partition alone."""
        if self.lossless_compressed_nbytes == 0:
            return float("inf")
        return self.lossless_original_nbytes / self.lossless_compressed_nbytes

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabulation in experiment reports."""
        return {
            "ratio": self.ratio,
            "lossy_ratio": self.lossy_ratio,
            "lossless_ratio": self.lossless_ratio,
            "original_mb": self.original_nbytes / 1e6,
            "compressed_mb": self.compressed_nbytes / 1e6,
            "compress_seconds": self.compress_seconds,
            "lossy_tensors": self.lossy_tensor_count,
            "lossless_tensors": self.lossless_tensor_count,
        }


def compress_state_dict(
    state_dict: Mapping[str, np.ndarray],
    config: Optional[FedSZConfig] = None,
) -> Tuple[bytes, FedSZReport]:
    """Compress a model state dict into a FedSZ bitstream.

    Returns the payload plus a :class:`FedSZReport` describing what happened.
    """
    config = config or FedSZConfig()
    start = time.perf_counter()

    partition = partition_state_dict(state_dict, config.partition_threshold)
    lossy_codec = get_lossy_compressor(config.lossy_compressor)
    for option, value in config.lossy_options.items():
        # Only override attributes the codec actually defines — silently
        # setattr-ing a typo ("blocksize") onto the instance would leave the
        # intended option at its default with no error anywhere.
        if not hasattr(lossy_codec, option):
            valid = sorted(
                name
                for name in vars(lossy_codec)
                if not name.startswith("_") and not callable(getattr(lossy_codec, name))
            )
            raise ValueError(
                f"unknown option {option!r} for lossy compressor "
                f"{config.lossy_compressor!r}; available options: {valid}"
            )
        setattr(lossy_codec, option, value)
    lossless_codec = get_lossless_compressor(config.lossless_compressor)

    report = FedSZReport(
        original_nbytes=partition.total_nbytes,
        lossy_original_nbytes=partition.lossy_nbytes,
        lossless_original_nbytes=partition.lossless_nbytes,
        lossy_tensor_count=len(partition.lossy),
        lossless_tensor_count=len(partition.lossless),
    )

    lossy_payloads: Dict[str, bytes] = {}
    lossy_shapes: Dict[str, list] = {}
    lossy_dtypes: Dict[str, str] = {}
    for name, tensor in partition.lossy.items():
        flat = np.ascontiguousarray(tensor).ravel()
        payload = lossy_codec.compress(flat, config.error_bound, config.error_bound_mode)
        lossy_payloads[name] = payload
        lossy_shapes[name] = list(tensor.shape)
        lossy_dtypes[name] = np.dtype(tensor.dtype).str
        report.per_tensor_ratio[name] = tensor.nbytes / max(len(payload), 1)

    lossless_blob = lossless_codec.compress(serialize_named_arrays(partition.lossless))

    header = {
        "lossy_compressor": config.lossy_compressor,
        "lossless_compressor": config.lossless_compressor,
        "error_bound": config.error_bound,
        "error_bound_mode": config.error_bound_mode.value,
        "partition_threshold": config.partition_threshold,
        "lossy_shapes": lossy_shapes,
        "lossy_dtypes": lossy_dtypes,
    }
    payload = build_fedsz_payload(header, lossy_payloads, lossless_blob)

    report.lossy_compressed_nbytes = sum(len(blob) for blob in lossy_payloads.values())
    report.lossless_compressed_nbytes = len(lossless_blob)
    report.compressed_nbytes = len(payload)
    report.compress_seconds = time.perf_counter() - start
    return payload, report


def decompress_state_dict(payload: bytes) -> Dict[str, np.ndarray]:
    """Reconstruct a state dict from a FedSZ bitstream."""
    header, lossy_payloads, lossless_blob = parse_fedsz_payload(payload)
    lossy_codec = get_lossy_compressor(header["lossy_compressor"])
    lossless_codec = get_lossless_compressor(header["lossless_compressor"])

    state: Dict[str, np.ndarray] = {}
    shapes = header.get("lossy_shapes", {})
    dtypes = header.get("lossy_dtypes", {})
    for name, blob in lossy_payloads.items():
        flat = lossy_codec.decompress(blob)
        shape = tuple(shapes.get(name, flat.shape))
        dtype = np.dtype(dtypes.get(name, flat.dtype.str))
        state[name] = flat.astype(dtype).reshape(shape)

    state.update(deserialize_named_arrays(lossless_codec.decompress(lossless_blob)))
    return state


def roundtrip_state_dict(
    state_dict: Mapping[str, np.ndarray],
    config: Optional[FedSZConfig] = None,
) -> Tuple[Dict[str, np.ndarray], FedSZReport]:
    """Compress then decompress, reporting sizes and both runtimes."""
    payload, report = compress_state_dict(state_dict, config)
    start = time.perf_counter()
    restored = decompress_state_dict(payload)
    report.decompress_seconds = time.perf_counter() - start
    return restored, report
