"""Figure 6 — client runtime-per-epoch breakdown including FedSZ compression.

The paper decomposes each client's epoch wall-clock into local training,
validation and FedSZ compression, and reports that compression adds < 12.5 %
(4.7 % on average) of the epoch time.  The harness reruns the federated
simulation with FedSZ enabled and reports the measured decomposition per
model / dataset combination.

The compression component is *measured*, not aggregate: every client's
:class:`~repro.core.pipeline.FedSZReport` records per-tensor codec wall times
(``per_tensor_compress_seconds``), and the breakdown sums those maps instead
of attributing the whole pipeline wall (partitioning, the lossless pass,
payload framing) to error-bounded compression.  The aggregate pipeline wall
is still surfaced in the ``pipeline_seconds`` column for comparison.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core import FedSZCompressor
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import build_federated_setup
from repro.fl import FLSimulation

DEFAULT_COMBINATIONS: Tuple[Tuple[str, str], ...] = (
    ("resnet50", "cifar10"),
    ("mobilenetv2", "cifar10"),
    ("alexnet", "cifar10"),
)


def run_figure6(
    combinations: Sequence[Tuple[str, str]] = DEFAULT_COMBINATIONS,
    rounds: int = 2,
    samples: int = 400,
    error_bound: float = 1e-2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 6's per-epoch breakdown (training / validation / compression)."""
    result = ExperimentResult(
        name="Figure 6 — client runtime per epoch breakdown with FedSZ",
        description="Mean per-round training, validation and compression time per model/dataset.",
    )
    for model, dataset in combinations:
        setup = build_federated_setup(
            model_name=model, dataset_name=dataset, rounds=rounds, samples=samples, seed=seed
        )
        simulation = FLSimulation(
            setup.model_fn,
            setup.train_dataset,
            setup.validation_dataset,
            setup.config,
            codec=FedSZCompressor(error_bound=error_bound),
        )
        history = simulation.run()
        breakdown = history.mean_epoch_breakdown(measured_codec=True)
        aggregate = history.mean_epoch_breakdown()
        result.add_row(
            model=model,
            dataset=dataset,
            client_training_seconds=breakdown.client_training_seconds,
            validation_seconds=breakdown.validation_seconds,
            compression_seconds=breakdown.compression_seconds,
            pipeline_seconds=aggregate.compression_seconds,
            total_seconds=breakdown.total_seconds,
            compression_overhead_percent=100.0 * breakdown.compression_overhead_fraction,
        )

    overheads = [row["compression_overhead_percent"] for row in result.rows]
    if overheads:
        result.add_note(
            f"compression overhead: mean {sum(overheads) / len(overheads):.1f}% of epoch time "
            "(paper: 4.7% average, <12.5% in all but one case)"
        )
        result.add_note(
            "compression_seconds is measured per-tensor codec time (FedSZReport."
            "per_tensor_compress_seconds); pipeline_seconds is the aggregate "
            "compress wall including the lossless pass and payload framing"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure6(rounds=1, samples=200).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
