"""Cross-module integration tests exercising the full FedSZ workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.errors import CorruptPayloadError
from repro.core import (
    AdaptiveErrorBoundController,
    AdaptiveFedSZCompressor,
    FedSZCompressor,
    select_lossy_compressor,
)
from repro.data import load_dataset
from repro.experiments import build_federated_setup
from repro.fl import FLConfig, FLSimulation
from repro.network import crossover_bandwidth_mbps
from repro.nn.models import create_model
from repro.privacy import DPFedSZCompressor, analyze_state_dict_errors


def test_full_workflow_compress_train_decide():
    """The README workflow: build a model, pick a compressor, run FL with it,
    and make the Eqn.-1 deployment decision — all against the public API."""
    # 1. Problem-1 selection on a weight sample says "use an SZ-family codec".
    weights = create_model("alexnet", "tiny", seed=0).state_dict()["features.0.weight"].ravel()
    selection = select_lossy_compressor(weights, error_bound=1e-2, bandwidth_mbps=10.0)
    assert selection.best.compressor in {"sz2", "sz3", "szx"}

    # 2. Federated training with the selected codec tracks the uncompressed
    #    baseline (Figure 4's claim).  Comparing against a same-seed raw run
    #    is robust to the round-to-round noise of a tiny 3-round simulation;
    #    the previous self-referential check (final vs first round) sat on a
    #    knife's edge and flipped with the compressor-selection timing.
    setup = build_federated_setup("resnet50", "cifar10", rounds=3, samples=360, seed=13)
    baseline = FLSimulation(
        setup.model_fn, setup.train_dataset, setup.validation_dataset, setup.config, codec=None
    ).run()
    setup = build_federated_setup("resnet50", "cifar10", rounds=3, samples=360, seed=13)
    codec = FedSZCompressor(error_bound=1e-2, lossy_compressor=selection.best.compressor)
    history = FLSimulation(
        setup.model_fn, setup.train_dataset, setup.validation_dataset, setup.config, codec=codec
    ).run()
    assert history.final_accuracy > baseline.final_accuracy - 0.15
    assert history.records[-1].mean_compression_ratio > 1.5

    # 3. The deployment decision derived from the measured payloads is
    #    consistent: worthwhile on an edge link, not at datacenter speeds.
    report = codec.report()
    crossover = crossover_bandwidth_mbps(
        report.original_nbytes,
        report.compressed_nbytes,
        report.compress_seconds,
        report.decompress_seconds or report.compress_seconds,
    )
    assert codec.is_worthwhile(min(10.0, crossover / 2)).worthwhile
    assert not codec.is_worthwhile(crossover * 10).worthwhile


def test_noniid_fl_with_fedsz_and_client_sampling():
    dataset = load_dataset("cifar10", num_samples=300, image_size=8, seed=3)
    train, validation = dataset.split(0.8, seed=4)
    config = FLConfig(
        num_clients=5,
        rounds=2,
        batch_size=16,
        partition_strategy="dirichlet",
        dirichlet_alpha=0.3,
        client_fraction=0.6,
        compress_downlink=True,
        seed=6,
    )
    codec = FedSZCompressor(error_bound=1e-2)
    history = FLSimulation(
        lambda: create_model("mobilenetv2", "tiny", num_classes=10, seed=8),
        train,
        validation,
        config,
        codec=codec,
    ).run()
    assert len(history) == 2
    assert all(record.participating_clients == 3 for record in history.records)
    assert all(record.downlink_bytes > 0 for record in history.records)
    assert history.total_uplink_bytes > 0


def test_adaptive_and_dp_codecs_in_federated_loop():
    setup = build_federated_setup("resnet50", "cifar10", rounds=2, samples=300, seed=17)
    adaptive = AdaptiveFedSZCompressor(AdaptiveErrorBoundController(initial_bound=1e-2))
    simulation = FLSimulation(
        setup.model_fn, setup.train_dataset, setup.validation_dataset, setup.config, codec=adaptive
    )
    for _ in range(2):
        record = simulation.run_round()
        adaptive.observe_accuracy(record.global_accuracy)
    assert len(adaptive.controller.adjustments) == 2

    dp_setup = build_federated_setup("resnet50", "cifar10", rounds=2, samples=300, seed=18)
    dp_codec = DPFedSZCompressor(epsilon_per_round=10.0, clip_norm=0.5, seed=2)
    dp_history = FLSimulation(
        dp_setup.model_fn,
        dp_setup.train_dataset,
        dp_setup.validation_dataset,
        dp_setup.config,
        codec=dp_codec,
    ).run()
    assert dp_codec.spent_epsilon == pytest.approx(
        10.0 * dp_history.records[-1].participating_clients * len(dp_history)
    )


def test_error_analysis_matches_pipeline_behaviour():
    """The privacy analysis and the pipeline agree on the error magnitude."""
    state = create_model("alexnet", "tiny", num_classes=10, seed=21).state_dict()
    distribution = analyze_state_dict_errors(state, error_bound=1e-2)
    largest_range = max(
        float(v.max() - v.min()) for k, v in state.items() if "weight" in k and v.size > 1024
    )
    assert 0 < distribution.max_abs_error <= 1e-2 * largest_range * 1.01


def test_corrupted_uplink_payload_is_detected():
    """A truncated FedSZ payload must fail loudly, not corrupt the model."""
    state = create_model("mobilenetv2", "tiny", num_classes=10, seed=4).state_dict()
    codec = FedSZCompressor(error_bound=1e-2)
    payload = codec.compress(state)
    with pytest.raises(CorruptPayloadError):
        codec.decompress(payload[: len(payload) // 2])


def test_cross_instance_decompression():
    """Payloads are self-describing: a fresh codec instance (different default
    configuration) can decode another instance's payload."""
    state = create_model("alexnet", "tiny", num_classes=10, seed=5).state_dict()
    sender = FedSZCompressor(error_bound=1e-3, lossy_compressor="sz3", lossless_compressor="xz")
    receiver = FedSZCompressor()  # defaults: sz2 + blosc-lz
    restored = receiver.decompress(sender.compress(state))
    assert set(restored) == set(state)
    for name, tensor in state.items():
        if "weight" in name and tensor.size > 1024:
            value_range = float(tensor.max() - tensor.min())
            assert np.max(np.abs(restored[name] - tensor)) <= 1e-3 * value_range * 1.01 + 1e-7
