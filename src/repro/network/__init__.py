"""Network, device and timing models.

Implements the communication side of the evaluation: bandwidth-limited
channels (the paper's MPI + sleep emulation), the Raspberry Pi 5 device
profile used for codec runtimes, the Eqn.-1 "is compression worthwhile"
decision, per-epoch timing breakdowns and the weak/strong scaling simulator.
"""

from repro.network.bandwidth import (
    DATACENTER_BANDWIDTH_MBPS,
    EDGE_BANDWIDTH_MBPS,
    BandwidthModel,
    SimulatedChannel,
    TransferRecord,
)
from repro.network.decision import (
    CompressionDecision,
    crossover_bandwidth_mbps,
    should_compress,
)
from repro.network.devices import (
    RASPBERRY_PI_5,
    RASPBERRY_PI_5_LOSSLESS_THROUGHPUT_MBPS,
    RASPBERRY_PI_5_THROUGHPUT_MBPS,
    DeviceProfile,
    get_device_profile,
)
from repro.network.scaling import (
    ScalingConfig,
    ScalingPoint,
    speedup_curve,
    strong_scaling,
    weak_scaling,
    weak_scaling_efficiency,
)
from repro.network.timing import (
    CommunicationEstimate,
    EpochTimeBreakdown,
    TimingAccumulator,
    estimate_communication,
)

__all__ = [
    "DATACENTER_BANDWIDTH_MBPS",
    "EDGE_BANDWIDTH_MBPS",
    "BandwidthModel",
    "SimulatedChannel",
    "TransferRecord",
    "CompressionDecision",
    "crossover_bandwidth_mbps",
    "should_compress",
    "RASPBERRY_PI_5",
    "RASPBERRY_PI_5_LOSSLESS_THROUGHPUT_MBPS",
    "RASPBERRY_PI_5_THROUGHPUT_MBPS",
    "DeviceProfile",
    "get_device_profile",
    "ScalingConfig",
    "ScalingPoint",
    "speedup_curve",
    "strong_scaling",
    "weak_scaling",
    "weak_scaling_efficiency",
    "CommunicationEstimate",
    "EpochTimeBreakdown",
    "TimingAccumulator",
    "estimate_communication",
]
