"""FedSZ core: the paper's primary contribution.

* :class:`FedSZCompressor` — the public codec: partition a model state dict
  (Algorithm 1), lossy-compress the large weight tensors, lossless-compress
  the metadata, serialize to one bitstream, and invert all of it server-side.
* :func:`compress_state_dict` / :func:`decompress_state_dict` — the
  functional pipeline underneath.
* Problem 1 / Problem 2 selection utilities (Section IV).
"""

from repro.core.adaptive import (
    AdaptiveErrorBoundController,
    AdaptiveFedSZCompressor,
    BoundAdjustment,
)
from repro.core.config import (
    DEFAULT_PARTITION_THRESHOLD,
    RECOMMENDED_ERROR_BOUND,
    FedSZConfig,
)
from repro.core.fedsz import FedSZCompressor, IdentityCodec
from repro.core.partition import StateDictPartition, is_lossy_eligible, partition_state_dict
from repro.core.pipeline import (
    FedSZReport,
    compress_state_dict,
    decompress_state_dict,
    roundtrip_state_dict,
)
from repro.core.selection import (
    CompressorCandidate,
    CompressorSelection,
    ErrorBoundCandidate,
    ErrorBoundSelection,
    candidates_from_measurements,
    recommended_error_bound,
    select_error_bound,
    select_lossy_compressor,
)
from repro.core.serializer import deserialize_named_arrays, serialize_named_arrays

__all__ = [
    "AdaptiveErrorBoundController",
    "AdaptiveFedSZCompressor",
    "BoundAdjustment",
    "DEFAULT_PARTITION_THRESHOLD",
    "RECOMMENDED_ERROR_BOUND",
    "FedSZConfig",
    "FedSZCompressor",
    "IdentityCodec",
    "StateDictPartition",
    "is_lossy_eligible",
    "partition_state_dict",
    "FedSZReport",
    "compress_state_dict",
    "decompress_state_dict",
    "roundtrip_state_dict",
    "CompressorCandidate",
    "CompressorSelection",
    "ErrorBoundCandidate",
    "ErrorBoundSelection",
    "candidates_from_measurements",
    "recommended_error_bound",
    "select_error_bound",
    "select_lossy_compressor",
    "serialize_named_arrays",
    "deserialize_named_arrays",
]
