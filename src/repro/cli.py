"""Command-line interface for regenerating the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 [--output results/table1.txt]
    python -m repro.cli run figure8 --quick
    python -m repro.cli run all --quick --output results/

``--quick`` shrinks every harness's workload so a full sweep completes in a
few minutes; without it the default benchmark-scale parameters are used.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Optional

from repro import experiments
from repro.experiments.reporting import ExperimentResult

#: Experiment id -> (harness, quick-mode keyword arguments).
_EXPERIMENTS: Dict[str, tuple] = {
    "table1": (experiments.run_table1, {"sample_elements": 60_000}),
    "table2": (experiments.run_table2, {}),
    "table3": (experiments.run_table3, {}),
    "table4": (experiments.run_table4, {}),
    "table5": (experiments.run_table5, {"max_elements_per_tensor": 40_000}),
    "figure2": (experiments.run_figure2, {}),
    "figure3": (experiments.run_figure3, {"num_values": 100_000}),
    "figure4": (experiments.run_figure4, {"rounds": 4, "samples": 360, "compressors": (None, "sz2")}),
    "figure5": (experiments.run_figure5, {"train_epochs": 4, "samples": 300}),
    "figure6": (experiments.run_figure6, {"rounds": 1, "samples": 240}),
    "figure7": (experiments.run_figure7, {"max_elements_per_tensor": 40_000}),
    "figure8": (experiments.run_figure8, {"max_elements_per_tensor": 40_000}),
    "figure9": (experiments.run_figure9, {}),
    "figure10": (experiments.run_figure10, {"num_values": 100_000}),
}


def available_experiments() -> list:
    """Experiment identifiers accepted by ``run``."""
    return sorted(_EXPERIMENTS)


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment harness by identifier."""
    key = name.lower()
    if key not in _EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {available_experiments()}")
    harness, quick_kwargs = _EXPERIMENTS[key]
    kwargs = quick_kwargs if quick else {}
    return harness(**kwargs)


def _write_or_print(result: ExperimentResult, output: Optional[Path], name: str) -> None:
    text = result.to_text()
    if output is None:
        print(text)
        print()
        return
    if output.suffix:  # explicit file
        destination = output
    else:  # directory
        output.mkdir(parents=True, exist_ok=True)
        destination = output / f"{name}.txt"
    destination.write_text(text + "\n", encoding="utf-8")
    print(f"wrote {destination}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. table1, figure8) or 'all'")
    run_parser.add_argument("--quick", action="store_true", help="use reduced workloads")
    run_parser.add_argument(
        "--output", type=Path, default=None, help="file (or directory for 'all') to write results to"
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if arguments.experiment.lower() == "all":
        for name in available_experiments():
            result = run_experiment(name, quick=arguments.quick)
            _write_or_print(result, arguments.output, name)
        return 0

    try:
        result = run_experiment(arguments.experiment, quick=arguments.quick)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    _write_or_print(result, arguments.output, arguments.experiment.lower())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
