"""Benchmark regenerating Table V (FedSZ compression ratios)."""

from __future__ import annotations

from repro.experiments import run_table5


def test_table5_compression_ratios(run_once):
    result = run_once(
        run_table5,
        error_bounds=(1e-1, 1e-2, 1e-3, 1e-4),
        max_elements_per_tensor=150_000,
    )
    print()
    print(result.to_text())

    # Paper shape: ratios grow monotonically with the bound, and at the
    # recommended 1e-2 the whole-update ratio sits in (roughly) the 5-13x
    # band with AlexNet compressing best and MobileNetV2 worst.
    for model in ("alexnet", "mobilenetv2", "resnet50"):
        for dataset in ("cifar10", "caltech101", "fashion-mnist"):
            rows = sorted(
                result.filter(model=model, dataset=dataset), key=lambda row: row["error_bound"]
            )
            ratios = [row["ratio"] for row in rows]
            assert ratios == sorted(ratios)

    recommended = {
        (row["model"], row["dataset"]): row["ratio"]
        for row in result.rows
        if row["error_bound"] == 1e-2
    }
    assert all(4.0 < ratio < 20.0 for ratio in recommended.values())
    assert recommended[("alexnet", "cifar10")] > recommended[("mobilenetv2", "cifar10")]
    # Caltech101 fine-tuned weights are the least compressible per model.
    for model in ("alexnet", "mobilenetv2", "resnet50"):
        assert recommended[(model, "caltech101")] <= recommended[(model, "fashion-mnist")]
