#!/usr/bin/env python
"""Watch a federated run live, then mine it for near-violations.

Attaches a :class:`~repro.obs.RunMonitor` to a small FedSZ fleet, serves the
live dashboard from a background stdlib HTTP server while the simulation
runs, and finishes by printing the deterministic error-analysis report —
the same markdown CI attaches to every benchmark job:

1. **Live view** — open the printed URL while the run executes: round
   progress, per-client drop/straggler counts, the codec's compression-ratio
   and error-bound trajectories, and how hard each round pushed against the
   error bound (``/api/status`` serves the raw JSON snapshot).
2. **Post-run analysis** — :func:`repro.obs.build_error_analysis` ranks the
   rounds and tensors that came closest to violating the error bound, the
   worst clients, and the fault timeline.

The monitor is strictly passive: run this with ``--monitor-off`` and the
history is bit-identical.

Run with::

    python examples/live_monitoring.py [--rounds 4] [--port 8700]
"""

from __future__ import annotations

import argparse

from repro.core import FedSZCompressor
from repro.experiments import build_federated_setup
from repro.fl import FLSimulation, Transport, edge_fleet_specs
from repro.obs import MonitorServer, RunMonitor, build_error_analysis


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--samples", type=int, default=240)
    parser.add_argument("--error-bound", type=float, default=1e-2)
    parser.add_argument("--port", type=int, default=0,
                        help="dashboard port (0 picks a free one)")
    parser.add_argument("--monitor-off", action="store_true",
                        help="run unmonitored (to check bit-identical output)")
    arguments = parser.parse_args()

    setup = build_federated_setup(
        "alexnet", "cifar10",
        num_clients=arguments.clients,
        rounds=arguments.rounds,
        samples=arguments.samples,
        seed=7,
    )
    transport = Transport.heterogeneous(
        edge_fleet_specs(arguments.clients, straggler_ids=(arguments.clients - 1,))
    )
    monitor = None if arguments.monitor_off else RunMonitor()
    simulation = FLSimulation(
        setup.model_fn,
        setup.train_dataset,
        setup.validation_dataset,
        setup.config,
        codec=FedSZCompressor(error_bound=arguments.error_bound),
        transport=transport,
        monitor=monitor,
    )

    if monitor is None:
        history = simulation.run()
    else:
        with MonitorServer(monitor, port=arguments.port) as server:
            print(f"dashboard: {server.url}/   (JSON: {server.url}/api/status)")
            history = simulation.run()
            snapshot = monitor.snapshot()
            cache = snapshot["broadcast_cache"]
            print(
                f"monitored {snapshot['progress']['rounds_completed']} rounds; "
                f"broadcast cache {cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses"
            )
    simulation.close()

    print()
    print(build_error_analysis(history))


if __name__ == "__main__":
    main()
