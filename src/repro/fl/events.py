"""Discrete-event engine for fleet-scale federated rounds.

The legacy round loop walks the fleet: every round recomputes a full
availability mask (O(num_clients)) and the runtime's bookkeeping scales with
resident clients even when ``client_fraction`` means only a handful train.
This module replaces that loop with a deterministic discrete-event engine so
per-round work scales with **participants + availability transitions** — the
events that actually happen — and a 100k–1M-client fleet costs what its
activity costs, not what its census costs.

Pieces:

* :class:`EventQueue` — a deterministic priority queue (``heapq``) ordered by
  ``(time, seq)``.  The monotone sequence number makes ties reproducible:
  two events at the same instant pop in push order, never in hash or
  comparison-of-payload order.
* Typed events (:class:`Event`) — round start, per-client completion (timed
  by the transport's simulated link seconds, which unifies the virtual
  clock), straggler deadline, batched client arrival/departure, checkpoint
  due, and fault injection.
* :class:`EligibleSet` — the incrementally maintained "who is reachable"
  set.  Availability schedules compile into arrival/departure event streams
  (:meth:`repro.fl.scenarios.ParticipationSchedule.transitions`) instead of
  per-round full-fleet masks; applying a stream reproduces
  ``np.nonzero(mask)[0]`` bit for bit.
* :class:`FleetEngine` — drives a :class:`~repro.fl.runtime.FederatedRuntime`
  from the queue.  Schedulers consume the round's completion events
  (``consume_events``): synchronous FedAvg is the degenerate barrier case
  (drain everything), the semi-synchronous deadline is a
  :data:`STRAGGLER_DEADLINE` event cutting the stream, and the asynchronous
  scheduler mixes deliveries in pop order.

Determinism contract
--------------------
The engine is **bit-identical** to the legacy loop (asserted at 256 clients
across sync/semi-sync/async × serial/thread/process and under kill+resume in
``tests/integration/test_event_engine.py``):

* Within a round, event times are **round-relative** turnaround durations —
  the exact floats the legacy loop compares — never re-based onto the global
  clock (float addition is not associative; ``t0 + a <= t0 + b`` can
  disagree with ``a <= b``).  The run-level virtual clock advances by each
  round's ``simulated_round_seconds`` instead.
* Completion events are pushed in task order, so pop order is
  ``(turnaround, task order)`` — and since participants are sorted by client
  id, that equals the legacy ``(turnaround_seconds, client_id)`` arrival
  sort.  The deadline event is pushed after the completions, so a completion
  at exactly the deadline drains first, preserving the legacy ``<=``
  comparison.
* Aggregation happens in **task order** from the results list (events decide
  membership and timing only), so float summation order never changes.
* Sampling consumes the same RNG stream: the eligible ids handed to the
  sampler equal ``np.nonzero(mask)[0]`` exactly, and
  ``Generator.choice``'s draws depend only on the pool size and draw count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

#: A new round opens: sample the eligible fleet, broadcast, dispatch tasks.
ROUND_START = "round-start"
#: One participant's update finished its simulated receive→train→transmit arc.
CLIENT_COMPLETION = "client-completion"
#: The semi-synchronous scheduler's cutoff: later completions are stragglers.
STRAGGLER_DEADLINE = "straggler-deadline"
#: A batch of clients became reachable / dropped off the fleet.
AVAILABILITY = "availability"
#: A checkpoint is due (persisted before any fault can fire).
CHECKPOINT_DUE = "checkpoint-due"
#: The fault injector is consulted (the worst-case crash point).
FAULT_INJECTION = "fault-injection"


@dataclass
class Event:
    """One typed occurrence on the virtual clock.

    ``time`` is round-relative (a turnaround duration) for within-round
    events and absolute virtual seconds for run-level control events — see
    the module docstring's determinism contract for why the two never mix.
    """

    kind: str
    time: float
    round_index: int = -1
    client_id: Optional[int] = None
    #: The :class:`~repro.fl.executor.ClientResult` behind a completion.
    result: Optional[object] = None
    #: Batched ids for :data:`AVAILABILITY` events.
    arrivals: Optional[np.ndarray] = None
    departures: Optional[np.ndarray] = None


class EventQueue:
    """Deterministic priority queue: pops by ``(time, push order)``.

    Events never compare against each other — the heap entries are
    ``(time, seq, event)`` and the monotone ``seq`` breaks every time tie —
    so pop order is a pure function of the push sequence.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        """Enqueue ``event`` at ``event.time``."""
        heapq.heappush(self._heap, (float(event.time), self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        """Dequeue the earliest event (FIFO within one instant)."""
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float:
        """The time of the next event without dequeuing it."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EligibleSet:
    """The reachable-client set, maintained from arrival/departure batches.

    Ids are held as a sorted, unique ``int64`` array — exactly what
    ``np.nonzero(mask)[0]`` yields — so handing :meth:`ids` to the sampler
    reproduces the mask-based draw bit for bit.  ``touched`` counts ids
    moved through :meth:`apply` / :meth:`reset_from_mask`: the O(events)
    guard asserts it scales with transitions, not fleet size.
    """

    def __init__(self) -> None:
        self._ids = np.empty(0, dtype=np.int64)
        self.touched = 0

    def apply(self, arrivals: np.ndarray, departures: np.ndarray) -> None:
        """Fold one round's transitions into the set."""
        arrivals = np.asarray(arrivals, dtype=np.int64)
        departures = np.asarray(departures, dtype=np.int64)
        if arrivals.size:
            self._ids = np.union1d(self._ids, arrivals)
        if departures.size:
            self._ids = np.setdiff1d(self._ids, departures, assume_unique=True)
        self.touched += int(arrivals.size) + int(departures.size)

    def reset_from_mask(self, mask: np.ndarray) -> None:
        """Rebuild the set from a full mask (the resume/discontinuity path).

        A pure function of the mask, so a fresh engine resuming mid-run
        lands on exactly the set the uninterrupted engine maintained
        incrementally.  Costs (and counts) a full-fleet touch.
        """
        self._ids = np.nonzero(np.asarray(mask, dtype=bool))[0].astype(np.int64)
        self.touched += int(np.asarray(mask).size)

    def ids(self) -> np.ndarray:
        """Sorted unique ids of the currently reachable clients."""
        return self._ids

    def __len__(self) -> int:
        return int(self._ids.size)


@dataclass
class EngineStats:
    """Event and touch accounting for one engine's lifetime."""

    rounds_run: int = 0
    participants: int = 0
    completion_events: int = 0
    availability_transitions: int = 0
    control_events: int = 0
    #: Per-round client touches: participants + availability transitions.
    round_touches: List[int] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        """Every event the engine processed (the bench's events/sec basis)."""
        return (
            self.rounds_run
            + self.completion_events
            + self.availability_transitions
            + self.control_events
        )


class FleetEngine:
    """Drive a :class:`~repro.fl.runtime.FederatedRuntime` by events.

    Construct with the runtime (``FLConfig.engine = "events"`` does this
    automatically) and either call :meth:`run_round` per round or let
    :meth:`run` own the whole run including checkpointing and fault
    injection.  See the module docstring for the determinism contract.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.eligible = EligibleSet()
        self.stats = EngineStats()
        #: Round index whose transitions the eligible set currently reflects
        #: (-1 = never advanced, forcing a mask rebuild on first use).
        self._availability_round = -1

    # ------------------------------------------------------------------
    # Virtual clock
    # ------------------------------------------------------------------
    @property
    def virtual_time(self) -> float:
        """Absolute simulated seconds elapsed: the sum of round durations.

        Derived from the history rather than accumulated privately, so a
        resumed engine's clock is automatically exact.
        """
        return float(
            sum(
                record.simulated_round_seconds
                for record in self.runtime.history.records
            )
        )

    # ------------------------------------------------------------------
    # Availability event stream
    # ------------------------------------------------------------------
    def _advance_availability(self, round_index: int) -> Tuple[Optional[np.ndarray], int]:
        """Bring the eligible set to ``round_index``; return ``(ids, touches)``.

        Consecutive rounds fold the schedule's arrival/departure stream into
        the set incrementally; any discontinuity (first round of a resumed
        process, or a custom-scheduler fallback round in between) rebuilds
        from the full mask — a pure function of the round index, so both
        paths land on the same set.
        """
        runtime = self.runtime
        if runtime.schedule is None:
            return None, 0
        num_clients = len(runtime.clients)
        before = self.eligible.touched
        if self._availability_round == round_index - 1:
            arrivals, departures = runtime.schedule.transitions(round_index, num_clients)
            self.eligible.apply(arrivals, departures)
            self.stats.availability_transitions += int(
                np.asarray(arrivals).size + np.asarray(departures).size
            )
        else:
            mask = np.asarray(runtime.schedule.mask(round_index, num_clients), dtype=bool)
            if mask.shape != (num_clients,):
                raise ValueError(
                    f"availability mask has shape {mask.shape}, expected ({num_clients},)"
                )
            self.eligible.reset_from_mask(mask)
            self.stats.availability_transitions += len(self.eligible)
        self._availability_round = round_index
        return self.eligible.ids(), self.eligible.touched - before

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def run_round(self):
        """Execute one round by feeding its events to the scheduler.

        Falls back to the scheduler's legacy ``run_round`` for custom
        schedulers that do not consume events.
        """
        runtime = self.runtime
        consume = getattr(runtime.scheduler, "consume_events", None)
        if consume is None:
            return runtime.scheduler.run_round(runtime)

        round_index = len(runtime.history)
        eligible, touches = self._advance_availability(round_index)
        context = runtime.start_round(eligible=eligible)
        results = runtime.execute_clients(context)

        events = EventQueue()
        for result in results:  # task order: ties pop by ascending client id
            events.push(
                Event(
                    kind=CLIENT_COMPLETION,
                    time=result.turnaround_seconds,
                    round_index=round_index,
                    client_id=result.client_id,
                    result=result,
                )
            )
        deadline = getattr(runtime.scheduler, "deadline_seconds", None)
        if deadline is not None:
            # Pushed after the completions: an update landing exactly at the
            # deadline has a smaller sequence number and drains first,
            # matching the legacy `turnaround <= deadline` comparison.
            events.push(
                Event(kind=STRAGGLER_DEADLINE, time=float(deadline), round_index=round_index)
            )
            self.stats.control_events += 1

        record = consume(runtime, context, results, events)

        self.stats.rounds_run += 1
        self.stats.participants += len(results)
        self.stats.completion_events += len(results)
        self.stats.round_touches.append(len(results) + touches)
        return record

    # ------------------------------------------------------------------
    # Whole runs
    # ------------------------------------------------------------------
    def run(
        self,
        target: int,
        *,
        directory=None,
        checkpoint_every: int = 1,
        keep_checkpoints: int = 3,
        injector=None,
    ) -> None:
        """Drive the run to ``target`` completed rounds through the queue.

        Control events fire at the absolute virtual time the round closed;
        at equal times the push order (checkpoint before fault before next
        round start) decides — the exact sequence the legacy loop hard-codes,
        here falling out of queue determinism.
        """
        runtime = self.runtime
        queue = EventQueue()
        if len(runtime.history) < target:
            queue.push(
                Event(
                    kind=ROUND_START,
                    time=self.virtual_time,
                    round_index=len(runtime.history),
                )
            )
        while queue:
            event = queue.pop()
            if event.kind == ROUND_START:
                self.run_round()
                completed = len(runtime.history)
                now = self.virtual_time
                if directory is not None and (
                    completed % checkpoint_every == 0 or completed >= target
                ):
                    queue.push(
                        Event(kind=CHECKPOINT_DUE, time=now, round_index=completed - 1)
                    )
                if injector is not None:
                    queue.push(
                        Event(kind=FAULT_INJECTION, time=now, round_index=completed - 1)
                    )
                if completed < target:
                    queue.push(Event(kind=ROUND_START, time=now, round_index=completed))
            elif event.kind == CHECKPOINT_DUE:
                self.stats.control_events += 1
                runtime._write_due_checkpoint(directory, keep_checkpoints)
            elif event.kind == FAULT_INJECTION:
                self.stats.control_events += 1
                runtime._consult_injector(injector, event.round_index, directory)


__all__ = [
    "ROUND_START",
    "CLIENT_COMPLETION",
    "STRAGGLER_DEADLINE",
    "AVAILABILITY",
    "CHECKPOINT_DUE",
    "FAULT_INJECTION",
    "Event",
    "EventQueue",
    "EligibleSet",
    "EngineStats",
    "FleetEngine",
]
