"""Per-rule positive/negative fixture tests.

Every shipped rule gets at least one snippet it must fire on and one
structurally-adjacent snippet it must stay silent on, so a rule regression
(either direction) is caught by name.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import get_rule, lint_source

RUNTIME_PATH = "src/repro/fake/module.py"


def findings(rule_id: str, source: str, path: str = RUNTIME_PATH):
    return lint_source(path, textwrap.dedent(source), [get_rule(rule_id)])


# ----------------------------------------------------------------------
# DET001 — global-state RNG
# ----------------------------------------------------------------------
class TestDet001:
    def test_fires_on_numpy_module_rng(self):
        hits = findings("DET001", """
            import numpy as np
            def sample():
                return np.random.normal(size=4)
        """)
        assert len(hits) == 1
        assert hits[0].rule == "DET001"
        assert "numpy.random.normal" in hits[0].message

    def test_fires_on_numpy_seed_through_from_import(self):
        hits = findings("DET001", """
            from numpy import random
            random.seed(7)
        """)
        assert [f.rule for f in hits] == ["DET001"]

    def test_fires_on_stdlib_random_call_and_import(self):
        hits = findings("DET001", """
            import random
            from random import shuffle
            def pick(items):
                return random.choice(items)
        """)
        assert len(hits) == 2  # the from-import and the call

    def test_silent_on_explicit_generator(self):
        assert not findings("DET001", """
            import numpy as np
            def sample(seed):
                rng = np.random.default_rng(seed)
                gen = np.random.Generator(np.random.PCG64(seed))
                return rng.normal(size=4) + gen.random()
        """)

    def test_silent_on_explicit_stdlib_instance(self):
        assert not findings("DET001", """
            from random import Random
            def pick(items, seed):
                return Random(seed).choice(items)
        """)

    def test_silent_on_unrelated_attribute_chains(self):
        assert not findings("DET001", """
            class Holder:
                def draw(self):
                    return self.random.choice([1, 2])
        """)


# ----------------------------------------------------------------------
# DET002 — wall-clock / timing taint
# ----------------------------------------------------------------------
class TestDet002:
    def test_fires_on_time_time(self):
        hits = findings("DET002", """
            import time
            def stamp():
                return time.time()
        """)
        assert len(hits) == 1
        assert "time.time" in hits[0].message

    def test_fires_on_datetime_now(self):
        hits = findings("DET002", """
            from datetime import datetime
            def stamp():
                return datetime.now()
        """)
        assert len(hits) == 1

    def test_exempts_utils_timing(self):
        assert not findings("DET002", """
            import time
            def now():
                return time.time()
        """, path="src/repro/utils/timing.py")

    def test_fires_on_tainted_deterministic_kwarg(self):
        hits = findings("DET002", """
            import time
            def finish(history):
                start = time.perf_counter()
                elapsed = time.perf_counter() - start
                history.add_round(uplink_seconds=elapsed)
        """)
        assert len(hits) == 1
        assert "uplink_seconds" in hits[0].message

    def test_fires_on_tainted_deterministic_attribute(self):
        hits = findings("DET002", """
            import time
            def finish(record):
                start = time.perf_counter()
                record.transfer_seconds = time.perf_counter() - start
        """)
        assert len(hits) == 1
        assert "transfer_seconds" in hits[0].message

    def test_silent_on_measurement_fields(self):
        assert not findings("DET002", """
            import time
            def finish(record):
                start = time.perf_counter()
                record.train_seconds = time.perf_counter() - start
                record.log(compress_seconds=time.perf_counter() - start)
        """)

    def test_silent_on_modelled_values(self):
        assert not findings("DET002", """
            def finish(history, nbytes, bandwidth):
                history.add_round(uplink_seconds=nbytes / bandwidth)
        """)


# ----------------------------------------------------------------------
# DET003 — codec clone / checkpoint pair
# ----------------------------------------------------------------------
class TestDet003:
    @pytest.mark.parametrize("half,other", [
        ("checkpoint_state", "restore_checkpoint_state"),
        ("restore_checkpoint_state", "checkpoint_state"),
    ])
    def test_fires_on_lone_checkpoint_half(self, half, other):
        hits = findings("DET003", f"""
            class Controller:
                def {half}(self, *args):
                    return {{}}
        """)
        assert len(hits) == 1
        assert other in hits[0].message

    def test_silent_on_full_checkpoint_pair(self):
        assert not findings("DET003", """
            class Controller:
                def checkpoint_state(self):
                    return {}
                def restore_checkpoint_state(self, state):
                    pass
        """)

    def test_fires_on_mutable_codec_without_clone(self):
        hits = findings("DET003", """
            from repro.compression.base import LossyCompressor
            class Adaptive(LossyCompressor):
                def __init__(self):
                    self.history = []
        """)
        assert len(hits) == 1
        assert "clone" in hits[0].message

    def test_silent_when_clone_is_defined(self):
        assert not findings("DET003", """
            from repro.compression.base import LossyCompressor
            class Adaptive(LossyCompressor):
                def __init__(self):
                    self.history = []
                def clone(self):
                    return Adaptive()
        """)

    def test_silent_on_plain_config_attributes(self):
        assert not findings("DET003", """
            from repro.compression.base import LossyCompressor
            class Plain(LossyCompressor):
                def __init__(self, bound):
                    self.bound = float(bound)
        """)

    def test_silent_on_mutable_state_outside_codecs(self):
        assert not findings("DET003", """
            class Ordinary:
                def __init__(self):
                    self.cache = {}
        """)


# ----------------------------------------------------------------------
# DET004 — silent failure / assert-as-validation
# ----------------------------------------------------------------------
class TestDet004:
    def test_fires_on_bare_except(self):
        hits = findings("DET004", """
            def run(task):
                try:
                    task()
                except:
                    return None
        """)
        assert len(hits) == 1
        assert "bare" in hits[0].message

    def test_fires_on_silent_broad_except(self):
        hits = findings("DET004", """
            def run(task):
                try:
                    task()
                except Exception:
                    pass
        """)
        assert len(hits) == 1
        assert "swallowed" in hits[0].message

    def test_fires_on_runtime_assert(self):
        hits = findings("DET004", """
            def validate(payload):
                assert payload, "payload must not be empty"
        """)
        assert len(hits) == 1
        assert "python -O" in hits[0].message

    def test_silent_on_narrow_except_pass(self):
        assert not findings("DET004", """
            def run(task):
                try:
                    task()
                except (OSError, ValueError):
                    pass
        """)

    def test_silent_on_handled_broad_except(self):
        assert not findings("DET004", """
            def run(task, log):
                try:
                    task()
                except Exception as error:
                    log(error)
        """)

    def test_asserts_allowed_in_test_files(self):
        assert not findings("DET004", """
            def test_payload():
                assert 1 + 1 == 2
        """, path="tests/fake/test_module.py")


# ----------------------------------------------------------------------
# FORK001 — worker-crossing spec hygiene
# ----------------------------------------------------------------------
class TestFork001:
    def test_fires_on_callable_field(self):
        hits = findings("FORK001", """
            from dataclasses import dataclass
            from typing import Callable
            @dataclass
            class _ClientTaskSpec:
                client_id: int
                model_factory: Callable[[], object]
        """)
        assert len(hits) == 1
        assert "Callable" in hits[0].message

    def test_fires_on_lock_field_and_string_annotation(self):
        hits = findings("FORK001", """
            import threading
            class _WorkerTaskResult:
                guard: threading.Lock
                thunk: "Callable[[], int]"
        """)
        assert len(hits) == 2

    def test_fires_on_lambda_default(self):
        hits = findings("FORK001", """
            from dataclasses import dataclass
            @dataclass
            class FooTaskSpec:
                build = lambda: 3
        """)
        assert len(hits) == 1
        assert "lambda" in hits[0].message

    def test_fires_on_live_object_bound_in_method(self):
        hits = findings("FORK001", """
            import threading
            class BarTaskSpec:
                def __init__(self):
                    self.lock = threading.Lock()
        """)
        assert len(hits) == 1
        assert "Lock" in hits[0].message

    def test_marker_comment_opts_a_class_in(self):
        hits = findings("FORK001", """
            from typing import Callable
            class CustomEnvelope:  # repro-lint: worker-crossing
                handler: Callable
        """)
        assert len(hits) == 1

    def test_silent_on_plain_data_spec(self):
        assert not findings("FORK001", """
            from dataclasses import dataclass, field
            from typing import Dict, List, Optional
            @dataclass
            class _ClientTaskSpec:
                index: int
                client_id: int
                learning_rate: float
                dropped: bool
                client_state: dict
                extras: Dict[str, float] = field(default_factory=dict)
        """)

    def test_default_factory_lambda_is_allowed(self):
        assert not findings("FORK001", """
            from dataclasses import dataclass, field
            @dataclass
            class _WorkerTaskResult:
                payloads: list = field(default_factory=lambda: [])
        """)

    def test_non_crossing_classes_may_hold_callables(self):
        assert not findings("FORK001", """
            from typing import Callable
            class SchedulerConfig:
                tick: Callable[[], None]
        """)


# ----------------------------------------------------------------------
# The real tree stays clean (the CI gate, pinned as a tier-1 test)
# ----------------------------------------------------------------------
def test_repo_src_has_no_findings():
    from pathlib import Path

    from repro.analysis import get_rules, lint_paths

    src = Path(__file__).resolve().parents[2] / "src"
    result = lint_paths([src], get_rules())
    rendered = "\n".join(f.render() for f in result.findings)
    assert not result.findings, f"repro lint src must be clean:\n{rendered}"
