"""Common interfaces and payload framing for all compressors.

Two abstract interfaces are defined:

* :class:`LossyCompressor` — error-bounded lossy compressors (SZ2, SZ3, SZx,
  ZFP analogues).  ``compress`` takes a float array and an error bound and
  returns a self-describing byte payload; ``decompress`` reconstructs an array
  with the same shape/dtype whose element-wise deviation from the original is
  bounded by the requested error bound.
* :class:`LosslessCompressor` — byte-oriented lossless codecs (blosc-lz, zstd,
  gzip, zlib, xz stand-ins/wrappers).

A small section-based framing format (:func:`pack_sections` /
:func:`unpack_sections`) is shared by all payloads so every compressor byte
stream is self-describing and independently decodable.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.compression.errors import (
    CorruptPayloadError,
    InvalidErrorBoundError,
    UnsupportedDataError,
)

_SECTION_MAGIC = b"RPRS"
_HEADER_STRUCT = struct.Struct("<4sI")
_ENTRY_STRUCT = struct.Struct("<HQ")


class ErrorBoundMode(str, Enum):
    """How the numeric error bound argument should be interpreted.

    * ``ABS`` — the bound is an absolute tolerance: ``|x - x̂| <= bound``.
    * ``REL`` — the bound is relative to the value range of the input:
      ``|x - x̂| <= bound * (max(x) - min(x))``.  This is the mode used
      throughout the FedSZ paper ("REL error bound").
    """

    ABS = "abs"
    REL = "rel"


def resolve_error_bound(
    data: np.ndarray, error_bound: float, mode: ErrorBoundMode
) -> float:
    """Convert a (bound, mode) pair into an absolute tolerance for ``data``.

    For ``REL`` mode the value range of ``data`` is used, matching SZ's
    ``REL`` semantics.  A constant array has zero range; in that case the
    resolved absolute bound is 0.0 and callers are expected to fall back to an
    exact representation (which is trivially cheap for constant data).
    """
    if not np.isfinite(error_bound) or error_bound <= 0:
        raise InvalidErrorBoundError(
            f"error bound must be a positive finite number, got {error_bound!r}"
        )
    if mode == ErrorBoundMode.ABS:
        return float(error_bound)
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return float(error_bound)
    value_range = float(finite.max() - finite.min())
    return float(error_bound * value_range)


@dataclass(frozen=True)
class CompressionStats:
    """Measurements describing one compression invocation."""

    original_nbytes: int
    compressed_nbytes: int
    compress_seconds: float
    decompress_seconds: Optional[float] = None
    max_abs_error: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Compression ratio (original size / compressed size)."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @property
    def compress_throughput_mbps(self) -> float:
        """Compression throughput in MB/s (10^6 bytes per second)."""
        if self.compress_seconds <= 0:
            return float("inf")
        return self.original_nbytes / 1e6 / self.compress_seconds


class LossyCompressor(ABC):
    """Interface implemented by every error-bounded lossy compressor."""

    #: Short registry name, e.g. ``"sz2"``.
    name: str = "lossy"

    @abstractmethod
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        """Compress a floating-point array into a self-describing payload."""

    @abstractmethod
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the array encoded in ``payload``."""

    def roundtrip(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> Tuple[np.ndarray, CompressionStats]:
        """Compress then decompress, returning the reconstruction and stats."""
        import time

        data = np.asarray(data)
        start = time.perf_counter()
        payload = self.compress(data, error_bound, mode)
        compress_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reconstructed = self.decompress(payload)
        decompress_seconds = time.perf_counter() - start
        max_abs_error = float(np.max(np.abs(data.astype(np.float64) - reconstructed)))
        stats = CompressionStats(
            original_nbytes=int(data.nbytes),
            compressed_nbytes=len(payload),
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            max_abs_error=max_abs_error,
            metadata={"compressor": self.name, "error_bound": error_bound, "mode": mode.value},
        )
        return reconstructed, stats

    @staticmethod
    def _validate_input(data: np.ndarray) -> np.ndarray:
        """Common validation: floating dtype, finite values, non-empty allowed."""
        data = np.asarray(data)
        if data.dtype.kind not in "f":
            raise UnsupportedDataError(
                f"lossy compressors expect floating-point data, got dtype {data.dtype}"
            )
        if not np.all(np.isfinite(data)):
            raise UnsupportedDataError("lossy compressors require finite input values")
        return data


class LosslessCompressor(ABC):
    """Interface implemented by byte-oriented lossless codecs."""

    #: Short registry name, e.g. ``"blosc-lz"``.
    name: str = "lossless"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress a byte string."""

    @abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Exactly reconstruct the byte string encoded in ``payload``."""

    def roundtrip(self, data: bytes) -> Tuple[bytes, CompressionStats]:
        """Compress then decompress, returning the output bytes and stats."""
        import time

        start = time.perf_counter()
        payload = self.compress(data)
        compress_seconds = time.perf_counter() - start
        start = time.perf_counter()
        restored = self.decompress(payload)
        decompress_seconds = time.perf_counter() - start
        stats = CompressionStats(
            original_nbytes=len(data),
            compressed_nbytes=len(payload),
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            metadata={"compressor": self.name},
        )
        return restored, stats


def pack_sections(sections: Mapping[str, bytes]) -> bytes:
    """Serialize named byte sections into a single framed payload.

    The format is: magic, section count, then for each section a
    (name-length, data-length) header followed by the UTF-8 name and the raw
    data.  Section order is preserved.
    """
    parts = [_HEADER_STRUCT.pack(_SECTION_MAGIC, len(sections))]
    for name, data in sections.items():
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise ValueError(f"section name too long: {name!r}")
        parts.append(_ENTRY_STRUCT.pack(len(encoded_name), len(data)))
        parts.append(encoded_name)
        parts.append(bytes(data))
    return b"".join(parts)


def unpack_sections(payload: bytes) -> Dict[str, bytes]:
    """Inverse of :func:`pack_sections`."""
    if len(payload) < _HEADER_STRUCT.size:
        raise CorruptPayloadError("payload too short to contain a section header")
    magic, count = _HEADER_STRUCT.unpack_from(payload, 0)
    if magic != _SECTION_MAGIC:
        raise CorruptPayloadError(f"bad payload magic {magic!r}")
    offset = _HEADER_STRUCT.size
    sections: Dict[str, bytes] = {}
    for _ in range(count):
        if offset + _ENTRY_STRUCT.size > len(payload):
            raise CorruptPayloadError("truncated section entry header")
        name_len, data_len = _ENTRY_STRUCT.unpack_from(payload, offset)
        offset += _ENTRY_STRUCT.size
        end_of_name = offset + name_len
        end_of_data = end_of_name + data_len
        if end_of_data > len(payload):
            raise CorruptPayloadError("truncated section data")
        name = payload[offset:end_of_name].decode("utf-8")
        sections[name] = payload[end_of_name:end_of_data]
        offset = end_of_data
    return sections


def pack_array(array: np.ndarray) -> bytes:
    """Serialize a numpy array (dtype, shape and raw bytes) into one section."""
    original = np.asarray(array)
    # np.ascontiguousarray promotes 0-d arrays to 1-d; preserve the true shape.
    array = np.ascontiguousarray(original).reshape(original.shape)
    dtype_name = array.dtype.str.encode("ascii")
    header = struct.pack("<H", len(dtype_name)) + dtype_name
    header += struct.pack("<B", array.ndim)
    header += struct.pack(f"<{array.ndim}q", *array.shape) if array.ndim else b""
    return header + array.tobytes()


def unpack_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`pack_array`."""
    if len(payload) < 2:
        raise CorruptPayloadError("array payload too short")
    (dtype_len,) = struct.unpack_from("<H", payload, 0)
    offset = 2
    dtype_name = payload[offset : offset + dtype_len].decode("ascii")
    offset += dtype_len
    (ndim,) = struct.unpack_from("<B", payload, offset)
    offset += 1
    shape: Tuple[int, ...] = ()
    if ndim:
        shape = struct.unpack_from(f"<{ndim}q", payload, offset)
        offset += 8 * ndim
    dtype = np.dtype(dtype_name)
    expected = int(np.prod(shape)) if shape else 1
    raw = payload[offset:]
    if len(raw) != expected * dtype.itemsize:
        raise CorruptPayloadError(
            f"array payload size mismatch: expected {expected * dtype.itemsize} bytes, got {len(raw)}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
