"""Integration-suite fixtures: the runtime RNG/clock sanitizer.

The determinism suites (checkpoint-resume, process-executor, fleet-scale,
thread-stress) assert bit-identity; while they run, the sanitizer from
:mod:`repro.analysis.sanitizer` patches the legacy global ``numpy.random``
API, the stdlib ``random`` module functions and ``time.time`` to raise
:class:`~repro.analysis.sanitizer.DeterminismViolation` when called from repo
runtime code.  Any dynamic escape the AST rules (DET001/DET002) cannot see —
getattr dispatch, a helper quietly reaching for the global stream — fails the
suite loudly instead of surfacing three suites later as an unexplained
divergence.  Fork-based executor workers inherit the active patches.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import sanitized

#: Module basenames the sanitizer wraps (the bit-identity suites).
SANITIZED_MODULES = frozenset({
    "test_checkpoint_resume",
    "test_process_executor",
    "test_fleet_scale",
    "test_thread_stress_determinism",
})


@pytest.fixture(autouse=True)
def rng_clock_sanitizer(request):
    """Activate the RNG/clock sanitizer around every determinism test."""
    module = request.module.__name__.rpartition(".")[2]
    if module in SANITIZED_MODULES:
        with sanitized(rng=True, clock=True):
            yield
    else:
        yield
