"""Round-by-round records of a federated run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.network.timing import EpochTimeBreakdown


@dataclass
class RoundRecord:
    """Everything measured during one communication round."""

    round_index: int
    global_accuracy: float
    global_loss: float
    mean_client_loss: float
    mean_client_accuracy: float
    uplink_bytes: int
    uplink_seconds: float
    compression_seconds: float
    decompression_seconds: float
    train_seconds: float
    validation_seconds: float
    mean_compression_ratio: float
    downlink_bytes: int = 0
    downlink_seconds: float = 0.0
    participating_clients: int = 0

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabulation."""
        return {
            "round": self.round_index,
            "accuracy": self.global_accuracy,
            "loss": self.global_loss,
            "client_loss": self.mean_client_loss,
            "uplink_mb": self.uplink_bytes / 1e6,
            "uplink_seconds": self.uplink_seconds,
            "compression_seconds": self.compression_seconds,
            "train_seconds": self.train_seconds,
            "ratio": self.mean_compression_ratio,
        }


@dataclass
class TrainingHistory:
    """Accumulated round records plus run-level summaries."""

    records: List[RoundRecord] = field(default_factory=list)

    def add(self, record: RoundRecord) -> None:
        """Append a round record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def accuracies(self) -> List[float]:
        """Global validation accuracy per round."""
        return [record.global_accuracy for record in self.records]

    @property
    def final_accuracy(self) -> float:
        """Validation accuracy after the last round (0.0 before any round)."""
        if not self.records:
            return 0.0
        return self.records[-1].global_accuracy

    @property
    def best_accuracy(self) -> float:
        """Best validation accuracy across rounds."""
        if not self.records:
            return 0.0
        return max(record.global_accuracy for record in self.records)

    @property
    def total_uplink_bytes(self) -> int:
        """Total bytes shipped from clients to the server over the run."""
        return sum(record.uplink_bytes for record in self.records)

    @property
    def total_uplink_seconds(self) -> float:
        """Total simulated uplink time over the run."""
        return sum(record.uplink_seconds for record in self.records)

    @property
    def total_compression_seconds(self) -> float:
        """Total time spent compressing client updates over the run."""
        return sum(record.compression_seconds for record in self.records)

    def mean_epoch_breakdown(self) -> EpochTimeBreakdown:
        """Average per-round client time decomposition (Figure 6)."""
        if not self.records:
            return EpochTimeBreakdown()
        count = len(self.records)
        return EpochTimeBreakdown(
            client_training_seconds=sum(r.train_seconds for r in self.records) / count,
            validation_seconds=sum(r.validation_seconds for r in self.records) / count,
            compression_seconds=sum(r.compression_seconds for r in self.records) / count,
            communication_seconds=sum(r.uplink_seconds for r in self.records) / count,
        )

    def as_rows(self) -> List[Dict[str, float]]:
        """Round records as flat dictionaries."""
        return [record.as_row() for record in self.records]
