"""Bit-level writer/reader used by the Huffman and ZFP-style codecs.

The writer supports both scalar appends and a vectorised
``write_fixed_width`` path that packs an entire integer array with a common
bit width in one numpy operation — the hot path for the ZFP and SZx
analogues, which store many small fixed-width integers.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

import numpy as np

from repro.compression.errors import CorruptPayloadError

#: A queued write: either a ready bit array or a pending scalar
#: ``(value, width)`` append.  Scalar appends are expanded lazily so that a
#: long run of ``write_bit``/``write_bits`` calls costs one list append each
#: and a single vectorised expansion at render time.
_Part = Union[np.ndarray, Tuple[int, int]]


def expand_msb_first(values: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Expand variable-width codewords into one flat MSB-first bit array.

    ``values[i]`` contributes its ``widths[i]`` least-significant bits, most
    significant first — the shared kernel behind both the lazy
    :class:`BitWriter` render and the vectorised Huffman encoder.
    """
    values = np.asarray(values, dtype=np.uint64)
    widths = np.asarray(widths, dtype=np.int64)
    ends = np.cumsum(widths)
    starts = ends - widths
    total = int(ends[-1]) if widths.size else 0
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, widths)
    shifts = (np.repeat(widths, widths) - 1 - within).astype(np.uint64)
    return ((np.repeat(values, widths) >> shifts) & np.uint64(1)).astype(np.uint8)


def _expand_scalar_writes(pending: List[Tuple[int, int]]) -> np.ndarray:
    """Expand queued ``(value, width)`` appends into one MSB-first bit array."""
    values = np.fromiter((value for value, _ in pending), dtype=np.uint64, count=len(pending))
    widths = np.fromiter((width for _, width in pending), dtype=np.int64, count=len(pending))
    return expand_msb_first(values, widths)


class BitWriter:
    """Accumulates bits most-significant-bit first and renders them to bytes."""

    def __init__(self) -> None:
        self._parts: List[_Part] = []
        self._bit_count = 0

    @property
    def bit_count(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._parts.append((bit & 1, 1))
        self._bit_count += 1

    def write_bits(self, value: int, width: int) -> None:
        """Append the ``width`` least-significant bits of ``value``, MSB first."""
        if width < 0:
            raise ValueError(f"bit width must be non-negative, got {width}")
        if width == 0:
            return
        value = int(value) & ((1 << width) - 1)
        if width <= 64:
            self._parts.append((value, width))
        else:
            bits = np.fromiter(
                ((value >> (width - 1 - i)) & 1 for i in range(width)),
                dtype=np.uint8,
                count=width,
            )
            self._parts.append(bits)
        self._bit_count += width

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append a flat array of 0/1 values."""
        bits = np.asarray(bits, dtype=np.uint8).ravel() & 1
        self._parts.append(bits)
        self._bit_count += bits.size

    def write_fixed_width(self, values: np.ndarray, width: int) -> None:
        """Append each value of an unsigned integer array using ``width`` bits.

        Values that do not fit in ``width`` bits are masked to their low bits;
        callers are responsible for choosing an adequate width.
        """
        if width < 0:
            raise ValueError(f"bit width must be non-negative, got {width}")
        values = np.asarray(values, dtype=np.uint64).ravel()
        if width == 0 or values.size == 0:
            return
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
        self._parts.append(bits.ravel())
        self._bit_count += values.size * width

    def getvalue(self) -> bytes:
        """Render all written bits as bytes (zero-padded to a byte boundary)."""
        if not self._parts:
            return b""
        chunks: List[np.ndarray] = []
        pending: List[Tuple[int, int]] = []
        for part in self._parts:
            if isinstance(part, tuple):
                pending.append(part)
                continue
            if pending:
                chunks.append(_expand_scalar_writes(pending))
                pending = []
            chunks.append(part)
        if pending:
            chunks.append(_expand_scalar_writes(pending))
        return np.packbits(np.concatenate(chunks)).tobytes()


class BitReader:
    """Sequential reader over a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_count: int | None = None) -> None:
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        if bit_count is not None:
            if bit_count > self._bits.size:
                raise CorruptPayloadError(
                    f"bitstream declares {bit_count} bits but only {self._bits.size} are present"
                )
            self._bits = self._bits[:bit_count]
        self._position = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._bits.size - self._position

    def read_bit(self) -> int:
        """Read one bit."""
        if self._position >= self._bits.size:
            raise CorruptPayloadError("attempted to read past the end of the bitstream")
        bit = int(self._bits[self._position])
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        if width == 0:
            return 0
        if self._position + width > self._bits.size:
            raise CorruptPayloadError("attempted to read past the end of the bitstream")
        chunk = self._bits[self._position : self._position + width]
        self._position += width
        # Pack the chunk back to bytes and let Python's big-int constructor do
        # the bit folding; packbits zero-pads the final byte on the LSB side.
        return int.from_bytes(np.packbits(chunk).tobytes(), "big") >> ((-width) % 8)

    def read_bit_array(self, count: int) -> np.ndarray:
        """Read ``count`` raw bits as a uint8 array."""
        if self._position + count > self._bits.size:
            raise CorruptPayloadError("attempted to read past the end of the bitstream")
        chunk = self._bits[self._position : self._position + count]
        self._position += count
        return chunk.copy()

    def read_fixed_width(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` unsigned integers of ``width`` bits each (vectorised)."""
        if width == 0:
            return np.zeros(count, dtype=np.uint64)
        total = count * width
        if self._position + total > self._bits.size:
            raise CorruptPayloadError("attempted to read past the end of the bitstream")
        chunk = self._bits[self._position : self._position + total]
        self._position += total
        bits = chunk.reshape(count, width).astype(np.uint64)
        weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
        return bits @ weights


def pack_bit_flags(flags: Iterable[bool]) -> bytes:
    """Pack a sequence of booleans into bytes (MSB-first within each byte)."""
    if not isinstance(flags, (np.ndarray, list, tuple)):
        flags = list(flags)
    array = (np.asarray(flags) != 0).astype(np.uint8)
    return np.packbits(array).tobytes()


def unpack_bit_flags(payload: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bit_flags`, returning a boolean array of ``count``."""
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    if bits.size < count:
        raise CorruptPayloadError(
            f"bit-flag payload holds {bits.size} bits, expected at least {count}"
        )
    return bits[:count].astype(bool)
