"""Wall-clock timing helpers.

The evaluation reports compression runtime, throughput and epoch-time
breakdowns, so a small set of consistent timing primitives is used everywhere
instead of scattering ``time.perf_counter()`` calls around the codebase.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating timer keyed by label.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("compress"):
    ...     pass
    >>> timer.total("compress") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(label, elapsed)

    def add(self, label: str, seconds: float) -> None:
        """Record ``seconds`` against ``label``."""
        self.totals[label] = self.totals.get(label, 0.0) + float(seconds)
        self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Total seconds recorded for ``label`` (0.0 if never recorded)."""
        return self.totals.get(label, 0.0)

    def mean(self, label: str) -> float:
        """Mean seconds per measurement for ``label``."""
        count = self.counts.get(label, 0)
        if count == 0:
            return 0.0
        return self.totals[label] / count

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all totals."""
        return dict(self.totals)

    def reset(self) -> None:
        """Clear all recorded measurements."""
        self.totals.clear()
        self.counts.clear()


class Stopwatch:
    """Single-shot stopwatch with lap support."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._laps: list[float] = []

    def lap(self) -> float:
        """Record and return the time since the last lap (or start)."""
        now = time.perf_counter()
        previous = self._start if not self._laps else self._last_lap_time
        self._laps.append(now - previous)
        self._last_lap_time = now
        return self._laps[-1]

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    @property
    def laps(self) -> Tuple[float, ...]:
        """All recorded laps."""
        return tuple(self._laps)

    _last_lap_time: float = 0.0


def timed(func: Callable[..., T], *args, **kwargs) -> Tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
