"""Configuration for the FedSZ compression pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compression.base import ErrorBoundMode

#: Relative error bound the paper recommends as the accuracy/ratio sweet spot.
RECOMMENDED_ERROR_BOUND = 1e-2

#: Minimum flattened size for a tensor to take the lossy path (Algorithm 1's
#: ``threshold``); small weight tensors are not worth the codec overhead.
DEFAULT_PARTITION_THRESHOLD = 1024


@dataclass(frozen=True)
class FedSZConfig:
    """All knobs of the FedSZ pipeline.

    The defaults reproduce the configuration the paper converges on: SZ2 with
    a relative error bound of 1e-2 for the large weight tensors, blosc-lz for
    the metadata/non-weight remainder.
    """

    error_bound: float = RECOMMENDED_ERROR_BOUND
    error_bound_mode: ErrorBoundMode = ErrorBoundMode.REL
    lossy_compressor: str = "sz2"
    lossless_compressor: str = "blosc-lz"
    partition_threshold: int = DEFAULT_PARTITION_THRESHOLD
    #: Extra keyword arguments forwarded to the lossy compressor factory.
    lossy_options: Dict[str, object] = field(default_factory=dict)
    #: Compress (and decompress) the lossy partition's tensors concurrently on
    #: a thread pool.  Codec stages are stateless and the numpy/zlib kernels
    #: release the GIL, so per-tensor parallelism buys real wall-clock on
    #: multi-core hosts; the assembled payload is byte-identical either way.
    parallel_tensors: bool = False
    #: Thread-pool width for per-tensor codec work (``None`` → ``os.cpu_count()``).
    max_codec_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise ValueError(f"error_bound must be positive, got {self.error_bound}")
        if self.partition_threshold < 0:
            raise ValueError(
                f"partition_threshold must be non-negative, got {self.partition_threshold}"
            )
        if self.max_codec_workers is not None and self.max_codec_workers <= 0:
            raise ValueError(
                f"max_codec_workers must be positive or None, got {self.max_codec_workers}"
            )

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        parallel = ""
        if self.parallel_tensors:
            workers = self.max_codec_workers or "auto"
            parallel = f", parallel_tensors={workers}"
        return (
            f"FedSZ({self.lossy_compressor} @ {self.error_bound:g} {self.error_bound_mode.value}, "
            f"lossless={self.lossless_compressor}, threshold={self.partition_threshold}{parallel})"
        )
