"""CONC001/CONC002 — lock discipline in lock-owning classes.

A class that binds a ``threading.Lock``/``RLock``/``Condition`` to a
``self.`` attribute has declared that some of its state is shared across
threads.  Which state?  The class's own code says: any attribute it mutates
inside a ``with self._lock:`` block is *guarded*.  Once an attribute is
guarded, **every** access must be consistent:

* **CONC001** — a guarded attribute is written (or mutated in place —
  ``append``/``update``/RNG draws) outside the lock.  Two threads racing
  that write corrupt state silently; in this repo that means a flaky
  determinism failure, not a crash.
* **CONC002** — a guarded attribute is *read* outside the lock.  Unlocked
  reads see torn multi-attribute invariants (``created`` vs ``in_use``
  mid-acquire) and on the monitor side can ship half-updated snapshots.

``__init__``/``__post_init__`` are exempt (no second thread can hold the
object before construction returns).  Classes owning no lock are out of
scope: single-thread-confined objects (e.g. ``BroadcastCache``, touched only
by the runtime thread) are legitimate and pinned as negative fixtures.
"""

from __future__ import annotations

from typing import Iterator, Set

from repro.analysis.callgraph import ClassFact, ProjectIndex
from repro.analysis.deep import DeepRule, register_deep_rule
from repro.analysis.engine import Finding

#: No thread can share ``self`` before construction completes.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _guarded_attrs(klass: ClassFact) -> Set[str]:
    """Attributes the class itself mutates under one of its locks."""
    return {
        access.attr
        for access in klass.accesses
        if access.kind in ("write", "mutate")
        and access.under_lock is not None
        and access.method not in _CONSTRUCTION_METHODS
    }


@register_deep_rule
class LockedWriteRule(DeepRule):
    rule_id = "CONC001"
    summary = "lock-guarded attributes are never mutated outside the lock"
    invariant = (
        "a class owning a threading lock mutates its guarded attributes "
        "only under `with self.<lock>:` — racy writes corrupt shared state "
        "as silent determinism failures, not crashes"
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        for klass in project.classes.values():
            if not klass.lock_attrs:
                continue
            guarded = _guarded_attrs(klass)
            for access in klass.accesses:
                if (
                    access.attr in guarded
                    and access.kind in ("write", "mutate")
                    and access.under_lock is None
                    and access.method not in _CONSTRUCTION_METHODS
                ):
                    verb = "mutated in place" if access.kind == "mutate" else "written"
                    yield self.finding(
                        project, klass.path, access.line, access.col,
                        f"{klass.name}.{access.attr} is guarded by "
                        f"self.{klass.lock_attrs[0]} elsewhere but {verb} "
                        f"without it in {access.method}(); wrap the mutation "
                        f"in `with self.{klass.lock_attrs[0]}:`",
                    )


@register_deep_rule
class LockedReadRule(DeepRule):
    rule_id = "CONC002"
    summary = "lock-guarded attributes are never read outside the lock"
    invariant = (
        "readers of lock-guarded state take the lock too — unlocked reads "
        "observe torn multi-attribute invariants mid-update"
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        for klass in project.classes.values():
            if not klass.lock_attrs:
                continue
            guarded = _guarded_attrs(klass)
            for access in klass.accesses:
                if (
                    access.attr in guarded
                    and access.kind == "read"
                    and access.under_lock is None
                    and access.method not in _CONSTRUCTION_METHODS
                ):
                    yield self.finding(
                        project, klass.path, access.line, access.col,
                        f"{klass.name}.{access.attr} is mutated under "
                        f"self.{klass.lock_attrs[0]} but read without it in "
                        f"{access.method}(); take the lock (re-entrant locks "
                        "make this safe even from methods the lock's holders "
                        "call)",
                    )


__all__ = ["LockedReadRule", "LockedWriteRule"]
