"""Tests for experiment reporting and shared workload builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    build_federated_setup,
    evaluate_state_dict,
    model_weight_sample,
    pretrained_like_state_dict,
    render_table,
    train_tiny_model,
)
from repro.core import partition_state_dict


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_experiment_result_rows_and_notes():
    result = ExperimentResult(name="demo", description="d")
    result.add_row(model="alexnet", ratio=12.5)
    result.add_row(model="resnet50", ratio=7.0)
    result.add_note("observation")
    assert result.column("ratio") == [12.5, 7.0]
    assert result.filter(model="alexnet")[0]["ratio"] == 12.5
    text = result.to_text()
    assert "demo" in text and "observation" in text and "alexnet" in text


def test_render_table_alignment_and_missing_values():
    rows = [{"a": 1, "b": 2.5}, {"a": 30, "c": "x"}]
    text = render_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, separator, two rows
    assert "a" in lines[0] and "b" in lines[0] and "c" in lines[0]
    assert render_table([]) == "(no rows)"


def test_render_table_formats_extreme_floats():
    text = render_table([{"x": 1.23e-7, "y": 4.56e8, "z": float("nan")}])
    assert "e-07" in text and "e+08" in text and "nan" in text


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def test_pretrained_like_state_dict_preserves_structure():
    state = pretrained_like_state_dict("mobilenetv2", "cifar10", max_elements_per_tensor=None, seed=0)
    reference = pretrained_like_state_dict("mobilenetv2", "cifar10", max_elements_per_tensor=None, seed=0)
    assert set(state) == set(reference)
    # Heavy-tailed weight replacement is deterministic for a fixed seed.
    for name in state:
        np.testing.assert_array_equal(state[name], reference[name])
    # BatchNorm statistics keep their original values (not resampled).
    bn_names = [n for n in state if "running_var" in n]
    assert bn_names


def test_pretrained_like_state_dict_subsampling_caps_tensor_sizes():
    capped = pretrained_like_state_dict("alexnet", "cifar10", max_elements_per_tensor=10_000, seed=0)
    largest = max(v.size for v in capped.values())
    assert largest <= max(10_000, 4096)  # big weights capped, small tensors untouched
    partition = partition_state_dict(capped)
    assert partition.lossy  # still has lossy-eligible tensors


def test_pretrained_like_state_dict_dataset_changes_weights():
    a = pretrained_like_state_dict("mobilenetv2", "cifar10", 20_000, seed=0)
    b = pretrained_like_state_dict("mobilenetv2", "caltech101", 20_000, seed=0)
    weight_name = next(n for n, v in a.items() if "weight" in n and v.size > 1024)
    assert not np.array_equal(a[weight_name], b[weight_name])


def test_model_weight_sample_scales_differ_by_family():
    alexnet = model_weight_sample("alexnet", 50_000, seed=0)
    mobilenet = model_weight_sample("mobilenetv2", 50_000, seed=0)
    assert np.std(mobilenet) > 2 * np.std(alexnet)


def test_build_federated_setup_caltech_caps_classes():
    setup = build_federated_setup("resnet50", "caltech101", samples=200, seed=0)
    assert setup.train_dataset.labels.max() < 10
    model = setup.model_fn()
    logits = model.eval()(setup.validation_dataset.images[:2])
    assert logits.shape[1] == 10


def test_build_federated_setup_fashion_mnist_single_channel():
    setup = build_federated_setup("mobilenetv2", "fashion-mnist", samples=200, seed=0)
    assert setup.train_dataset.input_shape[0] == 1
    logits = setup.model_fn().eval()(setup.validation_dataset.images[:2])
    assert logits.shape == (2, 10)


def test_train_tiny_model_learns_and_evaluates():
    model, validation = train_tiny_model("resnet50", "cifar10", epochs=4, samples=300, seed=0)
    accuracy = evaluate_state_dict(lambda: model, model.state_dict(), validation)
    assert accuracy > 0.5  # far above the 10-class chance level


@pytest.mark.parametrize("dataset", ["cifar10", "fashion-mnist"])
def test_federated_setup_is_reproducible(dataset):
    setup_a = build_federated_setup("mobilenetv2", dataset, samples=120, seed=5)
    setup_b = build_federated_setup("mobilenetv2", dataset, samples=120, seed=5)
    np.testing.assert_array_equal(setup_a.train_dataset.images, setup_b.train_dataset.images)
    state_a = setup_a.model_fn().state_dict()
    state_b = setup_b.model_fn().state_dict()
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])
