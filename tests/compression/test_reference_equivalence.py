"""Vectorised codec paths must be bit-identical to the scalar references.

The vectorised Huffman encoder/decoder and bitstream writer/reader replaced
per-bit Python loops; these tests pin them against the pre-vectorization
implementations kept in :mod:`repro.compression.reference`, with emphasis on
the edge cases the ISSUE calls out: empty input, a single-symbol alphabet, an
alphabet larger than 256 symbols, and maximally skewed (Fibonacci-weighted)
frequencies that force max-length codewords.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.bitstream import BitReader, BitWriter, pack_bit_flags
from repro.compression.errors import CorruptPayloadError
from repro.compression.huffman import HuffmanCode, HuffmanCodec
from repro.compression.reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
    ReferenceHuffmanCodec,
    reference_deserialize_table,
    reference_pack_bit_flags,
)


def _fibonacci_skewed_symbols(num_symbols: int) -> np.ndarray:
    """Fibonacci-weighted symbol stream: the classic worst case that drives
    canonical Huffman codeword lengths to their maximum (num_symbols - 1)."""
    weights = [1, 1]
    while len(weights) < num_symbols:
        weights.append(weights[-1] + weights[-2])
    return np.repeat(np.arange(num_symbols, dtype=np.int64), weights)


def _assert_codecs_agree(data: np.ndarray) -> None:
    data = np.asarray(data, dtype=np.int64)
    codec, reference = HuffmanCodec(), ReferenceHuffmanCodec()
    payload = codec.encode(data)
    assert payload == reference.encode(data), "encoded payloads must be bit-identical"
    np.testing.assert_array_equal(codec.decode(payload), data)
    np.testing.assert_array_equal(reference.decode(payload), data)


def test_huffman_empty_input_matches_reference():
    _assert_codecs_agree(np.array([], dtype=np.int64))


def test_huffman_single_symbol_alphabet_matches_reference():
    _assert_codecs_agree(np.full(1000, 42, dtype=np.int64))
    _assert_codecs_agree(np.array([-7], dtype=np.int64))


def test_huffman_alphabet_larger_than_256_matches_reference():
    rng = np.random.default_rng(0)
    alphabet = np.arange(-300, 300, dtype=np.int64)  # 600 distinct symbols
    data = rng.choice(alphabet, size=20_000)
    assert np.unique(data).size > 256
    _assert_codecs_agree(data)


def test_huffman_max_length_codewords_match_reference():
    # 21 Fibonacci-weighted symbols force a 20-bit longest codeword — the
    # boundary where decode still uses the vectorised lookup-table path.
    data = _fibonacci_skewed_symbols(21)
    assert HuffmanCode.from_symbols(data).max_length == 20
    _assert_codecs_agree(data)


def test_huffman_beyond_table_limit_matches_reference():
    # 26 symbols push max_length past the 20-bit table limit onto the
    # first-code fallback; both codecs must still agree payload-for-payload.
    data = _fibonacci_skewed_symbols(26)
    assert HuffmanCode.from_symbols(data).max_length > 20
    _assert_codecs_agree(data)


def test_huffman_scalar_fallback_for_huge_payloads(monkeypatch):
    # Past the memory limit, decode drops to the 1 B/bit scalar walk; force
    # the threshold low to cover that path without a gigabyte payload.
    monkeypatch.setattr(HuffmanCodec, "_VECTOR_PATH_LIMIT_BITS", 64)
    data = np.arange(500, dtype=np.int64) % 17
    codec = HuffmanCodec()
    np.testing.assert_array_equal(codec.decode(codec.encode(data)), data)


def test_huffman_skewed_stream_matches_reference():
    rng = np.random.default_rng(1)
    data = rng.choice([0, 0, 0, 0, 1, -1, 2, -2, 9], size=10_000).astype(np.int64)
    _assert_codecs_agree(data)


def test_table_deserialize_matches_reference():
    data = _fibonacci_skewed_symbols(18)
    table = HuffmanCode.from_symbols(data).serialize_table()
    vectorised = HuffmanCode.deserialize_table(table)
    reference = reference_deserialize_table(table)
    np.testing.assert_array_equal(vectorised.symbols, reference.symbols)
    np.testing.assert_array_equal(vectorised.lengths, reference.lengths)
    np.testing.assert_array_equal(vectorised.codes, reference.codes)


def test_decode_corruption_errors_match_reference():
    data = np.arange(64, dtype=np.int64)
    payload = HuffmanCodec().encode(data)
    truncated = payload[: len(payload) - 2]
    for codec in (HuffmanCodec(), ReferenceHuffmanCodec()):
        with pytest.raises(CorruptPayloadError):
            codec.decode(truncated)


def test_bitwriter_interleaved_writes_match_reference():
    rng = np.random.default_rng(2)
    writer, reference = BitWriter(), ReferenceBitWriter()
    for _ in range(500):
        kind = rng.integers(0, 3)
        if kind == 0:
            bit = int(rng.integers(0, 2))
            writer.write_bit(bit)
            reference.write_bit(bit)
        elif kind == 1:
            width = int(rng.integers(1, 64))
            value = int(rng.integers(0, 1 << min(width, 62)))
            writer.write_bits(value, width)
            reference.write_bits(value, width)
        else:
            bits = rng.integers(0, 2, size=int(rng.integers(1, 40)))
            writer.write_bit_array(bits)
            reference.write_bit_array(bits)
    assert writer.bit_count == reference.bit_count
    assert writer.getvalue() == reference.getvalue()


def test_bitwriter_wide_value_matches_reference_semantics():
    # Widths above 64 bits take a separate expansion path; the MSB-first
    # layout must be preserved exactly.
    value = (1 << 100) | (1 << 64) | 0b1011
    writer = BitWriter()
    writer.write_bits(value, 101)
    reader = BitReader(writer.getvalue(), bit_count=101)
    assert reader.read_bits(101) == value


def test_bitreader_read_bits_matches_reference():
    rng = np.random.default_rng(3)
    payload = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
    reader, reference = BitReader(payload), ReferenceBitReader(payload)
    for width in (0, 1, 3, 7, 8, 13, 31, 64, 200, 1024):
        assert reader.read_bits(width) == reference.read_bits(width)


def test_pack_bit_flags_matches_reference_for_all_input_kinds():
    rng = np.random.default_rng(4)
    flags = rng.random(1000) < 0.4
    expected = reference_pack_bit_flags(flags.tolist())
    assert pack_bit_flags(flags) == expected  # ndarray fast path
    assert pack_bit_flags(flags.tolist()) == expected  # list
    assert pack_bit_flags(tuple(flags.tolist())) == expected  # tuple
    assert pack_bit_flags(bool(flag) for flag in flags) == expected  # generator
    assert pack_bit_flags([]) == reference_pack_bit_flags([]) == b""
