"""Core of the repro lint engine: parsing, suppression handling, output.

The engine is deliberately small: it turns each ``.py`` file into a
:class:`ModuleContext` (AST + resolved import aliases + per-line suppression
comments) and hands it to every registered rule.  All repo knowledge lives in
the rule modules; all mechanics live here.

Suppressions
------------
A finding on a line carrying ``# repro-lint: disable=DET001`` (comma-separate
several ids, or ``disable=all``) is dropped.  Anything after the rule list is
a free-form justification and is encouraged::

    np.random.seed(seed)  # repro-lint: disable=DET001 -- sanctioned global entry

Pre-existing findings can instead be parked in a baseline file (see
:mod:`repro.analysis.baseline`) and burned down without blocking CI.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: JSON output schema tag (mirrors ``repro.bench``'s schema versioning).
LINT_SCHEMA = "repro.lint"
LINT_SCHEMA_VERSION = 1

_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line, used for line-drift-tolerant baseline
    #: fingerprints and human-readable baseline entries.
    line_text: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class ModuleContext:
    """A parsed module plus the lookup helpers every rule needs."""

    def __init__(self, path: str, source: str) -> None:
        self.path = str(Path(path).as_posix())
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.aliases = _import_aliases(self.tree)
        self.suppressions = _suppressed_lines(source)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The literal dotted name of a Name/Attribute chain (unresolved)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a call target, through imports.

        ``np.random.seed`` resolves to ``numpy.random.seed`` given
        ``import numpy as np``; a bare ``perf_counter`` resolves to
        ``time.perf_counter`` given ``from time import perf_counter``.
        Returns ``None`` for anything not rooted at an imported name, so
        method calls on local objects never alias into a module path.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "ALL" in rules or finding.rule.upper() in rules


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every locally-bound import name to its fully-qualified origin."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname or name.name.partition(".")[0]
                target = name.name if name.asname else name.name.partition(".")[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname or name.name
                aliases[bound] = f"{node.module}.{name.name}"
    return aliases


def _suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """``{lineno: {RULE, ...}}`` for every ``# repro-lint: disable=`` comment."""
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (lineno, line)
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for lineno, text in comments:
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = {part.strip().upper() for part in match.group(1).split(",")}
        suppressed.setdefault(lineno, set()).update(rules - {""})
    return suppressed


@dataclass
class LintResult:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    baselined: int = 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept as-is), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        else:
            files.append(path)
    # De-duplicate while keeping deterministic order.
    unique: List[Path] = []
    seen = set()
    for path in files:
        key = path.as_posix()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def lint_source(path: str, source: str, rules) -> List[Finding]:
    """Run ``rules`` over one module's source, honouring suppressions."""
    try:
        module = ModuleContext(path, source)
    except SyntaxError as error:
        return [
            Finding(
                rule="PARSE",
                path=str(Path(path).as_posix()),
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def lint_paths(paths: Sequence, rules) -> LintResult:
    """Run ``rules`` over every python file under ``paths``."""
    result = LintResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        result.findings.extend(lint_source(str(file_path), source, rules))
        result.checked_files += 1
    result.findings.sort(key=Finding.sort_key)
    return result


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line."""
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_rule()
    summary = (
        f"{len(result.findings)} finding(s) in {result.checked_files} file(s)"
        + (f" ({result.baselined} baselined)" if result.baselined else "")
    )
    if counts:
        summary += "  [" + ", ".join(f"{rule}: {n}" for rule, n in counts.items()) + "]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Schema-tagged JSON report (stable key order, sorted findings)."""
    payload = {
        "schema": LINT_SCHEMA,
        "version": LINT_SCHEMA_VERSION,
        "checked_files": result.checked_files,
        "baselined": result.baselined,
        "counts": result.counts_by_rule(),
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(result: LintResult, rule_descriptions: Sequence[Dict[str, str]] = ()) -> str:
    """SARIF 2.1.0 report, consumable by GitHub code scanning.

    ``rule_descriptions`` is the ``[{id, summary, invariant}, ...]`` list the
    registries expose; rules that produced no finding are still described so
    the scanning UI can show the full rule catalogue.
    """
    described = {d["id"] for d in rule_descriptions}
    rules = [
        {
            "id": d["id"],
            "shortDescription": {"text": d["summary"]},
            "fullDescription": {"text": d["invariant"]},
        }
        for d in rule_descriptions
    ]
    # Findings from rules outside the catalogue (e.g. PARSE) still need a
    # driver entry or the file is invalid SARIF.
    for rule_id in result.counts_by_rule():
        if rule_id not in described:
            rules.append({"id": rule_id, "shortDescription": {"text": rule_id}})
    payload = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": str(LINT_SCHEMA_VERSION),
                        "rules": rules,
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path,
                                        "uriBaseId": "%SRCROOT%",
                                    },
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for finding in result.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
