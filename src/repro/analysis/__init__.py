"""Determinism & fork-safety static analysis (``repro lint``).

An AST-based, repo-specific lint engine plus a runtime RNG/clock sanitizer.
The rules encode the invariants the integration suites enforce dynamically —
bit-identical serial/thread/process execution, resume==uninterrupted,
monitored==unmonitored — so the cheap static pass catches the recurring bug
classes (unseeded RNG substreams, wall-clock in simulation fields,
unpicklable objects crossing the fork boundary) at diff time.

Shipped rules
-------------
DET001   no global-state RNG (np.random.* module API, bare random.*)
DET002   no wall-clock sources; no timing values in deterministic fields
DET003   checkpoint_state/restore pair completeness; mutable codecs clone()
DET004   no bare/silent broad excepts; no assert-as-validation
FORK001  worker-crossing task specs stay lambda/closure/lock/thread-free
"""

from repro.analysis.baseline import Baseline, write_baseline
from repro.analysis.engine import (
    Finding,
    LintResult,
    ModuleContext,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.rules import (
    LintRule,
    available_rules,
    get_rule,
    get_rules,
    register_rule,
    rule_descriptions,
)
from repro.analysis.sanitizer import DeterminismViolation, sanitized

__all__ = [
    "Baseline",
    "DeterminismViolation",
    "Finding",
    "LintResult",
    "LintRule",
    "ModuleContext",
    "available_rules",
    "get_rule",
    "get_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "rule_descriptions",
    "sanitized",
    "write_baseline",
]
