"""Tests for the cross-entropy loss and the SGD optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, Linear, Parameter, SGD, Sequential, ReLU, cross_entropy_with_grad
from repro.nn import functional as F


def test_cross_entropy_matches_manual_computation():
    logits = np.array([[2.0, 1.0, 0.1]], dtype=np.float32)
    loss_fn = CrossEntropyLoss()
    loss = loss_fn(logits, np.array([0]))
    probabilities = F.softmax(logits.astype(np.float64))
    assert loss == pytest.approx(-np.log(probabilities[0, 0]), rel=1e-6)


def test_cross_entropy_gradient_matches_numerical(rng):
    logits = rng.normal(size=(4, 5)).astype(np.float64)
    targets = rng.integers(0, 5, size=4)
    _, grad = cross_entropy_with_grad(logits, targets)
    epsilon = 1e-5
    numeric = np.zeros_like(logits)
    for i in range(logits.shape[0]):
        for j in range(logits.shape[1]):
            plus = logits.copy()
            plus[i, j] += epsilon
            minus = logits.copy()
            minus[i, j] -= epsilon
            loss_plus, _ = cross_entropy_with_grad(plus, targets)
            loss_minus, _ = cross_entropy_with_grad(minus, targets)
            numeric[i, j] = (loss_plus - loss_minus) / (2 * epsilon)
    np.testing.assert_allclose(grad, numeric, rtol=1e-3, atol=1e-5)


def test_cross_entropy_backward_requires_forward():
    with pytest.raises(RuntimeError):
        CrossEntropyLoss().backward()


def test_perfect_prediction_has_near_zero_loss():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32)
    loss = CrossEntropyLoss()(logits, np.array([0, 1]))
    assert loss < 1e-6


def test_sgd_plain_update():
    parameter = Parameter(np.array([1.0, 2.0], dtype=np.float32))
    parameter.accumulate_grad(np.array([0.5, -0.5], dtype=np.float32))
    SGD([parameter], lr=0.1).step()
    np.testing.assert_allclose(parameter.data, [0.95, 2.05])


def test_sgd_weight_decay_shrinks_parameters():
    parameter = Parameter(np.array([10.0], dtype=np.float32))
    parameter.accumulate_grad(np.array([0.0], dtype=np.float32))
    SGD([parameter], lr=0.1, weight_decay=0.1).step()
    assert parameter.data[0] == pytest.approx(10.0 - 0.1 * 0.1 * 10.0)


def test_sgd_momentum_accumulates_velocity():
    parameter = Parameter(np.array([0.0], dtype=np.float32))
    optimizer = SGD([parameter], lr=1.0, momentum=0.9)
    for _ in range(2):
        parameter.grad = None
        parameter.accumulate_grad(np.array([1.0], dtype=np.float32))
        optimizer.step()
    # First step: -1; second step velocity = 0.9 * 1 + 1 = 1.9 -> total -2.9.
    assert parameter.data[0] == pytest.approx(-2.9)


def test_sgd_skips_parameters_without_grad():
    parameter = Parameter(np.array([3.0], dtype=np.float32))
    SGD([parameter], lr=0.1).step()
    assert parameter.data[0] == 3.0


def test_sgd_validation_errors():
    parameter = Parameter(np.zeros(1))
    with pytest.raises(ValueError):
        SGD([parameter], lr=0.0)
    with pytest.raises(ValueError):
        SGD([parameter], lr=0.1, momentum=-0.1)
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    optimizer = SGD([parameter], lr=0.1)
    with pytest.raises(ValueError):
        optimizer.set_lr(-1.0)


def test_end_to_end_training_reduces_loss(rng):
    """A small MLP must be able to fit a linearly separable problem."""
    model = Sequential(Linear(2, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
    optimizer = SGD(model.parameters(), lr=0.5, momentum=0.9)
    loss_fn = CrossEntropyLoss()
    inputs = rng.normal(size=(128, 2)).astype(np.float32)
    targets = (inputs[:, 0] + inputs[:, 1] > 0).astype(np.int64)

    first_loss = None
    for _step in range(60):
        optimizer.zero_grad()
        logits = model(inputs)
        loss = loss_fn(logits, targets)
        if first_loss is None:
            first_loss = loss
        model.backward(loss_fn.backward())
        optimizer.step()
    final_accuracy = F.accuracy(model(inputs), targets)
    assert loss < first_loss * 0.5
    assert final_accuracy > 0.9
