"""Federated server: global model, aggregation and validation."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.data.datasets import SyntheticImageDataset
from repro.fl.aggregation import fedavg
from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module


@dataclass
class EvaluationResult:
    """Global-model validation metrics."""

    loss: float
    accuracy: float
    num_samples: int
    seconds: float


class FLServer:
    """Holds the global model, aggregates client updates, validates."""

    def __init__(
        self,
        model_fn: Callable[[], Module],
        validation_dataset: Optional[SyntheticImageDataset] = None,
        eval_batch_size: int = 128,
    ) -> None:
        self.model = model_fn()
        self.validation_dataset = validation_dataset
        self.eval_batch_size = int(eval_batch_size)
        self._loss = CrossEntropyLoss()

    def global_state(self) -> Dict[str, np.ndarray]:
        """Snapshot of the current global model."""
        return self.model.state_dict()

    def set_global_state(self, state_dict: Mapping[str, np.ndarray]) -> None:
        """Overwrite the global model (e.g. with an aggregated state)."""
        self.model.load_state_dict(dict(state_dict))

    def aggregate(
        self,
        client_states: Sequence[Mapping[str, np.ndarray]],
        client_weights: Optional[Sequence[float]] = None,
    ) -> Dict[str, np.ndarray]:
        """FedAvg the client states and install the result as the new global model."""
        aggregated = fedavg(client_states, client_weights)
        self.set_global_state(aggregated)
        return aggregated

    def evaluate(self, dataset: Optional[SyntheticImageDataset] = None) -> EvaluationResult:
        """Evaluate the global model on the validation (or a supplied) dataset."""
        dataset = dataset or self.validation_dataset
        if dataset is None:
            raise ValueError("no validation dataset available for evaluation")
        start = time.perf_counter()
        self.model.eval()
        losses: List[float] = []
        accuracies: List[float] = []
        counts: List[int] = []
        for start_index in range(0, len(dataset), self.eval_batch_size):
            images = dataset.images[start_index : start_index + self.eval_batch_size]
            labels = dataset.labels[start_index : start_index + self.eval_batch_size]
            logits = self.model(images)
            losses.append(self._loss(logits, labels) * labels.shape[0])
            accuracies.append(F.accuracy(logits, labels) * labels.shape[0])
            counts.append(labels.shape[0])
        total = sum(counts)
        return EvaluationResult(
            loss=sum(losses) / max(total, 1),
            accuracy=sum(accuracies) / max(total, 1),
            num_samples=total,
            seconds=time.perf_counter() - start,
        )
