"""Zero/denormal elapsed times must read as ``inf`` throughput, never raise.

Sub-microsecond codec calls can report an elapsed time of exactly 0.0 (clock
granularity) or a denormal float whose division overflows; both
``CompressionStats`` and the bench reporter's ``MetricRecord`` must map these
to ``inf`` ("too fast to measure") instead of raising or leaking a warning
into reports.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import MetricRecord
from repro.compression import CompressionStats, safe_throughput_mbps

DENORMAL = 5e-324  # smallest positive float: division by it overflows


@pytest.mark.parametrize("elapsed", [0.0, -1.0, DENORMAL, float("nan")], ids=["zero", "negative", "denormal", "nan"])
def test_compression_stats_throughput_is_inf_on_degenerate_elapsed(elapsed):
    stats = CompressionStats(
        original_nbytes=10**9,
        compressed_nbytes=1,
        compress_seconds=elapsed,
        decompress_seconds=elapsed,
    )
    assert stats.compress_throughput_mbps == float("inf")
    assert stats.decompress_throughput_mbps == float("inf")


def test_compression_stats_throughput_normal_case():
    stats = CompressionStats(
        original_nbytes=2_000_000, compressed_nbytes=1, compress_seconds=0.5
    )
    assert stats.compress_throughput_mbps == pytest.approx(4.0)
    # Missing decompress timing also reads as inf rather than raising.
    assert stats.decompress_throughput_mbps == float("inf")


def test_safe_throughput_never_raises_and_is_finite_when_measurable():
    assert safe_throughput_mbps(10**9, DENORMAL) == float("inf")
    assert safe_throughput_mbps(0, 0.0) == float("inf")
    assert math.isfinite(safe_throughput_mbps(1_000_000, 1.0))


@pytest.mark.parametrize("elapsed", [0.0, DENORMAL], ids=["zero", "denormal"])
def test_metric_record_rates_are_inf_not_error(elapsed):
    import json

    record = MetricRecord(
        name="m", seconds=elapsed, mean_seconds=elapsed, repeats=1, warmup=0,
        items=10**9, nbytes=10**9,
    )
    assert record.items_per_second == float("inf")
    assert record.mb_per_second == float("inf")
    # JSON output stays strict RFC 8259: "too fast to measure" becomes null,
    # never the non-standard Infinity token.
    payload = record.as_dict()
    assert payload["items_per_second"] is None
    assert payload["mb_per_second"] is None
    assert "Infinity" not in json.dumps(payload)


def test_metric_record_rates_none_without_work_annotations():
    record = MetricRecord(name="m", seconds=0.0, mean_seconds=0.0, repeats=1, warmup=0)
    assert record.items_per_second is None
    assert record.mb_per_second is None
