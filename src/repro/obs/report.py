"""Deterministic post-run error-analysis reports.

:func:`build_error_analysis` turns a :class:`~repro.fl.history.TrainingHistory`
(plus optional BENCH documents and gate comparisons) into a markdown report
that answers the question a failed run or failed gate actually raises: *where*
did it go wrong?  It ranks the rounds and tensors where the error bound was
nearly violated, detects adaptive-controller thrash in the per-round bound
trajectory, ranks the worst clients/links by drops, deadline cuts and
turnaround, and reconstructs the fault timeline from the delivery flags.

Determinism is a hard requirement — CI diffs these reports across runs, and
the test suite pins them byte-for-byte.  Hence: no wall-clock timestamps, no
dict-order dependence (every ranking has an explicit sort key with the
round/tensor/client id as the final tiebreak), and all floats go through one
fixed ``%.4g``-style formatter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: Bound-utilization level at which a round/tensor is flagged.  1.0 means the
#: reconstruction error touched the bound exactly.
NEAR_VIOLATION_THRESHOLD = 0.9

#: Direction flips in the error-bound trajectory (per adjustment) above which
#: the adaptive controller is reported as thrashing.
THRASH_FLIP_FRACTION = 0.5


def _fmt(value: float) -> str:
    """One fixed float format for every number in the report."""
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    return f"{value:.4g}"


def _utilization_flag(value: float) -> str:
    if value > 1.0:
        return " **VIOLATED**"
    if value >= NEAR_VIOLATION_THRESHOLD:
        return " **NEAR-VIOLATION**"
    return ""


def _run_summary(history) -> List[str]:
    lines = ["## Run summary", ""]
    if not len(history):
        lines.append("No rounds recorded — the run produced an empty history.")
        lines.append("")
        return lines
    records = history.records
    lines.extend(
        [
            f"- rounds: {len(records)}",
            f"- final accuracy: {_fmt(history.final_accuracy)}"
            f" (best {_fmt(history.best_accuracy)})",
            f"- total uplink: {_fmt(history.total_uplink_bytes / 1e6)} MB"
            f" over {_fmt(history.total_uplink_seconds)} simulated s",
            f"- dropped updates: {history.total_dropped_clients}"
            f", deadline-cut stragglers: {history.total_straggler_clients}",
            f"- mean compression ratio: "
            f"{_fmt(sum(r.mean_compression_ratio for r in records) / len(records))}x",
        ]
    )
    bounds = [r.error_bound for r in records if r.error_bound > 0.0]
    if bounds:
        mode = next((r.error_bound_mode for r in records if r.error_bound_mode), "")
        lines.append(
            f"- error bound ({mode or 'unknown mode'}): "
            f"{_fmt(min(bounds))} .. {_fmt(max(bounds))}"
        )
    else:
        lines.append("- error bound: none recorded (uncompressed or legacy history)")
    lines.append("")
    return lines


def _bound_pressure(history, top: int = 10) -> List[str]:
    lines = ["## Error-bound pressure", ""]
    tracked = [r for r in history.records if r.tensor_bound_utilization]
    if not tracked:
        lines.append(
            "No bound-utilization data recorded (run was uncompressed, or the "
            "history predates utilization tracking)."
        )
        lines.append("")
        return lines
    ranked = sorted(
        tracked, key=lambda r: (-r.max_bound_utilization, r.round_index)
    )[:top]
    lines.append("Rounds ranked by worst-tensor bound utilization"
                 " (`max_abs_error / resolved_bound`):")
    lines.append("")
    lines.append("| round | utilization | worst tensor | error bound |")
    lines.append("| --- | --- | --- | --- |")
    for record in ranked:
        worst_tensor = min(
            record.tensor_bound_utilization,
            key=lambda name, utilization=record.tensor_bound_utilization: (-utilization[name], name),
        )
        lines.append(
            f"| {record.round_index} "
            f"| {_fmt(record.max_bound_utilization)}"
            f"{_utilization_flag(record.max_bound_utilization)} "
            f"| `{worst_tensor}` "
            f"| {_fmt(record.error_bound)} |"
        )
    lines.append("")

    # Per-tensor worst case across the whole run.
    tensor_worst: Dict[str, float] = {}
    tensor_round: Dict[str, int] = {}
    for record in tracked:
        for name, value in record.tensor_bound_utilization.items():
            if name not in tensor_worst or value > tensor_worst[name]:
                tensor_worst[name] = value
                tensor_round[name] = record.round_index
    ranked_tensors = sorted(tensor_worst, key=lambda n: (-tensor_worst[n], n))[:top]
    lines.append("Tensors ranked by worst utilization over the run:")
    lines.append("")
    lines.append("| tensor | worst utilization | at round |")
    lines.append("| --- | --- | --- |")
    for name in ranked_tensors:
        lines.append(
            f"| `{name}` | {_fmt(tensor_worst[name])}"
            f"{_utilization_flag(tensor_worst[name])} | {tensor_round[name]} |"
        )
    lines.append("")
    return lines


def _controller_stability(history) -> List[str]:
    lines = ["## Adaptive-controller stability", ""]
    trajectory = [r.error_bound for r in history.records if r.error_bound > 0.0]
    if len(trajectory) < 3:
        lines.append("Not enough bound data to assess the controller"
                     f" ({len(trajectory)} round(s) with a recorded bound).")
        lines.append("")
        return lines
    moves = [b - a for a, b in zip(trajectory, trajectory[1:], strict=False) if b != a]
    if not moves:
        lines.append(
            f"Bound held constant at {_fmt(trajectory[0])} for all "
            f"{len(trajectory)} rounds — static codec or a converged controller."
        )
        lines.append("")
        return lines
    flips = sum(
        1 for a, b in zip(moves, moves[1:], strict=False)
        if math.copysign(1.0, a) != math.copysign(1.0, b)
    )
    flip_fraction = flips / len(moves)
    lines.extend(
        [
            f"- bound adjustments: {len(moves)} over {len(trajectory)} rounds",
            f"- direction flips: {flips} ({_fmt(100 * flip_fraction)}% of adjustments)",
            f"- trajectory: {_fmt(trajectory[0])} -> {_fmt(trajectory[-1])}"
            f" (min {_fmt(min(trajectory))}, max {_fmt(max(trajectory))})",
        ]
    )
    if flip_fraction >= THRASH_FLIP_FRACTION and flips >= 2:
        lines.append(
            "- verdict: **THRASHING** — the controller reverses direction on "
            f"{_fmt(100 * flip_fraction)}% of its adjustments; consider widening "
            "its accuracy dead-band or lowering its adjustment rate."
        )
    else:
        lines.append("- verdict: stable (mostly monotonic adjustment).")
    lines.append("")
    return lines


def _worst_clients(history, top: int = 5) -> List[str]:
    lines = ["## Worst clients / links", ""]
    aggregates: Dict[int, Dict[str, float]] = {}
    for record in history.records:
        for stat in record.client_stats:
            agg = aggregates.setdefault(
                stat.client_id,
                {"rounds": 0, "dropped": 0, "stragglers": 0,
                 "turnaround": 0.0, "max_turnaround": 0.0, "bound_utilization": 0.0},
            )
            agg["rounds"] += 1
            agg["dropped"] += 0 if stat.delivered else 1
            agg["stragglers"] += 1 if (stat.delivered and not stat.aggregated) else 0
            agg["turnaround"] += stat.turnaround_seconds
            agg["max_turnaround"] = max(agg["max_turnaround"], stat.turnaround_seconds)
            agg["bound_utilization"] = max(agg["bound_utilization"], stat.bound_utilization)
    if not aggregates:
        lines.append("No per-client stats recorded (legacy history).")
        lines.append("")
        return lines
    ranked = sorted(
        aggregates,
        key=lambda cid: (
            -aggregates[cid]["dropped"],
            -aggregates[cid]["stragglers"],
            -aggregates[cid]["max_turnaround"],
            cid,
        ),
    )[:top]
    lines.append("Ranked by (drops, deadline cuts, worst turnaround):")
    lines.append("")
    lines.append("| client | rounds | drops | deadline cuts "
                 "| mean turnaround (s) | max turnaround (s) | worst bound use |")
    lines.append("| --- | --- | --- | --- | --- | --- | --- |")
    for cid in ranked:
        agg = aggregates[cid]
        mean_turnaround = agg["turnaround"] / max(1, agg["rounds"])
        lines.append(
            f"| {cid} | {int(agg['rounds'])} | {int(agg['dropped'])} "
            f"| {int(agg['stragglers'])} | {_fmt(mean_turnaround)} "
            f"| {_fmt(agg['max_turnaround'])} | {_fmt(agg['bound_utilization'])} |"
        )
    lines.append("")
    return lines


def _fault_timeline(history) -> List[str]:
    lines = ["## Fault timeline", ""]
    events: List[str] = []
    for record in history.records:
        for stat in sorted(record.client_stats, key=lambda s: s.client_id):
            if stat.delivered:
                continue
            # A transit loss carries the payload it paid to ship before the
            # link dropped it; a client that never produced an update has
            # nothing on the wire.
            kind = "transit loss" if stat.payload_nbytes > 0 else "client failure"
            events.append(
                f"- round {record.round_index}: client {stat.client_id} — {kind}"
                f" ({_fmt(stat.payload_nbytes / 1e6)} MB undelivered)"
            )
        if record.straggler_clients:
            cut = sorted(
                s.client_id for s in record.client_stats if s.delivered and not s.aggregated
            )
            events.append(
                f"- round {record.round_index}: deadline cut "
                f"{record.straggler_clients} straggler(s)"
                + (f" (clients {', '.join(str(c) for c in cut)})" if cut else "")
            )
    if not events:
        lines.append("No drops, failures or deadline cuts recorded.")
    else:
        lines.extend(events)
    lines.append("")
    return lines


def _bench_section(
    bench_comparisons: Optional[Sequence] = None,
    bench_reports: Optional[Sequence[Dict]] = None,
) -> List[str]:
    lines: List[str] = []
    if bench_comparisons:
        lines.extend(["## Benchmark gates", ""])
        ordered = sorted(bench_comparisons, key=lambda r: r.workload)
        failing = [r for r in ordered if not r.ok]
        lines.append(
            f"{len(ordered)} workload(s) compared, {len(failing)} failing."
        )
        lines.append("")
        lines.append("| workload | metric | baseline (s) | current (s) | ratio | status |")
        lines.append("| --- | --- | --- | --- | --- | --- |")
        for result in ordered:
            for comparison in sorted(result.comparisons, key=lambda c: c.name):
                status = comparison.status.upper() if comparison.status in (
                    "regression", "missing"
                ) else comparison.status
                lines.append(
                    f"| {result.workload} | {comparison.name} "
                    f"| {_fmt(comparison.baseline_seconds)} "
                    f"| {_fmt(comparison.current_seconds)} "
                    f"| {_fmt(comparison.ratio)} | {status} |"
                )
        lines.append("")
    if bench_reports:
        from repro.bench.reporter import metric_summary

        lines.extend(["## Benchmark measurements", ""])
        lines.append("| workload | metric | seconds | detail |")
        lines.append("| --- | --- | --- | --- |")
        ordered_reports = sorted(
            bench_reports, key=lambda d: str(d.get("workload", ""))
        )
        for document in ordered_reports:
            workload = document.get("workload", "?")
            metrics = document.get("metrics", {})
            for name in sorted(metrics):
                metric = metrics[name]
                lines.append(
                    f"| {workload} | {name} | {_fmt(float(metric['seconds']))} "
                    f"| {metric_summary(metric)} |"
                )
        lines.append("")
    return lines


def build_error_analysis(
    history=None,
    bench_comparisons: Optional[Sequence] = None,
    bench_reports: Optional[Sequence[Dict]] = None,
    title: str = "Run error-analysis report",
) -> str:
    """Render the full markdown report.

    ``history`` is a :class:`~repro.fl.history.TrainingHistory` (or None when
    only benchmark data is being diagnosed); ``bench_comparisons`` is a
    sequence of :class:`~repro.bench.compare.ComparisonResult`;
    ``bench_reports`` is a sequence of validated BENCH documents.  Output is a
    pure function of these inputs.
    """
    lines: List[str] = [f"# {title}", ""]
    if history is not None:
        lines.extend(_run_summary(history))
        lines.extend(_bound_pressure(history))
        lines.extend(_controller_stability(history))
        lines.extend(_worst_clients(history))
        lines.extend(_fault_timeline(history))
    lines.extend(_bench_section(bench_comparisons, bench_reports))
    if len(lines) == 2:
        lines.extend(["No inputs provided — nothing to analyse.", ""])
    return "\n".join(lines).rstrip() + "\n"


def build_bench_diagnosis(results: Sequence, title: str = "Bench gate diagnosis") -> str:
    """Markdown diagnosis for ``bench compare --report-out``.

    ``results`` is the list of :class:`~repro.bench.compare.ComparisonResult`
    from one multi-pair gate invocation; the report leads with the combined
    verdict so a red CI job's artifact answers "what failed" in one line.
    """
    ordered = sorted(results, key=lambda r: r.workload)
    failing = [r for r in ordered if not r.ok]
    lines = [f"# {title}", ""]
    if not ordered:
        lines.extend(["No comparisons ran.", ""])
        return "\n".join(lines)
    if failing:
        total = sum(len(r.failures) for r in failing)
        lines.append(
            f"**GATE FAILED** — {total} failing metric(s) across "
            f"{len(failing)} of {len(ordered)} workload(s):"
        )
        lines.append("")
        for result in failing:
            for comparison in sorted(result.failures, key=lambda c: c.name):
                if comparison.status == "missing":
                    lines.append(
                        f"- `{result.workload}/{comparison.name}`: **missing** from "
                        f"the current run (baseline {_fmt(comparison.baseline_seconds)} s)"
                    )
                else:
                    lines.append(
                        f"- `{result.workload}/{comparison.name}`: "
                        f"{_fmt(comparison.ratio)}x over baseline "
                        f"({_fmt(comparison.baseline_seconds)} s -> "
                        f"{_fmt(comparison.current_seconds)} s, "
                        f"tolerance {_fmt(result.tolerance)}x)"
                    )
        lines.append("")
    else:
        lines.append(f"**GATE PASSED** — all {len(ordered)} workload(s) within tolerance.")
        lines.append("")
    lines.extend(_bench_section(bench_comparisons=ordered))
    return "\n".join(lines).rstrip() + "\n"


__all__ = [
    "build_error_analysis",
    "build_bench_diagnosis",
    "NEAR_VIOLATION_THRESHOLD",
    "THRASH_FLIP_FRACTION",
]
