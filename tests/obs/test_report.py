"""Tests for the deterministic error-analysis report generator.

The report is a CI artifact that gets diffed across runs, so these tests pin
its markdown byte-for-byte on crafted histories: near-violation rounds,
controller thrash, worst-client rankings, fault timelines and the
empty-history degenerate case.
"""

from __future__ import annotations

import pytest

from repro.bench.compare import ComparisonResult, MetricComparison
from repro.fl.history import ClientRoundStat, RoundRecord, TrainingHistory
from repro.obs.report import (
    NEAR_VIOLATION_THRESHOLD,
    build_bench_diagnosis,
    build_error_analysis,
)


def make_record(round_index: int, **overrides) -> RoundRecord:
    defaults = dict(
        round_index=round_index,
        global_accuracy=0.5,
        global_loss=1.0,
        mean_client_loss=1.1,
        mean_client_accuracy=0.45,
        uplink_bytes=1_000_000,
        uplink_seconds=2.0,
        compression_seconds=0.1,
        decompression_seconds=0.05,
        train_seconds=1.0,
        validation_seconds=0.2,
        mean_compression_ratio=5.0,
    )
    defaults.update(overrides)
    return RoundRecord(**defaults)


def make_stat(client_id: int, **overrides) -> ClientRoundStat:
    defaults = dict(
        client_id=client_id,
        num_samples=32,
        train_loss=1.0,
        train_accuracy=0.4,
        train_seconds=1.0,
    )
    defaults.update(overrides)
    return ClientRoundStat(**defaults)


@pytest.fixture
def crafted_history() -> TrainingHistory:
    """Three rounds: a calm one, a near-violation, and a violation w/ faults."""
    history = TrainingHistory()
    history.add(
        make_record(
            0,
            error_bound=0.01,
            error_bound_mode="REL",
            tensor_bound_utilization={"conv.weight": 0.5, "fc.weight": 0.4},
            client_stats=[
                make_stat(0, bound_utilization=0.5, turnaround_seconds=1.0),
                make_stat(1, bound_utilization=0.4, turnaround_seconds=2.0),
            ],
            participating_clients=2,
        )
    )
    history.add(
        make_record(
            1,
            error_bound=0.02,
            error_bound_mode="REL",
            tensor_bound_utilization={"conv.weight": 0.95, "fc.weight": 0.3},
            client_stats=[
                make_stat(0, bound_utilization=0.95, turnaround_seconds=1.0),
                make_stat(
                    1,
                    bound_utilization=0.0,
                    turnaround_seconds=9.0,
                    delivered=False,
                    aggregated=False,
                    payload_nbytes=250_000,
                ),
            ],
            participating_clients=2,
            dropped_clients=1,
        )
    )
    history.add(
        make_record(
            2,
            error_bound=0.01,
            error_bound_mode="REL",
            tensor_bound_utilization={"conv.weight": 1.25, "fc.weight": 0.2},
            client_stats=[
                make_stat(0, bound_utilization=1.25, turnaround_seconds=1.0),
                make_stat(
                    1,
                    bound_utilization=0.0,
                    turnaround_seconds=0.0,
                    delivered=False,
                    aggregated=False,
                    payload_nbytes=0,
                ),
                make_stat(
                    2,
                    bound_utilization=0.3,
                    turnaround_seconds=8.0,
                    aggregated=False,
                ),
            ],
            participating_clients=3,
            dropped_clients=1,
            straggler_clients=1,
        )
    )
    return history


def test_report_is_deterministic(crafted_history):
    assert build_error_analysis(crafted_history) == build_error_analysis(crafted_history)


def test_report_ranks_near_violations_and_flags(crafted_history):
    text = build_error_analysis(crafted_history)
    lines = text.splitlines()
    table = [line for line in lines if line.startswith("| 0 |") or
             line.startswith("| 1 |") or line.startswith("| 2 |")]
    # Round 2 (violated, 1.25) must rank above round 1 (near, 0.95) above 0.
    assert table[0].startswith("| 2 | 1.25 **VIOLATED**")
    assert table[1].startswith("| 1 | 0.95 **NEAR-VIOLATION**")
    assert table[2].startswith("| 0 | 0.5 ")
    assert "`conv.weight`" in table[0]
    assert NEAR_VIOLATION_THRESHOLD == 0.9


def test_report_ranks_worst_clients(crafted_history):
    text = build_error_analysis(crafted_history)
    section = text.split("## Worst clients / links")[1].split("## ")[0]
    rows = [line for line in section.splitlines() if line.startswith("| ") and
            not line.startswith("| ---") and not line.startswith("| client")]
    # Client 1: 2 drops -> first.  Client 2: 1 deadline cut -> second.
    assert rows[0].startswith("| 1 | 3 | 2 | 0 |")
    assert rows[1].startswith("| 2 | 1 | 0 | 1 |")
    assert rows[2].startswith("| 0 | 3 | 0 | 0 |")


def test_report_fault_timeline_classifies_losses(crafted_history):
    text = build_error_analysis(crafted_history)
    section = text.split("## Fault timeline")[1]
    # Round 1 drop shipped 250 kB -> transit loss; round 2 drop shipped
    # nothing -> client failure; round 2 also cut a straggler.
    assert "- round 1: client 1 — transit loss (0.25 MB undelivered)" in section
    assert "- round 2: client 1 — client failure (0 MB undelivered)" in section
    assert "- round 2: deadline cut 1 straggler(s) (clients 2)" in section


def test_report_detects_controller_thrash():
    history = TrainingHistory()
    # Bound flip-flops every round: 4 adjustments, 3 direction flips (75%).
    for i, bound in enumerate([0.01, 0.02, 0.01, 0.02, 0.01]):
        history.add(make_record(i, error_bound=bound, error_bound_mode="REL"))
    text = build_error_analysis(history)
    assert "- bound adjustments: 4 over 5 rounds" in text
    assert "- direction flips: 3 (75% of adjustments)" in text
    assert "**THRASHING**" in text


def test_report_calls_monotonic_controller_stable():
    history = TrainingHistory()
    for i, bound in enumerate([0.04, 0.02, 0.01, 0.01, 0.005]):
        history.add(make_record(i, error_bound=bound, error_bound_mode="REL"))
    text = build_error_analysis(history)
    assert "- verdict: stable (mostly monotonic adjustment)." in text
    assert "THRASHING" not in text


def test_report_constant_bound_is_reported_as_static():
    history = TrainingHistory()
    for i in range(4):
        history.add(make_record(i, error_bound=0.01, error_bound_mode="REL"))
    text = build_error_analysis(history)
    assert "Bound held constant at 0.01 for all 4 rounds" in text


def test_empty_history_report_pinned():
    assert build_error_analysis(TrainingHistory()) == (
        "# Run error-analysis report\n"
        "\n"
        "## Run summary\n"
        "\n"
        "No rounds recorded — the run produced an empty history.\n"
        "\n"
        "## Error-bound pressure\n"
        "\n"
        "No bound-utilization data recorded (run was uncompressed, or the "
        "history predates utilization tracking).\n"
        "\n"
        "## Adaptive-controller stability\n"
        "\n"
        "Not enough bound data to assess the controller (0 round(s) with a "
        "recorded bound).\n"
        "\n"
        "## Worst clients / links\n"
        "\n"
        "No per-client stats recorded (legacy history).\n"
        "\n"
        "## Fault timeline\n"
        "\n"
        "No drops, failures or deadline cuts recorded.\n"
    )


def test_no_inputs_report():
    assert "No inputs provided" in build_error_analysis()


def test_history_save_load_round_trips_new_fields(tmp_path, crafted_history):
    path = tmp_path / "history.json"
    crafted_history.save(path)
    loaded = TrainingHistory.load(path)
    assert loaded.serialize() == crafted_history.serialize()
    assert loaded.records[2].tensor_bound_utilization == {
        "conv.weight": 1.25, "fc.weight": 0.2,
    }
    assert loaded.records[1].client_stats[0].bound_utilization == 0.95


def test_history_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"schema": "something.else", "records": []}')
    with pytest.raises(ValueError, match="not a training-history file"):
        TrainingHistory.load(path)


def _comparison(workload: str, failures: bool) -> ComparisonResult:
    result = ComparisonResult(workload=workload, tolerance=2.0)
    result.comparisons.append(
        MetricComparison(
            name="fast_metric", status="ok",
            baseline_seconds=0.01, current_seconds=0.011, ratio=1.1,
        )
    )
    if failures:
        result.comparisons.append(
            MetricComparison(
                name="slow_metric", status="regression",
                baseline_seconds=0.02, current_seconds=0.1, ratio=5.0,
            )
        )
        result.comparisons.append(
            MetricComparison(name="gone_metric", status="missing", baseline_seconds=0.03)
        )
    return result


def test_bench_diagnosis_lists_every_failure():
    text = build_bench_diagnosis([_comparison("b", True), _comparison("a", True)])
    assert "**GATE FAILED** — 4 failing metric(s) across 2 of 2 workload(s):" in text
    # Workloads sort alphabetically; failures sort by metric name.
    assert text.index("`a/gone_metric`") < text.index("`a/slow_metric`")
    assert text.index("`a/slow_metric`") < text.index("`b/gone_metric`")
    assert "5x over baseline (0.02 s -> 0.1 s, tolerance 2x)" in text
    assert "**missing** from the current run (baseline 0.03 s)" in text


def test_bench_diagnosis_passing_gate():
    text = build_bench_diagnosis([_comparison("a", False)])
    assert "**GATE PASSED** — all 1 workload(s) within tolerance." in text
    assert "FAILED" not in text


def test_error_analysis_includes_gate_section(crafted_history):
    text = build_error_analysis(
        crafted_history, bench_comparisons=[_comparison("a", True)]
    )
    assert "## Benchmark gates" in text
    assert "| a | slow_metric | 0.02 | 0.1 | 5 | REGRESSION |" in text


def test_error_analysis_includes_bench_measurements():
    document = {
        "schema": "repro.bench",
        "schema_version": 1,
        "workload": "tiny",
        "metrics": {
            "huffman": {"seconds": 0.0021, "items_per_second": 4.76e8},
            "quantize": {"seconds": 0.001, "phases": {"plan": 0.0004, "pack": 0.0006}},
        },
    }
    text = build_error_analysis(bench_reports=[document])
    assert "## Benchmark measurements" in text
    assert "| tiny | huffman | 0.0021 | 4.76e+08 items/s |" in text
    assert "| tiny | quantize | 0.001 | plan=0.0004s, pack=0.0006s |" in text


def test_metric_summary_is_deterministic():
    from repro.bench.reporter import metric_summary

    metric = {
        "seconds": 0.5,
        "items_per_second": 1000.0,
        "mb_per_second": 12.5,
        "phases": {"compress": 0.3, "decompress": 0.2},
    }
    assert metric_summary(metric) == (
        "1000 items/s; 12.5 MB/s; compress=0.3000s, decompress=0.2000s"
    )
    assert metric_summary({"seconds": 0.5}) == ""
