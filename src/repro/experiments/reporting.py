"""Result containers and plain-text table rendering for experiments.

Every experiment harness returns an :class:`ExperimentResult`: a named list
of row dictionaries plus free-form notes.  ``render_table`` pretty-prints the
rows so the example scripts and the EXPERIMENTS.md generation read the same
artefacts the benchmarks produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass
class ExperimentResult:
    """Rows plus metadata produced by one experiment harness."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-form observation."""
        self.notes.append(note)

    def column(self, key: str) -> List[object]:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching every ``column=value`` criterion."""
        matches = []
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                matches.append(row)
        return matches

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render the result as a titled plain-text table."""
        lines = [f"# {self.name}", self.description, ""]
        lines.append(render_table(self.rows, float_format=float_format))
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _format_value(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return float_format.format(value)
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Iterable[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)
    rendered = [
        {column: _format_value(row.get(column, ""), float_format) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered)) for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(row[column].ljust(widths[column]) for column in columns) for row in rendered
    ]
    return "\n".join([header, separator, *body])
