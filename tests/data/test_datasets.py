"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    PAPER_DATASET_SPECS,
    PAPER_DATASETS,
    dataset_spec,
    load_dataset,
    make_synthetic_dataset,
)
from repro.data.datasets import SyntheticImageDataset


def test_paper_dataset_specs_match_table4():
    cifar = dataset_spec("cifar10")
    assert cifar.num_samples == 60_000
    assert cifar.input_shape == (3, 32, 32)
    assert cifar.num_classes == 10

    fashion = dataset_spec("fashion-mnist")
    assert fashion.num_samples == 70_000
    assert fashion.input_shape == (1, 28, 28)
    assert fashion.num_classes == 10

    caltech = dataset_spec("caltech101")
    assert caltech.num_samples == 9_000
    assert caltech.input_shape == (3, 224, 224)
    assert caltech.num_classes == 101


def test_paper_datasets_tuple_covers_all_specs():
    assert set(PAPER_DATASETS) == set(PAPER_DATASET_SPECS)


def test_dataset_spec_row_format():
    row = dataset_spec("cifar10").as_row()
    assert row["input_dimension"] == "32 x 32"
    assert set(row) == {"dataset", "samples", "input_dimension", "classes"}


def test_dataset_spec_unknown_name():
    with pytest.raises(ValueError):
        dataset_spec("imagenet")


def test_load_dataset_respects_channels_and_classes():
    data = load_dataset("fashion-mnist", num_samples=128, image_size=16, seed=0)
    assert data.input_shape == (1, 16, 16)
    assert data.num_classes == 10
    assert len(data) == 128
    caltech = load_dataset("caltech101", num_samples=64, image_size=16, seed=0)
    assert caltech.num_classes == 101
    assert caltech.input_shape == (3, 16, 16)


def test_load_dataset_default_resolution_matches_spec():
    data = load_dataset("cifar10", num_samples=32, seed=0)
    assert data.input_shape == (3, 32, 32)


def test_dataset_generation_is_deterministic():
    a = load_dataset("cifar10", num_samples=64, image_size=8, seed=7)
    b = load_dataset("cifar10", num_samples=64, image_size=8, seed=7)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.labels, b.labels)


def test_different_seeds_produce_different_data():
    a = load_dataset("cifar10", num_samples=64, image_size=8, seed=1)
    b = load_dataset("cifar10", num_samples=64, image_size=8, seed=2)
    assert not np.array_equal(a.images, b.images)


def test_classes_are_separable_by_prototype():
    """Same-class samples must be closer to their class mean than to others."""
    data = make_synthetic_dataset("toy", 400, (3, 8, 8), num_classes=4, noise_scale=0.3, seed=0)
    means = np.stack([data.images[data.labels == c].mean(axis=0) for c in range(4)])
    correct = 0
    for image, label in zip(data.images, data.labels, strict=True):
        distances = ((means - image) ** 2).sum(axis=(1, 2, 3))
        correct += int(np.argmin(distances) == label)
    assert correct / len(data) > 0.9


def test_make_synthetic_dataset_validation():
    with pytest.raises(ValueError):
        make_synthetic_dataset("bad", 0, (3, 8, 8), 4)
    with pytest.raises(ValueError):
        make_synthetic_dataset("bad", 10, (3, 8, 8), 1)


def test_subset_and_split():
    data = load_dataset("cifar10", num_samples=100, image_size=8, seed=0)
    subset = data.subset(np.arange(10))
    assert len(subset) == 10
    train, val = data.split(0.8, seed=0)
    assert len(train) == 80
    assert len(val) == 20
    with pytest.raises(ValueError):
        data.split(1.5)


def test_dataset_getitem_and_mismatch():
    data = load_dataset("cifar10", num_samples=16, image_size=8, seed=0)
    image, label = data[3]
    assert image.shape == (3, 8, 8)
    assert 0 <= label < 10
    with pytest.raises(ValueError):
        SyntheticImageDataset("bad", np.zeros((4, 1, 2, 2)), np.zeros(3), 2)
