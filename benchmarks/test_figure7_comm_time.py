"""Benchmark regenerating Figure 7 (communication time vs error bound at 10 Mbps)."""

from __future__ import annotations

from repro.experiments import run_figure7


def test_figure7_communication_time(run_once):
    result = run_once(
        run_figure7,
        error_bounds=(1e-5, 1e-4, 1e-3, 1e-2),
        max_elements_per_tensor=150_000,
    )
    print()
    print(result.to_text())

    for model in ("alexnet", "mobilenetv2", "resnet50"):
        baseline = result.filter(model=model, compressed=False)[0]["communication_seconds"]
        rows = sorted(
            result.filter(model=model, compressed=True), key=lambda row: row["error_bound"]
        )
        times = [row["communication_seconds"] for row in rows]
        # Paper shape: every bound beats the uncompressed transfer at 10 Mbps
        # (by an order of magnitude at the recommended bound, less at the very
        # tight 1e-5 bound — compare Figure 7(b)), and looser bounds
        # communicate faster.
        assert all(time < baseline for time in times)
        recommended_time = result.filter(model=model, error_bound=1e-2)[0]["communication_seconds"]
        assert recommended_time < baseline / 2
        assert times == sorted(times, reverse=True)
        recommended = result.filter(model=model, error_bound=1e-2)[0]
        assert recommended["speedup"] > 4.0
    alexnet_speedup = result.filter(model="alexnet", error_bound=1e-2)[0]["speedup"]
    assert alexnet_speedup > 8.0  # paper: 13.26x
