"""MobileNetV2 (Sandler et al., 2018) with inverted residual bottlenecks.

The ``"paper"`` variant follows the torchvision layer plan (width multiplier
1.0, ~3.5 M parameters, ~14 MB state dict — Table III of the FedSZ paper) and
uses BatchNorm everywhere, which is what makes ~3 % of its state dict
non-weight metadata (the lowest "% lossy data" of the three models).  The
``"tiny"`` variant keeps the inverted-residual structure at a width and depth
that trains quickly in pure numpy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU6,
    Sequential,
)
from repro.nn.module import Module
from repro.utils.seeding import default_rng


def _make_divisible(value: float, divisor: int = 8) -> int:
    """Round channel counts to multiples of ``divisor`` (torchvision helper)."""
    rounded = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * value:
        rounded += divisor
    return rounded


def conv_bn_relu(
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    groups: int = 1,
    rng=None,
) -> Sequential:
    """Conv → BatchNorm → ReLU6 block."""
    padding = (kernel - 1) // 2
    return Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
            rng=rng,
        ),
        BatchNorm2d(out_channels),
        ReLU6(),
    )


class InvertedResidual(Module):
    """MobileNetV2 bottleneck: expand (1×1) → depthwise (3×3) → project (1×1)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        expand_ratio: int,
        rng=None,
    ) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {stride}")
        hidden = int(round(in_channels * expand_ratio))
        self.use_residual = stride == 1 and in_channels == out_channels

        layers: List[Module] = []
        if expand_ratio != 1:
            layers.append(conv_bn_relu(in_channels, hidden, 1, 1, rng=rng))
        layers.append(conv_bn_relu(hidden, hidden, 3, stride, groups=hidden, rng=rng))
        layers.append(
            Sequential(
                Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        )
        self.block = Sequential(*layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = self.block(inputs)
        if self.use_residual:
            return (output + inputs).astype(np.float32)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = self.block.backward(grad_output)
        if self.use_residual:
            grad_input = grad_input + grad_output
        return grad_input.astype(np.float32)


#: (expand_ratio, output_channels, repeats, first_stride) — torchvision plan.
_PAPER_SETTINGS: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]

#: Compact plan for the trainable tiny variant.
_TINY_SETTINGS: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (4, 24, 2, 2),
    (4, 32, 2, 2),
]


class MobileNetV2(Module):
    """MobileNetV2 with a configurable size variant."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        variant: str = "paper",
        width_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if variant not in {"paper", "tiny"}:
            raise ValueError(f"unknown MobileNetV2 variant {variant!r}")
        self.variant = variant
        self.num_classes = int(num_classes)
        rng = rng or default_rng()

        if variant == "paper":
            settings = _PAPER_SETTINGS
            stem_channels = _make_divisible(32 * width_multiplier)
            last_channels = _make_divisible(1280 * max(1.0, width_multiplier))
            stem_stride = 2
            dropout = 0.2
        else:
            settings = _TINY_SETTINGS
            stem_channels = 16
            last_channels = 96
            stem_stride = 1
            dropout = 0.1

        features: List[Module] = [conv_bn_relu(in_channels, stem_channels, 3, stem_stride, rng=rng)]
        channels = stem_channels
        for expand_ratio, base_channels, repeats, first_stride in settings:
            out_channels = (
                _make_divisible(base_channels * width_multiplier)
                if variant == "paper"
                else base_channels
            )
            for repeat in range(repeats):
                stride = first_stride if repeat == 0 else 1
                features.append(
                    InvertedResidual(channels, out_channels, stride, expand_ratio, rng=rng)
                )
                channels = out_channels
        features.append(conv_bn_relu(channels, last_channels, 1, 1, rng=rng))
        features.append(GlobalAvgPool2d())
        self.features = Sequential(*features)
        self.classifier = Sequential(
            Flatten(),
            Dropout(dropout, rng=rng),
            Linear(last_channels, num_classes, rng=rng),
        )

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(inputs))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_output))
