"""Tests for the experiment CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import available_experiments, build_parser, main, run_experiment


def test_available_experiments_cover_all_tables_and_figures():
    names = available_experiments()
    assert {"table1", "table2", "table3", "table4", "table5"} <= set(names)
    assert {f"figure{i}" for i in range(2, 11)} <= set(names)
    assert len(names) == 14


def test_run_experiment_quick_mode_returns_rows():
    result = run_experiment("figure3", quick=True)
    assert result.rows
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_cli_list_command(capsys):
    assert main(["list"]) == 0
    captured = capsys.readouterr()
    assert "table1" in captured.out
    assert "figure10" in captured.out


def test_cli_run_prints_table(capsys):
    assert main(["run", "table4", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "CIFAR-10" in captured.out
    assert "Caltech101" in captured.out


def test_cli_run_unknown_experiment_errors(capsys):
    assert main(["run", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_run_writes_output_file(tmp_path, capsys):
    destination = tmp_path / "figure3.txt"
    assert main(["run", "figure3", "--quick", "--output", str(destination)]) == 0
    assert destination.exists()
    assert "mobilenetv2" in destination.read_text()


def test_cli_output_directory_mode(tmp_path):
    assert main(["run", "table4", "--quick", "--output", str(tmp_path / "results")]) == 0
    assert (tmp_path / "results" / "table4.txt").exists()


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_fl_subcommand_runs_layered_runtime(capsys):
    exit_code = main(
        [
            "fl",
            "--rounds", "1",
            "--samples", "160",
            "--clients", "2",
            "--executor", "parallel",
            "--workers", "2",
            "--scheduler", "async",
            "--per-client",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "turnaround_seconds" in out  # per-client table printed


def test_cli_fl_checkpoint_crash_and_resume(tmp_path, capsys):
    """The unreliable-server scenario exits 3 at the simulated crash, leaves
    resumable snapshots behind, and --resume completes the run."""
    directory = tmp_path / "ckpts"
    common = [
        "fl",
        "--scenario", "unreliable-server",
        "--clients", "4",
        "--rounds", "4",
        "--samples", "160",
        "--checkpoint-dir", str(directory),
    ]
    assert main(common) == 3
    err = capsys.readouterr().err
    assert "simulated server crash" in err
    assert "--resume" in err
    assert any(path.suffix == ".ckpt" for path in directory.iterdir())

    assert main(common + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "accuracy" in out


def test_cli_fl_resume_requires_checkpoint_dir(capsys):
    exit_code = main(["fl", "--rounds", "1", "--samples", "160",
                      "--clients", "2", "--resume"])
    assert exit_code == 2
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_cli_fl_checkpoint_every_requires_checkpoint_dir(capsys):
    exit_code = main(["fl", "--rounds", "1", "--samples", "160",
                      "--clients", "2", "--checkpoint-every", "5"])
    assert exit_code == 2
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_cli_fl_history_out_then_report(tmp_path, capsys):
    """`fl --history-out` writes a loadable history; `report` renders it."""
    history_path = tmp_path / "history.json"
    assert main(["fl", "--model", "alexnet", "--rounds", "1", "--samples", "60",
                 "--clients", "2", "--history-out", str(history_path)]) == 0
    capsys.readouterr()
    document = json.loads(history_path.read_text())
    assert document["schema"] == "repro.history"
    assert len(document["records"]) == 1

    report_path = tmp_path / "report.md"
    assert main(["report", "--history", str(history_path),
                 "--out", str(report_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    text = report_path.read_text()
    assert text.startswith("# Run error-analysis report")
    assert "## Error-bound pressure" in text
    assert "## Worst clients / links" in text


def test_cli_fl_monitor_port_serves_live_dashboard(capsys):
    import re
    import urllib.request

    assert main(["fl", "--model", "alexnet", "--rounds", "1", "--samples", "60",
                 "--clients", "2", "--monitor-port", "0"]) == 0
    out = capsys.readouterr().out
    match = re.search(r"monitor: (http://127\.0\.0\.1:\d+)/", out)
    assert match is not None
    # The server is stopped once the run finishes.
    with pytest.raises(OSError):
        urllib.request.urlopen(f"{match.group(1)}/api/health", timeout=2)


def test_cli_report_requires_an_input(capsys):
    assert main(["report"]) == 2
    assert "--history" in capsys.readouterr().err


def test_cli_report_rejects_foreign_history(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": "nope"}')
    assert main(["report", "--history", str(bogus)]) == 2
    assert "not a training-history file" in capsys.readouterr().err


def _write_bench(path, workload, metrics):
    path.write_text(json.dumps({
        "schema": "repro.bench",
        "schema_version": 1,
        "workload": workload,
        "created_at": "2026-01-01T00:00:00+00:00",
        "environment": {},
        "config": {"warmup": 1, "repeats": 3},
        "metrics": {name: {"seconds": seconds} for name, seconds in metrics.items()},
    }))
    return path


def test_cli_bench_compare_multi_pair_collects_all_failures(tmp_path, capsys):
    """One invocation gates several workloads and reports every failing
    metric — not just the first — before the nonzero exit."""
    base_a = _write_bench(tmp_path / "base_a.json", "a", {"m1": 0.01, "m2": 0.02})
    cur_a = _write_bench(tmp_path / "cur_a.json", "a", {"m1": 0.05, "m2": 0.021})
    base_b = _write_bench(tmp_path / "base_b.json", "b", {"m3": 0.01})
    cur_b = _write_bench(tmp_path / "cur_b.json", "b", {})
    diagnosis = tmp_path / "diag.md"

    exit_code = main(["bench", "compare",
                      str(base_a), str(cur_a), str(base_b), str(cur_b),
                      "--report-out", str(diagnosis)])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "2 failing metric(s) across 2 of 2 workload(s)" in out
    assert "a/m1: 5.00x over baseline" in out
    assert "b/m3: missing from current run" in out
    # The diagnosis artifact exists despite the failing gate.
    text = diagnosis.read_text()
    assert "**GATE FAILED**" in text
    assert "`a/m1`" in text and "`b/m3`" in text


def test_cli_bench_compare_multi_pair_all_ok(tmp_path, capsys):
    base = _write_bench(tmp_path / "base.json", "a", {"m1": 0.01})
    cur = _write_bench(tmp_path / "cur.json", "a", {"m1": 0.011})
    diagnosis = tmp_path / "diag.md"
    assert main(["bench", "compare", str(base), str(cur),
                 "--report-out", str(diagnosis)]) == 0
    assert "all 1 workload(s) within tolerance" in capsys.readouterr().out
    assert "**GATE PASSED**" in diagnosis.read_text()


def test_cli_bench_compare_rejects_odd_path_count(tmp_path, capsys):
    base = _write_bench(tmp_path / "base.json", "a", {"m1": 0.01})
    assert main(["bench", "compare", str(base)]) == 2
    assert "pairs" in capsys.readouterr().err


def test_cli_bench_compare_report_includes_history(tmp_path, capsys):
    from repro.fl.history import TrainingHistory

    base = _write_bench(tmp_path / "base.json", "a", {"m1": 0.01})
    cur = _write_bench(tmp_path / "cur.json", "a", {"m1": 0.5})
    history_path = tmp_path / "history.json"
    TrainingHistory().save(history_path)
    diagnosis = tmp_path / "diag.md"
    assert main(["bench", "compare", str(base), str(cur),
                 "--history", str(history_path),
                 "--report-out", str(diagnosis)]) == 1
    text = diagnosis.read_text()
    assert text.startswith("# Bench gate diagnosis")
    assert "## Run summary" in text  # history section folded in
    assert "## Benchmark gates" in text
