"""Frozen pre-refactor EBLC codec implementations (equivalence references).

These are verbatim copies of the monolithic SZ2/SZ3/SZx/ZFP compressors as
they existed before the stage-based refactor (see
:mod:`repro.compression.stages`).  They exist for one purpose only: the
equivalence tests in ``tests/compression/test_staged_equivalence.py`` pin the
staged codecs' *decompressed outputs* bit-identically against these
references, per codec and per dtype — the same role
:mod:`repro.compression.reference` plays for the vectorised entropy-coding
hot paths.

Do not extend or optimise this module; new codec work belongs in the stage
pipeline.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

import numpy as np

from repro.compression.base import (
    ErrorBoundMode,
    LossyCompressor,
    pack_array,
    pack_sections,
    resolve_error_bound,
    unpack_array,
    unpack_sections,
)
from repro.compression.bitstream import pack_bit_flags, unpack_bit_flags
from repro.compression.entropy import EntropyBackend, decode_indices, encode_indices
from repro.compression.errors import CorruptPayloadError, InvalidErrorBoundError


# ----------------------------------------------------------------------
# Reference SZ2 (frozen copy of repro.compression.sz2)
# ----------------------------------------------------------------------

_SZ2_META_STRUCT = struct.Struct("<IQdddII")
_SZ2_FORMAT_VERSION = 2

_SZ2_MODE_LORENZO = 0
_SZ2_MODE_REGRESSION = 1


class ReferenceSZ2Compressor(LossyCompressor):
    """Blockwise hybrid Lorenzo/regression compressor (SZ2 analogue)."""

    name = "sz2"

    def __init__(
        self,
        block_size: int = 256,
        entropy_backend: EntropyBackend = "deflate",
        compression_level: int = 6,
    ) -> None:
        if block_size < 4:
            raise ValueError(f"block_size must be >= 4, got {block_size}")
        self.block_size = int(block_size)
        self.entropy_backend = entropy_backend
        self.compression_level = int(compression_level)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = self._validate_input(data)
        original_shape = data.shape
        original_dtype = data.dtype
        flat = data.astype(np.float64, copy=False).ravel()
        absolute_bound = resolve_error_bound(flat, error_bound, mode)

        if flat.size == 0 or absolute_bound <= 0:
            # Constant or empty data: fall back to storing the raw values.
            sections = {
                "meta": self._pack_meta(flat.size, absolute_bound, 0.0, original_shape, original_dtype, raw=True),
                "raw": pack_array(data),
            }
            return pack_sections(sections)

        # Anchor the quantization grid at zero: model weights are centred on
        # zero, so this keeps the quantization error itself zero-mean and makes
        # the error distribution mirror the (heavy-tailed) weight distribution,
        # which is the behaviour Section VII-D analyses.
        offset = 0.0
        bin_width = 2.0 * absolute_bound
        block = self.block_size
        padded, num_blocks = _SZ2_pad_to_blocks(flat, block)
        blocks = padded.reshape(num_blocks, block)

        # --- Lorenzo candidate -------------------------------------------------
        quantized = np.rint((blocks - offset) / bin_width).astype(np.int64)
        lorenzo_codes = np.empty_like(quantized)
        lorenzo_codes[:, 0] = quantized[:, 0]
        lorenzo_codes[:, 1:] = np.diff(quantized, axis=1)

        # --- Regression candidate ----------------------------------------------
        positions = np.arange(block, dtype=np.float64)
        position_mean = positions.mean()
        position_var = float(np.sum((positions - position_mean) ** 2))
        block_means = blocks.mean(axis=1)
        slopes = ((blocks - block_means[:, None]) @ (positions - position_mean)) / position_var
        intercepts = block_means - slopes * position_mean
        # Coefficients are stored as float32; predict with the stored precision
        # so that compression and decompression agree exactly.
        slopes32 = slopes.astype(np.float32)
        intercepts32 = intercepts.astype(np.float32)
        predictions = (
            intercepts32.astype(np.float64)[:, None]
            + slopes32.astype(np.float64)[:, None] * positions[None, :]
        )
        regression_codes = np.rint((blocks - predictions) / bin_width).astype(np.int64)

        # --- Per-block mode selection ------------------------------------------
        lorenzo_cost = _SZ2_estimate_block_bits(lorenzo_codes)
        regression_cost = _SZ2_estimate_block_bits(regression_codes) + 64.0  # two float32 coefficients
        use_regression = regression_cost < lorenzo_cost

        codes = np.where(use_regression[:, None], regression_codes, lorenzo_codes)
        coefficients = np.stack(
            [intercepts32[use_regression], slopes32[use_regression]], axis=1
        ).astype(np.float32)

        sections = {
            "meta": self._pack_meta(flat.size, absolute_bound, offset, original_shape, original_dtype, raw=False),
            "modes": pack_bit_flags(use_regression),
            "coef": pack_array(coefficients),
            "codes": encode_indices(codes.ravel(), self.entropy_backend, self.compression_level),
        }
        return pack_sections(sections)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        meta = self._unpack_meta(sections.get("meta"))
        if meta["raw"]:
            return unpack_array(sections["raw"])

        size = meta["size"]
        absolute_bound = meta["absolute_bound"]
        offset = meta["offset"]
        bin_width = 2.0 * absolute_bound
        block = meta["block_size"]
        num_blocks = -(-size // block) if size else 0

        codes = decode_indices(sections["codes"]).reshape(num_blocks, block)
        use_regression = unpack_bit_flags(sections["modes"], num_blocks)
        coefficients = unpack_array(sections["coef"]).reshape(-1, 2)

        reconstruction = np.empty((num_blocks, block), dtype=np.float64)

        lorenzo_mask = ~use_regression
        if np.any(lorenzo_mask):
            quantized = np.cumsum(codes[lorenzo_mask], axis=1)
            reconstruction[lorenzo_mask] = offset + quantized * bin_width

        if np.any(use_regression):
            positions = np.arange(block, dtype=np.float64)
            intercepts = coefficients[:, 0].astype(np.float64)
            slopes = coefficients[:, 1].astype(np.float64)
            predictions = intercepts[:, None] + slopes[:, None] * positions[None, :]
            reconstruction[use_regression] = predictions + codes[use_regression] * bin_width

        flat = reconstruction.ravel()[:size]
        return flat.astype(meta["dtype"]).reshape(meta["shape"])

    # ------------------------------------------------------------------
    # Metadata framing
    # ------------------------------------------------------------------
    def _pack_meta(
        self,
        size: int,
        absolute_bound: float,
        offset: float,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        raw: bool,
    ) -> bytes:
        dtype_name = np.dtype(dtype).str.encode("ascii")
        header = _SZ2_META_STRUCT.pack(
            _SZ2_FORMAT_VERSION,
            size,
            float(absolute_bound),
            float(offset),
            0.0,
            self.block_size,
            1 if raw else 0,
        )
        shape_blob = struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
        return header + struct.pack("<H", len(dtype_name)) + dtype_name + shape_blob

    @staticmethod
    def _unpack_meta(blob: bytes | None) -> dict:
        if not blob or len(blob) < _SZ2_META_STRUCT.size:
            raise CorruptPayloadError("SZ2 payload missing metadata section")
        version, size, absolute_bound, offset, _, block_size, raw = _SZ2_META_STRUCT.unpack_from(blob, 0)
        if version != _SZ2_FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported SZ2 payload version {version}")
        cursor = _SZ2_META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, cursor) if ndim else ()
        return {
            "size": int(size),
            "absolute_bound": float(absolute_bound),
            "offset": float(offset),
            "block_size": int(block_size),
            "raw": bool(raw),
            "dtype": dtype,
            "shape": tuple(int(s) for s in shape),
        }


def _SZ2_pad_to_blocks(flat: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """Pad a 1-D array with its last value up to a whole number of blocks."""
    num_blocks = -(-flat.size // block)
    padded_size = num_blocks * block
    if padded_size == flat.size:
        return flat, num_blocks
    padded = np.empty(padded_size, dtype=np.float64)
    padded[: flat.size] = flat
    padded[flat.size :] = flat[-1]
    return padded, num_blocks


def _SZ2_estimate_block_bits(codes: np.ndarray) -> np.ndarray:
    """Rough per-block coding cost in bits used for mode selection.

    The cost model assumes roughly ``log2(2|c| + 1) + 1`` bits per residual,
    which tracks the behaviour of the downstream entropy coder closely enough
    to pick the better predictor without actually running it per block.
    """
    magnitudes = np.abs(codes).astype(np.float64)
    return np.sum(np.log2(2.0 * magnitudes + 1.0) + 1.0, axis=1)



# ----------------------------------------------------------------------
# Reference SZ3 (frozen copy of repro.compression.sz3)
# ----------------------------------------------------------------------

_SZ3_META_STRUCT = struct.Struct("<IQddI")
_SZ3_FORMAT_VERSION = 2

#: Classic 4-point cubic interpolation weights used by SZ3's spline predictor.
_SZ3_CUBIC_WEIGHTS = (-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0)


class ReferenceSZ3Compressor(LossyCompressor):
    """Multi-level interpolation predictor compressor (SZ3 analogue)."""

    name = "sz3"

    def __init__(
        self,
        entropy_backend: EntropyBackend = "deflate",
        compression_level: int = 6,
        use_cubic: bool = True,
    ) -> None:
        self.entropy_backend = entropy_backend
        self.compression_level = int(compression_level)
        self.use_cubic = bool(use_cubic)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = self._validate_input(data)
        original_shape = data.shape
        original_dtype = data.dtype
        flat = data.astype(np.float64, copy=False).ravel()
        absolute_bound = resolve_error_bound(flat, error_bound, mode)

        if flat.size == 0 or absolute_bound <= 0:
            sections = {
                "meta": self._pack_meta(flat.size, absolute_bound, original_shape, original_dtype, raw=True),
                "raw": pack_array(data),
            }
            return pack_sections(sections)

        bin_width = 2.0 * absolute_bound
        reconstruction = np.zeros_like(flat)
        codes: List[np.ndarray] = []

        # Anchor point: the first element is quantized against zero.
        anchor_index = np.rint(flat[0] / bin_width).astype(np.int64)
        reconstruction[0] = anchor_index * bin_width
        codes.append(np.atleast_1d(anchor_index))

        for stride in _SZ3_interpolation_strides(flat.size):
            targets = np.arange(stride, flat.size, 2 * stride)
            if targets.size == 0:
                continue
            predictions = _SZ3_predict(reconstruction, targets, stride, flat.size, self.use_cubic)
            level_codes = np.rint((flat[targets] - predictions) / bin_width).astype(np.int64)
            reconstruction[targets] = predictions + level_codes * bin_width
            codes.append(level_codes)

        all_codes = np.concatenate(codes)
        sections = {
            "meta": self._pack_meta(flat.size, absolute_bound, original_shape, original_dtype, raw=False),
            "codes": encode_indices(all_codes, self.entropy_backend, self.compression_level),
        }
        return pack_sections(sections)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        meta = self._unpack_meta(sections.get("meta"))
        if meta["raw"]:
            return unpack_array(sections["raw"])

        size = meta["size"]
        absolute_bound = meta["absolute_bound"]
        bin_width = 2.0 * absolute_bound
        use_cubic = meta["use_cubic"]

        all_codes = decode_indices(sections["codes"])
        reconstruction = np.zeros(size, dtype=np.float64)
        cursor = 0

        if all_codes.size == 0:
            raise CorruptPayloadError("SZ3 payload holds no quantization codes")
        reconstruction[0] = all_codes[0] * bin_width
        cursor = 1

        for stride in _SZ3_interpolation_strides(size):
            targets = np.arange(stride, size, 2 * stride)
            if targets.size == 0:
                continue
            level_codes = all_codes[cursor : cursor + targets.size]
            if level_codes.size != targets.size:
                raise CorruptPayloadError("SZ3 payload truncated: missing level codes")
            cursor += targets.size
            predictions = _SZ3_predict(reconstruction, targets, stride, size, use_cubic)
            reconstruction[targets] = predictions + level_codes * bin_width

        return reconstruction.astype(meta["dtype"]).reshape(meta["shape"])

    # ------------------------------------------------------------------
    # Metadata framing
    # ------------------------------------------------------------------
    def _pack_meta(
        self,
        size: int,
        absolute_bound: float,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        raw: bool,
    ) -> bytes:
        flags = (1 if raw else 0) | ((1 if self.use_cubic else 0) << 1)
        dtype_name = np.dtype(dtype).str.encode("ascii")
        header = _SZ3_META_STRUCT.pack(_SZ3_FORMAT_VERSION, size, float(absolute_bound), 0.0, flags)
        shape_blob = struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
        return header + struct.pack("<H", len(dtype_name)) + dtype_name + shape_blob

    @staticmethod
    def _unpack_meta(blob: bytes | None) -> dict:
        if not blob or len(blob) < _SZ3_META_STRUCT.size:
            raise CorruptPayloadError("SZ3 payload missing metadata section")
        version, size, absolute_bound, _, flags = _SZ3_META_STRUCT.unpack_from(blob, 0)
        if version != _SZ3_FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported SZ3 payload version {version}")
        cursor = _SZ3_META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, cursor) if ndim else ()
        return {
            "size": int(size),
            "absolute_bound": float(absolute_bound),
            "raw": bool(flags & 1),
            "use_cubic": bool(flags & 2),
            "dtype": dtype,
            "shape": tuple(int(s) for s in shape),
        }


def _SZ3_interpolation_strides(size: int) -> List[int]:
    """Strides processed from coarsest to finest for an array of ``size``."""
    if size <= 1:
        return []
    strides: List[int] = []
    stride = 1
    while stride < size:
        strides.append(stride)
        stride *= 2
    return list(reversed(strides))


def _SZ3_predict(
    reconstruction: np.ndarray,
    targets: np.ndarray,
    stride: int,
    size: int,
    use_cubic: bool,
) -> np.ndarray:
    """Interpolate target points from already-reconstructed neighbours.

    Left neighbours at ``target - stride`` always exist (they belong to a
    coarser level).  Right neighbours at ``target + stride`` exist unless the
    target sits near the end of the array; in that case previous-value
    prediction is used, matching SZ3's boundary fallback.
    """
    left = reconstruction[targets - stride]
    right_index = targets + stride
    has_right = right_index < size
    right = np.where(has_right, reconstruction[np.minimum(right_index, size - 1)], left)
    predictions = np.where(has_right, 0.5 * (left + right), left)

    if use_cubic:
        far_left_index = targets - 3 * stride
        far_right_index = targets + 3 * stride
        has_cubic = (far_left_index >= 0) & (far_right_index < size) & has_right
        if np.any(has_cubic):
            w0, w1, w2, w3 = _SZ3_CUBIC_WEIGHTS
            cubic = (
                w0 * reconstruction[np.maximum(far_left_index, 0)]
                + w1 * left
                + w2 * right
                + w3 * reconstruction[np.minimum(far_right_index, size - 1)]
            )
            predictions = np.where(has_cubic, cubic, predictions)
    return predictions



# ----------------------------------------------------------------------
# Reference SZx (frozen copy of repro.compression.szx)
# ----------------------------------------------------------------------

_SZX_META_STRUCT = struct.Struct("<IQdII")
_SZX_FORMAT_VERSION = 2


class ReferenceSZxCompressor(LossyCompressor):
    """Constant-block + bit-truncation compressor (SZx analogue)."""

    name = "szx"

    def __init__(self, block_size: int = 128) -> None:
        if block_size < 4:
            raise ValueError(f"block_size must be >= 4, got {block_size}")
        self.block_size = int(block_size)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = self._validate_input(data)
        original_shape = data.shape
        original_dtype = data.dtype
        flat = data.astype(np.float64, copy=False).ravel()
        absolute_bound = resolve_error_bound(flat, error_bound, mode)

        if flat.size == 0 or absolute_bound <= 0:
            sections = {
                "meta": self._pack_meta(flat.size, absolute_bound, original_shape, original_dtype, raw=True),
                "raw": pack_array(data),
            }
            return pack_sections(sections)

        block = self.block_size
        padded, num_blocks = _SZX_pad_to_blocks(flat, block)
        blocks = padded.reshape(num_blocks, block)

        # Block means are stored as float32, so compute constancy against the
        # value that will actually be reconstructed.
        means = blocks.mean(axis=1).astype(np.float32).astype(np.float64)
        deviations = blocks - means[:, None]
        is_constant = np.max(np.abs(deviations), axis=1) <= absolute_bound

        # Non-constant blocks: truncate |x - mean| / ε toward zero, keep a sign
        # bit and a per-block fixed bit width.
        magnitudes = np.floor(np.abs(deviations) / absolute_bound).astype(np.uint64)
        signs = (deviations < 0).astype(np.uint8)
        block_max = magnitudes.max(axis=1)
        widths = np.zeros(num_blocks, dtype=np.uint8)
        nonconstant = ~is_constant
        if np.any(nonconstant):
            widths[nonconstant] = np.maximum(
                1, np.ceil(np.log2(block_max[nonconstant].astype(np.float64) + 1.0)).astype(np.uint8)
            )

        # Blocks are stored grouped by bit width (ascending) so that each group
        # can be packed and unpacked with a single vectorised operation instead
        # of a per-block Python loop.  The decompressor reconstructs the same
        # grouping from the ``widths`` array.
        payload_parts = []
        for width in np.unique(widths[nonconstant]):
            group = nonconstant & (widths == width)
            packed = _SZX_pack_group_values(magnitudes[group], signs[group], int(width))
            payload_parts.append(packed)
        values_blob = b"".join(payload_parts)

        sections = {
            "meta": self._pack_meta(flat.size, absolute_bound, original_shape, original_dtype, raw=False),
            "flags": pack_bit_flags(is_constant),
            "means": pack_array(means.astype(np.float32)),
            "widths": pack_array(widths),
            "values": values_blob,
        }
        return pack_sections(sections)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        meta = self._unpack_meta(sections.get("meta"))
        if meta["raw"]:
            return unpack_array(sections["raw"])

        size = meta["size"]
        absolute_bound = meta["absolute_bound"]
        block = meta["block_size"]
        num_blocks = -(-size // block)

        is_constant = unpack_bit_flags(sections["flags"], num_blocks)
        means = unpack_array(sections["means"]).astype(np.float64)
        widths = unpack_array(sections["widths"]).astype(np.int64)
        values_blob = sections["values"]

        reconstruction = np.repeat(means[:, None], block, axis=1)

        cursor = 0
        nonconstant = ~is_constant
        for width in np.unique(widths[nonconstant]):
            group = nonconstant & (widths == width)
            group_count = int(np.count_nonzero(group))
            nbytes = _SZX_packed_group_nbytes(group_count, block, int(width))
            chunk = values_blob[cursor : cursor + nbytes]
            if len(chunk) != nbytes:
                raise CorruptPayloadError("SZx payload truncated inside value blocks")
            cursor += nbytes
            magnitudes, signs = _SZX_unpack_group_values(chunk, group_count, block, int(width))
            deviations = magnitudes.astype(np.float64) * absolute_bound
            deviations[signs.astype(bool)] *= -1.0
            reconstruction[group] = means[group, None] + deviations

        flat = reconstruction.ravel()[:size]
        return flat.astype(meta["dtype"]).reshape(meta["shape"])

    # ------------------------------------------------------------------
    # Metadata framing
    # ------------------------------------------------------------------
    def _pack_meta(
        self,
        size: int,
        absolute_bound: float,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        raw: bool,
    ) -> bytes:
        dtype_name = np.dtype(dtype).str.encode("ascii")
        header = _SZX_META_STRUCT.pack(
            _SZX_FORMAT_VERSION, size, float(absolute_bound), self.block_size, 1 if raw else 0
        )
        shape_blob = struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
        return header + struct.pack("<H", len(dtype_name)) + dtype_name + shape_blob

    @staticmethod
    def _unpack_meta(blob: bytes | None) -> dict:
        if not blob or len(blob) < _SZX_META_STRUCT.size:
            raise CorruptPayloadError("SZx payload missing metadata section")
        version, size, absolute_bound, block_size, raw = _SZX_META_STRUCT.unpack_from(blob, 0)
        if version != _SZX_FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported SZx payload version {version}")
        cursor = _SZX_META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, cursor) if ndim else ()
        return {
            "size": int(size),
            "absolute_bound": float(absolute_bound),
            "block_size": int(block_size),
            "raw": bool(raw),
            "dtype": dtype,
            "shape": tuple(int(s) for s in shape),
        }


def _SZX_pad_to_blocks(flat: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """Pad a 1-D array with its last value up to a whole number of blocks."""
    num_blocks = -(-flat.size // block)
    padded_size = num_blocks * block
    if padded_size == flat.size:
        return flat, num_blocks
    padded = np.empty(padded_size, dtype=np.float64)
    padded[: flat.size] = flat
    padded[flat.size :] = flat[-1]
    return padded, num_blocks


def _SZX_packed_group_nbytes(group_count: int, block: int, width: int) -> int:
    """Bytes used to store a group of non-constant blocks at the same width."""
    total_bits = group_count * block * (width + 1)
    return (total_bits + 7) // 8


def _SZX_pack_group_values(magnitudes: np.ndarray, signs: np.ndarray, width: int) -> bytes:
    """Bit-pack sign + fixed-width magnitude for a group of blocks."""
    group_count, block = magnitudes.shape
    bits = np.zeros((group_count, block, width + 1), dtype=np.uint8)
    bits[:, :, 0] = signs
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits[:, :, 1:] = (
        (magnitudes[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def _SZX_unpack_group_values(
    chunk: bytes, group_count: int, block: int, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`_SZX_pack_group_values`."""
    total_bits = group_count * block * (width + 1)
    bits = np.unpackbits(np.frombuffer(chunk, dtype=np.uint8))[:total_bits]
    bits = bits.reshape(group_count, block, width + 1)
    signs = bits[:, :, 0]
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    magnitudes = bits[:, :, 1:].astype(np.uint64) @ weights
    return magnitudes, signs



# ----------------------------------------------------------------------
# Reference ZFP (frozen copy of repro.compression.zfp)
# ----------------------------------------------------------------------

_ZFP_META_STRUCT = struct.Struct("<IQIII")
_ZFP_FORMAT_VERSION = 2
_ZFP_BLOCK = 4

#: Orthonormal 4-point DCT-II matrix (rows are basis vectors).
_ZFP_DCT_MATRIX = np.array(
    [
        [0.5, 0.5, 0.5, 0.5],
        [0.6532814824381883, 0.27059805007309845, -0.27059805007309845, -0.6532814824381883],
        [0.5, -0.5, -0.5, 0.5],
        [0.27059805007309845, -0.6532814824381883, 0.6532814824381883, -0.27059805007309845],
    ],
    dtype=np.float64,
)


def _ZFPprecision_for_relative_bound(relative_bound: float) -> int:
    """Map a relative error bound onto a fixed coefficient precision.

    ``precision = ceil(log2(1 / rel)) + 1`` clamped to [2, 30], mirroring how
    the paper picks ZFP's fixed-precision mode as "the closest analogous
    option" to a relative bound.
    """
    if relative_bound <= 0 or not np.isfinite(relative_bound):
        raise InvalidErrorBoundError(
            f"relative bound must be positive and finite, got {relative_bound}"
        )
    precision = int(np.ceil(np.log2(1.0 / relative_bound))) + 1
    return int(np.clip(precision, 2, 30))


class ReferenceZFPCompressor(LossyCompressor):
    """Block transform + fixed-precision coefficient coding (ZFP analogue)."""

    name = "zfp"

    def __init__(self, compression_level: int = 6) -> None:
        self.compression_level = int(compression_level)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = self._validate_input(data)
        original_shape = data.shape
        original_dtype = data.dtype
        flat = data.astype(np.float64, copy=False).ravel()

        if mode == ErrorBoundMode.REL:
            precision = _ZFPprecision_for_relative_bound(error_bound)
        else:
            # Absolute bounds are translated against the data range so that a
            # tighter bound still yields more retained bits.
            finite_range = float(flat.max() - flat.min()) if flat.size else 1.0
            relative = error_bound / finite_range if finite_range > 0 else error_bound
            precision = _ZFPprecision_for_relative_bound(max(relative, 1e-9))

        if flat.size == 0:
            sections = {
                "meta": self._pack_meta(flat.size, precision, original_shape, original_dtype, raw=True),
                "raw": pack_array(data),
            }
            return pack_sections(sections)

        padded, num_blocks = _ZFP_pad_to_blocks(flat, _ZFP_BLOCK)
        blocks = padded.reshape(num_blocks, _ZFP_BLOCK)

        # Block-floating-point: express every value as mantissa * 2^emax where
        # emax is the block's largest exponent.
        max_magnitude = np.max(np.abs(blocks), axis=1)
        emax = np.zeros(num_blocks, dtype=np.int32)
        nonzero = max_magnitude > 0
        emax[nonzero] = np.ceil(np.log2(max_magnitude[nonzero])).astype(np.int32)
        scale = np.ldexp(1.0, -emax).astype(np.float64)
        normalized = blocks * scale[:, None]  # values in [-1, 1]

        coefficients = normalized @ _ZFP_DCT_MATRIX.T  # orthonormal, stays within [-2, 2]

        # Sign-magnitude fixed-precision quantization of coefficients.
        quantization_scale = float(1 << (precision - 1))
        quantized = np.rint(coefficients * quantization_scale).astype(np.int64)
        limit = (1 << (precision + 1)) - 1
        quantized = np.clip(quantized, -limit, limit)
        signs = (quantized < 0).astype(np.uint8)
        magnitudes = np.abs(quantized).astype(np.uint64)

        width = precision + 2  # sign-free magnitude can reach 2 * 2^(precision-1)
        bits = np.zeros((num_blocks, _ZFP_BLOCK, width + 1), dtype=np.uint8)
        bits[:, :, 0] = signs
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits[:, :, 1:] = (
            (magnitudes[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
        ).astype(np.uint8)
        coefficient_blob = np.packbits(bits.ravel()).tobytes()

        sections = {
            "meta": self._pack_meta(flat.size, precision, original_shape, original_dtype, raw=False),
            "emax": zlib.compress(emax.astype("<i2").tobytes(), self.compression_level),
            "coef": zlib.compress(coefficient_blob, self.compression_level),
        }
        return pack_sections(sections)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        meta = self._unpack_meta(sections.get("meta"))
        if meta["raw"]:
            return unpack_array(sections["raw"])

        size = meta["size"]
        precision = meta["precision"]
        num_blocks = -(-size // _ZFP_BLOCK)
        width = precision + 2

        emax = np.frombuffer(zlib.decompress(sections["emax"]), dtype="<i2").astype(np.int32)
        if emax.size != num_blocks:
            raise CorruptPayloadError("ZFP payload exponent count mismatch")

        coefficient_blob = zlib.decompress(sections["coef"])
        total_bits = num_blocks * _ZFP_BLOCK * (width + 1)
        bits = np.unpackbits(np.frombuffer(coefficient_blob, dtype=np.uint8))[:total_bits]
        bits = bits.reshape(num_blocks, _ZFP_BLOCK, width + 1)
        signs = bits[:, :, 0].astype(bool)
        weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
        magnitudes = (bits[:, :, 1:].astype(np.uint64) @ weights).astype(np.float64)
        quantized = np.where(signs, -magnitudes, magnitudes)

        quantization_scale = float(1 << (precision - 1))
        coefficients = quantized / quantization_scale
        normalized = coefficients @ _ZFP_DCT_MATRIX  # inverse of an orthonormal transform
        scale = np.ldexp(1.0, emax).astype(np.float64)
        blocks = normalized * scale[:, None]

        flat = blocks.ravel()[:size]
        return flat.astype(meta["dtype"]).reshape(meta["shape"])

    # ------------------------------------------------------------------
    # Metadata framing
    # ------------------------------------------------------------------
    def _pack_meta(
        self,
        size: int,
        precision: int,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        raw: bool,
    ) -> bytes:
        dtype_name = np.dtype(dtype).str.encode("ascii")
        header = _ZFP_META_STRUCT.pack(_ZFP_FORMAT_VERSION, size, precision, _ZFP_BLOCK, 1 if raw else 0)
        shape_blob = struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
        return header + struct.pack("<H", len(dtype_name)) + dtype_name + shape_blob

    @staticmethod
    def _unpack_meta(blob: bytes | None) -> dict:
        if not blob or len(blob) < _ZFP_META_STRUCT.size:
            raise CorruptPayloadError("ZFP payload missing metadata section")
        version, size, precision, block, raw = _ZFP_META_STRUCT.unpack_from(blob, 0)
        if version != _ZFP_FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported ZFP payload version {version}")
        if block != _ZFP_BLOCK:
            raise CorruptPayloadError(f"unexpected ZFP block size {block}")
        cursor = _ZFP_META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, cursor) if ndim else ()
        return {
            "size": int(size),
            "precision": int(precision),
            "raw": bool(raw),
            "dtype": dtype,
            "shape": tuple(int(s) for s in shape),
        }


def _ZFP_pad_to_blocks(flat: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """Pad a 1-D array with zeros up to a whole number of blocks."""
    num_blocks = -(-flat.size // block)
    padded_size = num_blocks * block
    if padded_size == flat.size:
        return flat, num_blocks
    padded = np.zeros(padded_size, dtype=np.float64)
    padded[: flat.size] = flat
    return padded, num_blocks


