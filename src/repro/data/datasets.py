"""Synthetic image-classification datasets.

The paper evaluates on CIFAR-10, Fashion-MNIST and Caltech101 (Table IV).
Those datasets cannot be downloaded in this offline environment, so the
module provides deterministic synthetic stand-ins that preserve the
properties the experiments rely on:

* identical input dimensions and class counts (32×32×3 / 10, 28×28×1 / 10,
  224×224×3 / 101 — the Caltech substitute is also offered at a reduced
  resolution for the trainable tiny models);
* class structure that a convolutional network genuinely has to learn
  (class-conditional Gaussian prototypes with localised spatial structure and
  per-sample noise), so that accuracy is a meaningful, monotone casualty of
  weight corruption;
* per-client heterogeneity hooks via the partitioning utilities.

Every dataset is generated from an explicit seed, making federated runs
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset (the columns of Table IV)."""

    name: str
    num_samples: int
    input_shape: Tuple[int, int, int]  # (channels, height, width)
    num_classes: int

    @property
    def input_dimension(self) -> str:
        """Human-readable spatial dimension, e.g. ``"32 x 32"``."""
        return f"{self.input_shape[1]} x {self.input_shape[2]}"

    def as_row(self) -> Dict[str, object]:
        """Row representation matching Table IV."""
        return {
            "dataset": self.name,
            "samples": self.num_samples,
            "input_dimension": self.input_dimension,
            "classes": self.num_classes,
        }


#: Paper-scale dataset characteristics (Table IV).
PAPER_DATASET_SPECS: Dict[str, DatasetSpec] = {
    "cifar10": DatasetSpec("CIFAR-10", 60_000, (3, 32, 32), 10),
    "fashion-mnist": DatasetSpec("Fashion-MNIST", 70_000, (1, 28, 28), 10),
    "caltech101": DatasetSpec("Caltech101", 9_000, (3, 224, 224), 101),
}

#: Datasets evaluated in the paper, in Table V column order.
PAPER_DATASETS = ("cifar10", "caltech101", "fashion-mnist")


class SyntheticImageDataset:
    """In-memory labelled image dataset with class-prototype structure."""

    def __init__(
        self,
        name: str,
        images: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
    ) -> None:
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images and labels disagree on sample count: {images.shape[0]} vs {labels.shape[0]}"
            )
        self.name = name
        self.images = images.astype(np.float32)
        self.labels = labels.astype(np.int64)
        self.num_classes = int(num_classes)

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """(channels, height, width) of one sample."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray) -> "SyntheticImageDataset":
        """A view-like dataset restricted to ``indices`` (copies the data)."""
        indices = np.asarray(indices, dtype=np.int64)
        return SyntheticImageDataset(
            self.name, self.images[indices], self.labels[indices], self.num_classes
        )

    def split(self, train_fraction: float, seed: int = 0) -> Tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Random train/validation split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])


def _generate_class_prototypes(
    rng: np.random.Generator,
    num_classes: int,
    input_shape: Tuple[int, int, int],
    prototype_scale: float,
) -> np.ndarray:
    """Smooth per-class prototype images with localised structure.

    Prototypes are low-frequency random fields (random coefficients on a small
    set of 2-D cosine bases), which gives each class a distinct spatial
    signature a convolution can pick up.
    """
    channels, height, width = input_shape
    y = np.linspace(0, np.pi, height)[:, None]
    x = np.linspace(0, np.pi, width)[None, :]
    bases = []
    for fy in range(3):
        for fx in range(3):
            bases.append(np.cos(fy * y) * np.cos(fx * x))
    bases = np.stack(bases)  # (9, H, W)
    coefficients = rng.normal(0.0, prototype_scale, size=(num_classes, channels, bases.shape[0]))
    prototypes = np.einsum("kcb,bhw->kchw", coefficients, bases)
    return prototypes.astype(np.float32)


def make_synthetic_dataset(
    name: str,
    num_samples: int,
    input_shape: Tuple[int, int, int],
    num_classes: int,
    noise_scale: float = 0.6,
    prototype_scale: float = 1.0,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Build a synthetic dataset with class-conditional Gaussian structure."""
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if num_classes < 2:
        raise ValueError(f"num_classes must be at least 2, got {num_classes}")
    rng = np.random.default_rng(seed)
    prototypes = _generate_class_prototypes(rng, num_classes, input_shape, prototype_scale)
    labels = rng.integers(0, num_classes, size=num_samples)
    noise = rng.normal(0.0, noise_scale, size=(num_samples, *input_shape)).astype(np.float32)
    images = prototypes[labels] + noise
    return SyntheticImageDataset(name, images, labels, num_classes)


def load_dataset(
    name: str,
    num_samples: int = 2_000,
    image_size: int | None = None,
    noise_scale: float = 0.6,
    prototype_scale: float = 1.0,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Load a synthetic stand-in for one of the paper's datasets.

    ``image_size`` optionally overrides the spatial resolution (the federated
    training experiments use 16×16 so the pure-numpy models stay fast); the
    channel count and class count always follow the real dataset.
    ``noise_scale`` and ``prototype_scale`` control task difficulty — a lower
    prototype scale shrinks the class margins so that accuracy is a sensitive
    function of weight perturbation, which the accuracy-versus-error-bound
    experiments rely on.
    """
    key = name.lower().replace("_", "-")
    if key not in PAPER_DATASET_SPECS:
        raise ValueError(f"unknown dataset {name!r}; available: {sorted(PAPER_DATASET_SPECS)}")
    spec = PAPER_DATASET_SPECS[key]
    channels, height, width = spec.input_shape
    if image_size is not None:
        height = width = int(image_size)
    return make_synthetic_dataset(
        name=spec.name,
        num_samples=num_samples,
        input_shape=(channels, height, width),
        num_classes=spec.num_classes,
        noise_scale=noise_scale,
        prototype_scale=prototype_scale,
        seed=seed,
    )


def dataset_spec(name: str) -> DatasetSpec:
    """Return the paper-scale :class:`DatasetSpec` for ``name``."""
    key = name.lower().replace("_", "-")
    if key not in PAPER_DATASET_SPECS:
        raise ValueError(f"unknown dataset {name!r}; available: {sorted(PAPER_DATASET_SPECS)}")
    return PAPER_DATASET_SPECS[key]
