"""Extraction and characterisation of FedSZ compression errors.

Bridges the compression pipeline and the privacy analysis: run a state dict
through FedSZ at one or more error bounds, collect the element-wise
reconstruction errors of the lossy partition, and summarise their
distribution (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.compression.base import ErrorBoundMode
from repro.compression.registry import get_lossy_compressor
from repro.core.config import FedSZConfig
from repro.core.fedsz import FedSZCompressor
from repro.privacy.laplace import LaplaceFit, error_histogram, fit_laplace


@dataclass
class ErrorDistribution:
    """Error sample for one (compressor, error bound) configuration."""

    compressor: str
    error_bound: float
    errors: np.ndarray
    fit: LaplaceFit

    @property
    def max_abs_error(self) -> float:
        """Largest observed absolute error."""
        if self.errors.size == 0:
            return 0.0
        return float(np.max(np.abs(self.errors)))

    def histogram(self, bins: int = 61) -> Dict[str, np.ndarray]:
        """Density histogram of the error sample."""
        return error_histogram(self.errors, bins=bins)

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabulation."""
        return {
            "compressor": self.compressor,
            "error_bound": self.error_bound,
            "laplace_scale": self.fit.scale,
            "ks_laplace": self.fit.ks_statistic,
            "ks_normal": self.fit.ks_statistic_normal,
            "max_abs_error": self.max_abs_error,
        }


def compression_errors_for_array(
    values: np.ndarray,
    error_bound: float,
    compressor: str = "sz2",
    mode: ErrorBoundMode = ErrorBoundMode.REL,
) -> np.ndarray:
    """Element-wise reconstruction error of one flat array."""
    codec = get_lossy_compressor(compressor)
    values = np.asarray(values, dtype=np.float32)
    restored = codec.decompress(codec.compress(values, error_bound, mode))
    return restored.astype(np.float64) - values.astype(np.float64)


def analyze_array_errors(
    values: np.ndarray,
    error_bounds: Sequence[float],
    compressor: str = "sz2",
    mode: ErrorBoundMode = ErrorBoundMode.REL,
) -> List[ErrorDistribution]:
    """Error distributions of one array across several error bounds (Figure 10)."""
    distributions = []
    for bound in error_bounds:
        errors = compression_errors_for_array(values, bound, compressor, mode)
        distributions.append(
            ErrorDistribution(
                compressor=compressor,
                error_bound=float(bound),
                errors=errors,
                fit=fit_laplace(errors),
            )
        )
    return distributions


def analyze_state_dict_errors(
    state_dict: Mapping[str, np.ndarray],
    error_bound: float = 1e-2,
    compressor: str = "sz2",
) -> ErrorDistribution:
    """Error distribution of a full FedSZ round trip over a model state dict."""
    codec = FedSZCompressor.from_config(
        FedSZConfig(error_bound=error_bound, lossy_compressor=compressor)
    )
    restored = codec.decompress(codec.compress(state_dict))
    errors = codec.compression_errors(state_dict, restored)
    if errors.size == 0:
        errors = np.zeros(16, dtype=np.float64)
    return ErrorDistribution(
        compressor=compressor,
        error_bound=float(error_bound),
        errors=errors,
        fit=fit_laplace(errors),
    )
