"""Name-based registries for lossy and lossless compressors.

The FedSZ pipeline, the experiment harnesses and the examples all refer to
compressors by the short names used in the paper ("sz2", "sz3", "szx", "zfp",
"blosc-lz", "gzip", ...).  The registries here map those names onto factory
callables so that new codecs can be plugged in without touching the callers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compression.base import LosslessCompressor, LossyCompressor
from repro.compression.errors import UnknownCompressorError
from repro.compression.stages import PredictorStage, StagedCompressor
from repro.compression.lossless import (
    BloscLZCompressor,
    GzipCompressor,
    XzCompressor,
    ZlibCompressor,
    ZstdCompressor,
)
from repro.compression.sz2 import SZ2Compressor
from repro.compression.sz3 import SZ3Compressor
from repro.compression.szx import SZxCompressor
from repro.compression.zfp import ZFPCompressor

_LOSSY_FACTORIES: Dict[str, Callable[[], LossyCompressor]] = {}
_LOSSLESS_FACTORIES: Dict[str, Callable[[], LosslessCompressor]] = {}


def register_lossy(name: str, factory: Callable[[], LossyCompressor]) -> None:
    """Register (or replace) a lossy compressor factory under ``name``."""
    _LOSSY_FACTORIES[name.lower()] = factory


def register_lossless(name: str, factory: Callable[[], LosslessCompressor]) -> None:
    """Register (or replace) a lossless compressor factory under ``name``."""
    _LOSSLESS_FACTORIES[name.lower()] = factory


def register_predictor(
    name: str,
    predictor_factory: Callable[[], PredictorStage],
    strictly_bounded: bool = True,
) -> None:
    """Register a lossy codec from a bare :class:`PredictorStage` factory.

    This is the one-file-codec path the stage architecture exists for: write a
    predictor stage (encode/decode over flat float64 arrays) and register it —
    validation, bound resolution, the raw fallback, metadata framing and the
    ``LossyCompressor`` interface are supplied by a generated
    :class:`StagedCompressor` subclass.
    """
    codec_name = name.lower()

    class _PredictorBackedCompressor(StagedCompressor):
        def _predictor(self) -> PredictorStage:
            return predictor_factory()

    _PredictorBackedCompressor.name = codec_name
    _PredictorBackedCompressor.strictly_bounded = bool(strictly_bounded)
    _PredictorBackedCompressor.__name__ = f"Staged_{codec_name}_Compressor"
    register_lossy(codec_name, _PredictorBackedCompressor)


def get_lossy_compressor(name: str) -> LossyCompressor:
    """Instantiate the lossy compressor registered under ``name``."""
    try:
        factory = _LOSSY_FACTORIES[name.lower()]
    except KeyError:
        raise UnknownCompressorError(
            f"unknown lossy compressor {name!r}; available: {sorted(_LOSSY_FACTORIES)}"
        ) from None
    return factory()


def get_lossless_compressor(name: str) -> LosslessCompressor:
    """Instantiate the lossless compressor registered under ``name``."""
    try:
        factory = _LOSSLESS_FACTORIES[name.lower()]
    except KeyError:
        raise UnknownCompressorError(
            f"unknown lossless compressor {name!r}; available: {sorted(_LOSSLESS_FACTORIES)}"
        ) from None
    return factory()


def available_lossy_compressors() -> List[str]:
    """Names of every registered lossy compressor."""
    return sorted(_LOSSY_FACTORIES)


def available_lossless_compressors() -> List[str]:
    """Names of every registered lossless compressor."""
    return sorted(_LOSSLESS_FACTORIES)


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
register_lossy("sz2", SZ2Compressor)
register_lossy("sz3", SZ3Compressor)
register_lossy("szx", SZxCompressor)
register_lossy("zfp", ZFPCompressor)

register_lossless("blosc-lz", BloscLZCompressor)
register_lossless("zstd", ZstdCompressor)
register_lossless("zlib", ZlibCompressor)
register_lossless("gzip", GzipCompressor)
register_lossless("xz", XzCompressor)
