"""DET005 — interprocedural RNG/clock taint into deterministic state.

DET002 catches ``record.uplink_seconds = time.perf_counter() - start`` when
source and sink share a function.  It cannot catch the same flow split
across a helper (``elapsed()`` returning a measured duration, a caller
storing it), across modules, or laundered through a parameter
(``def store(rec, v): rec.uplink_seconds = v``).  DET005 closes those routes
using the project-wide taint facts:

* **interprocedural sinks** — a deterministic-field or
  ``checkpoint_state`` sink whose atoms ground out in a timing/entropy
  source *through a resolved call* (``call:Q`` where ``Q``'s return taint
  reaches ``time``/``entropy`` in the fixpoint).  Direct same-function
  flows into named fields stay DET002's finding so nothing double-reports;
  checkpoint-state sinks have no shallow rule, so direct atoms report here.
* **parameter sinks** — a sink fed from a bare parameter makes the function
  a sink on that parameter; every resolved call site passing a
  tainted-grounding argument for it is a finding *at the call site* (where
  the fix belongs).
* **clock-value bindings** — referencing a banned wall clock as a *value*
  (``self._clock = time.time``) defeats DET002's call-site check; the
  binding itself is flagged.  The sanctioned measurement seam
  (``utils/timing.py``) is exempt, same as DET002.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionFact, ProjectIndex
from repro.analysis.dataflow import ground_sources
from repro.analysis.deep import DeepRule, register_deep_rule
from repro.analysis.engine import Finding

#: The one module allowed to touch clocks directly (mirrors DET002).
_EXEMPT_SUFFIX = "utils/timing.py"

_SOURCE_LABEL = {"time": "a wall-clock/perf-counter value", "entropy": "host entropy"}


@register_deep_rule
class InterproceduralTaintRule(DeepRule):
    rule_id = "DET005"
    summary = "no RNG/clock taint reaches deterministic fields across calls"
    invariant = (
        "timing- and entropy-derived values never reach deterministic_rows "
        "fields or checkpoint state, even through helper returns, parameter "
        "passing, module boundaries, or clock callables bound as values"
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        deterministic = project.deterministic_field_names()
        param_sinks = self._param_sinks(project, deterministic)
        seen: Set[Tuple[str, int, str]] = set()

        for fn in project.functions.values():
            if fn.path.endswith(_EXEMPT_SUFFIX):
                continue
            for sink in fn.sinks:
                is_checkpoint = sink.sink == "<checkpoint-state>"
                if not is_checkpoint and sink.sink not in deterministic:
                    continue
                sources = ground_sources(project, fn, sink.atoms)
                for kind, via in sorted(sources.items(), key=lambda kv: kv[0]):
                    # Direct flows into named fields are DET002's findings;
                    # checkpoint state has no shallow rule, so report those.
                    if via is None and not is_checkpoint:
                        continue
                    key = (fn.path, sink.line, f"{sink.sink}:{kind}")
                    if key in seen:
                        continue
                    seen.add(key)
                    target = (
                        "checkpoint state" if is_checkpoint
                        else f"deterministic field {sink.sink!r}"
                    )
                    route = f" via {via}()" if via is not None else ""
                    yield self.finding(
                        project, fn.path, sink.line, sink.col,
                        f"{_SOURCE_LABEL[kind]} reaches {target}{route} in "
                        f"{fn.qualname}; deterministic outputs must derive "
                        "only from seeded, modelled state",
                    )

        yield from self._check_call_sites(project, param_sinks, seen)
        yield from self._check_clock_bindings(project)

    # -- parameter sinks ---------------------------------------------------
    @staticmethod
    def _param_sinks(
        project: ProjectIndex, deterministic: Set[str]
    ) -> Dict[str, Dict[str, str]]:
        """``{fn_qualname: {param_name: sink_field}}`` for functions whose
        deterministic/checkpoint sinks are fed from a bare parameter."""
        sinks: Dict[str, Dict[str, str]] = {}
        for fn in project.functions.values():
            if fn.path.endswith(_EXEMPT_SUFFIX):
                continue
            for sink in fn.sinks:
                if sink.sink != "<checkpoint-state>" and sink.sink not in deterministic:
                    continue
                for atom in sink.atoms:
                    if atom.startswith("param:"):
                        param = atom[len("param:"):]
                        if param in fn.params:
                            sinks.setdefault(fn.qualname, {})[param] = sink.sink
        return sinks

    def _check_call_sites(
        self,
        project: ProjectIndex,
        param_sinks: Dict[str, Dict[str, str]],
        seen: Set[Tuple[str, int, str]],
    ) -> Iterator[Finding]:
        if not param_sinks:
            return
        for caller in project.functions.values():
            for call in caller.calls:
                callee = project.resolve_callee(caller, call.callee)
                if callee is None or callee not in param_sinks:
                    continue
                callee_fn = project.functions[callee]
                for arg_key, atoms in call.tainted_args:
                    param = self._arg_param(arg_key, callee_fn)
                    if param is None or param not in param_sinks[callee]:
                        continue
                    sources = ground_sources(project, caller, atoms)
                    for kind, via in sorted(sources.items(), key=lambda kv: kv[0]):
                        field = param_sinks[callee][param]
                        key = (caller.path, call.line, f"{callee}:{param}:{kind}")
                        if key in seen:
                            continue
                        seen.add(key)
                        target = (
                            "checkpoint state" if field == "<checkpoint-state>"
                            else f"deterministic field {field!r}"
                        )
                        origin = f" (from {via}())" if via is not None else ""
                        yield self.finding(
                            project, caller.path, call.line, call.col,
                            f"{_SOURCE_LABEL[kind]}{origin} is passed as "
                            f"{param!r} to {callee}(), which stores it in "
                            f"{target}; pass a modelled value instead",
                        )

    @staticmethod
    def _arg_param(arg_key: str, callee: FunctionFact) -> Optional[str]:
        """Map a recorded tainted-arg key (kwarg name or positional index
        string) onto the callee's parameter name."""
        if not arg_key.isdigit():
            return arg_key if arg_key in callee.params else None
        index = int(arg_key)
        if index < len(callee.params):
            return callee.params[index]
        return None

    # -- clock-value bindings ---------------------------------------------
    def _check_clock_bindings(self, project: ProjectIndex) -> Iterator[Finding]:
        for module in project.modules.values():
            if module.path.endswith(_EXEMPT_SUFFIX):
                continue
            for qualname, line, col in module.clock_bindings:
                yield self.finding(
                    project, module.path, line, col,
                    f"{qualname} referenced as a value; binding a wall clock "
                    "defeats the call-site ban (DET002) — inject a "
                    "deterministic clock, or suppress with a reason where a "
                    "real clock is the sanctioned default",
                )


__all__ = ["InterproceduralTaintRule"]
