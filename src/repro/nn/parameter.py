"""Trainable parameter container.

The neural-network substrate mirrors the small slice of the PyTorch API that
FedSZ touches: modules own named :class:`Parameter` tensors (float32 numpy
arrays with an associated gradient buffer) and named buffers (non-trainable
state such as BatchNorm running statistics), and expose them through
``state_dict()`` / ``load_state_dict()``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor: value plus accumulated gradient."""

    def __init__(self, data: np.ndarray, requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)

    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Byte footprint of the value array."""
        return int(self.data.nbytes)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` to the accumulated gradient (creating it if needed)."""
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def copy_(self, values: np.ndarray) -> None:
        """In-place overwrite of the parameter value (used by load_state_dict)."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot load values of shape {values.shape} into parameter of shape {self.data.shape}"
            )
        self.data[...] = values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, requires_grad={self.requires_grad})"
