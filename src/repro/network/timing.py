"""Communication and epoch timing models.

Combines the bandwidth model, the device profiles and measured (or modelled)
codec runtimes into the quantities the paper plots:

* per-update communication time with and without FedSZ (Figure 7),
* communication time across a bandwidth sweep (Figure 8),
* per-epoch client runtime breakdown — training, validation, compression
  (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.bandwidth import BandwidthModel
from repro.network.decision import CompressionDecision, should_compress
from repro.network.devices import DeviceProfile


@dataclass(frozen=True)
class CommunicationEstimate:
    """Modelled end-to-end time for shipping one client update."""

    compressor: Optional[str]
    error_bound: Optional[float]
    bandwidth_mbps: float
    original_nbytes: int
    transmitted_nbytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def transfer_seconds(self) -> float:
        """Pure wire time of the transmitted payload."""
        return BandwidthModel(self.bandwidth_mbps).transmission_seconds(self.transmitted_nbytes)

    @property
    def total_seconds(self) -> float:
        """Codec time plus wire time."""
        return self.compress_seconds + self.decompress_seconds + self.transfer_seconds

    def as_decision(self) -> CompressionDecision:
        """View this estimate through the Eqn.-1 decision lens."""
        return should_compress(
            self.original_nbytes,
            self.transmitted_nbytes,
            self.compress_seconds,
            self.decompress_seconds,
            self.bandwidth_mbps,
        )


def estimate_communication(
    original_nbytes: int,
    compressed_nbytes: Optional[int],
    bandwidth_mbps: float,
    compressor: Optional[str] = None,
    error_bound: Optional[float] = None,
    device: Optional[DeviceProfile] = None,
    measured_compress_seconds: float = 0.0,
    measured_decompress_seconds: float = 0.0,
) -> CommunicationEstimate:
    """Build a :class:`CommunicationEstimate` for one configuration.

    When ``device`` is provided, codec runtimes are modelled from the device's
    published throughputs (the Raspberry Pi 5 numbers of Table I); otherwise
    the caller-supplied measured runtimes are used.  Passing
    ``compressed_nbytes=None`` models the uncompressed baseline.
    """
    if compressed_nbytes is None:
        return CommunicationEstimate(
            compressor=None,
            error_bound=None,
            bandwidth_mbps=bandwidth_mbps,
            original_nbytes=int(original_nbytes),
            transmitted_nbytes=int(original_nbytes),
            compress_seconds=0.0,
            decompress_seconds=0.0,
        )
    if device is not None and compressor is not None:
        compress_seconds = device.compression_seconds(compressor, original_nbytes, error_bound or 1e-2)
        decompress_seconds = device.decompression_seconds(
            compressor, original_nbytes, error_bound or 1e-2
        )
    else:
        compress_seconds = measured_compress_seconds
        decompress_seconds = measured_decompress_seconds
    return CommunicationEstimate(
        compressor=compressor,
        error_bound=error_bound,
        bandwidth_mbps=bandwidth_mbps,
        original_nbytes=int(original_nbytes),
        transmitted_nbytes=int(compressed_nbytes),
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
    )


@dataclass
class EpochTimeBreakdown:
    """Per-epoch client wall-clock decomposition (Figure 6)."""

    client_training_seconds: float = 0.0
    validation_seconds: float = 0.0
    compression_seconds: float = 0.0
    communication_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Sum of all components."""
        return (
            self.client_training_seconds
            + self.validation_seconds
            + self.compression_seconds
            + self.communication_seconds
        )

    @property
    def compression_overhead_fraction(self) -> float:
        """Compression share of the epoch (the paper reports <4.7 % on average)."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return self.compression_seconds / total

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabulation."""
        return {
            "client_training_seconds": self.client_training_seconds,
            "validation_seconds": self.validation_seconds,
            "compression_seconds": self.compression_seconds,
            "communication_seconds": self.communication_seconds,
            "total_seconds": self.total_seconds,
            "compression_overhead_percent": 100.0 * self.compression_overhead_fraction,
        }


@dataclass
class TimingAccumulator:
    """Accumulates epoch breakdowns across rounds and clients."""

    breakdowns: List[EpochTimeBreakdown] = field(default_factory=list)

    def add(self, breakdown: EpochTimeBreakdown) -> None:
        """Record one epoch breakdown."""
        self.breakdowns.append(breakdown)

    def mean_breakdown(self) -> EpochTimeBreakdown:
        """Element-wise mean across every recorded breakdown."""
        if not self.breakdowns:
            return EpochTimeBreakdown()
        count = len(self.breakdowns)
        return EpochTimeBreakdown(
            client_training_seconds=sum(b.client_training_seconds for b in self.breakdowns) / count,
            validation_seconds=sum(b.validation_seconds for b in self.breakdowns) / count,
            compression_seconds=sum(b.compression_seconds for b in self.breakdowns) / count,
            communication_seconds=sum(b.communication_seconds for b in self.breakdowns) / count,
        )
