"""Lazy client state for fleet-scale federated simulations.

The seed runtime built one :class:`~repro.fl.client.FLClient` — each holding
its **own full model** — for every configured client, so memory and setup
time grew as O(num_clients × model params) even when ``client_fraction``
meant most clients never trained in a given round.  This module provides the
two pieces that break that coupling:

* :class:`ModelPool` — a bounded, thread-safe pool of reusable model
  instances.  A client *borrows* a model for the duration of one local
  training run (load the broadcast state in, train, export the update) and
  returns it, so the number of resident models is O(max_models) — typically
  the executor's worker count — instead of O(num_clients).
* :class:`ClientRegistry` — a sequence of lazily materialised
  :class:`FLClient` objects.  Client objects themselves are cheap (a dataset
  reference, a data loader, a few seeds) and are only created when first
  accessed, which for sub-sampled fleets means most clients are never built
  at all.

Bit-identity with the eager per-client-model implementation is preserved by
persisting each client's *stochastic layer streams* (e.g. per-``Dropout``
RNGs) in the client, not in the shared model: before a borrowed model trains,
the client's saved generator states are restored into the model's stochastic
modules; after training the advanced states are captured back.  A client that
has never trained starts from the pool's *pristine* states — the states a
freshly constructed model carries — exactly as if it owned a private model.
Parameters and buffers need no such treatment because ``load_state_dict``
overwrites them wholesale at the start of every training run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module


def stochastic_modules(model: Module) -> List[Module]:
    """Modules carrying a private random stream (e.g. ``Dropout``), in
    deterministic tree order."""
    return [
        module
        for _, module in model.named_modules()
        if isinstance(getattr(module, "_rng", None), np.random.Generator)
    ]


def capture_stochastic_state(model: Module) -> List[dict]:
    """Snapshot the bit-generator state of every stochastic module."""
    return [module._rng.bit_generator.state for module in stochastic_modules(model)]


def restore_stochastic_state(model: Module, states: Sequence[dict]) -> None:
    """Restore previously captured stochastic-module states into ``model``."""
    modules = stochastic_modules(model)
    if len(modules) != len(states):
        raise ValueError(
            f"model has {len(modules)} stochastic modules but {len(states)} "
            "states were captured; was the model function changed mid-run?"
        )
    for module, state in zip(modules, states, strict=True):
        module._rng.bit_generator.state = state


class ModelPool:
    """Bounded, thread-safe pool of reusable model instances.

    ``acquire`` hands out a free model, constructing a new one only while
    fewer than ``max_models`` exist (``None`` = grow on demand, which still
    bounds residency by the executor's concurrency).  When the pool is
    exhausted, ``acquire`` blocks until another thread releases — safe under
    the executor layer because a task never holds more than one model.

    ``created`` / ``peak_in_use`` instrument the memory claim the fleet tests
    assert: peak resident model instances stay within the worker budget no
    matter how many clients the fleet has.
    """

    def __init__(self, model_fn: Callable[[], Module], max_models: Optional[int] = None) -> None:
        if max_models is not None and max_models <= 0:
            raise ValueError(f"max_models must be positive, got {max_models}")
        self._model_fn = model_fn
        self.max_models = max_models
        self._condition = threading.Condition()
        self._free: List[Module] = []
        self._created = 0
        self._in_use = 0
        self._peak_in_use = 0
        self._pristine_states: Optional[List[dict]] = None

    @property
    def created(self) -> int:
        """Total model instances constructed so far (= peak residency)."""
        with self._condition:
            return self._created

    @property
    def in_use(self) -> int:
        """Models currently borrowed."""
        with self._condition:
            return self._in_use

    @property
    def peak_in_use(self) -> int:
        """Most models simultaneously borrowed over the pool's lifetime."""
        with self._condition:
            return self._peak_in_use

    @property
    def pristine_states(self) -> List[dict]:
        """Stochastic-module states of a freshly constructed model.

        Captured from the first model the pool builds; because model
        factories are deterministic (seeded weight init and layer RNGs),
        every construction starts from these same states.

        Condition's default lock is re-entrant, so the acquire/release pair
        below is safe to run while we hold it.
        """
        with self._condition:
            if self._pristine_states is None:
                # Force one construction so first-time borrowers have a
                # reference.
                self.release(self.acquire())
            return list(self._pristine_states)

    def acquire(self) -> Module:
        """Borrow a model, blocking until one is free or can be built."""
        with self._condition:
            while True:
                if self._free:
                    model = self._free.pop()
                    break
                if self.max_models is None or self._created < self.max_models:
                    model = self._model_fn()
                    self._created += 1
                    if self._pristine_states is None:
                        self._pristine_states = capture_stochastic_state(model)
                    break
                self._condition.wait()
            self._in_use += 1
            self._peak_in_use = max(self._peak_in_use, self._in_use)
            return model

    def release(self, model: Module) -> None:
        """Return a borrowed model to the pool."""
        with self._condition:
            self._in_use -= 1
            self._free.append(model)
            self._condition.notify()

    @contextmanager
    def borrow(self) -> Iterator[Module]:
        """``with pool.borrow() as model:`` acquire/release bracket."""
        model = self.acquire()
        try:
            yield model
        finally:
            self.release(model)


class ClientRegistry(Sequence):
    """Lazily materialised client population.

    Behaves like an immutable list of :class:`FLClient`: ``len``, indexing,
    iteration and ``list(...)`` all work, but a client object is only
    constructed the first time it is accessed (and then cached).  All clients
    share one :class:`ModelPool`, so materialising a client does **not**
    build a model — only its data loader and bookkeeping.
    """

    def __init__(
        self,
        model_fn: Callable[[], Module],
        datasets: Sequence,
        config,
        seeds: Sequence[int],
        model_pool: ModelPool,
    ) -> None:
        if len(datasets) != len(seeds):
            raise ValueError(
                f"got {len(datasets)} client datasets but {len(seeds)} seeds"
            )
        for client_id, dataset in enumerate(datasets):
            if len(dataset) == 0:
                raise ValueError(f"client {client_id} received an empty dataset")
        self._model_fn = model_fn
        self._datasets = list(datasets)
        self._config = config
        self._seeds = [int(seed) for seed in seeds]
        self.model_pool = model_pool
        self._clients: dict = {}

    def __len__(self) -> int:
        return len(self._datasets)

    def __getitem__(self, index):
        from repro.fl.client import FLClient

        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"client index {index} out of range for {len(self)} clients")
        client = self._clients.get(index)
        if client is None:
            client = FLClient(
                index,
                self._model_fn,
                self._datasets[index],
                self._config,
                seed=self._seeds[index],
                model_pool=self.model_pool,
            )
            self._clients[index] = client
        return client

    @property
    def materialized_count(self) -> int:
        """How many client objects have actually been constructed."""
        return len(self._clients)

    def materialized_items(self) -> List[tuple]:
        """``(client_id, client)`` pairs for every materialised client, in id
        order.

        Checkpointing iterates these instead of the whole registry: a client
        that was never materialised has never advanced any stream, so
        rebuilding it lazily after resume is already bit-identical — only the
        clients that actually ran carry state worth persisting.
        """
        return [(index, self._clients[index]) for index in sorted(self._clients)]


__all__ = [
    "ModelPool",
    "ClientRegistry",
    "stochastic_modules",
    "capture_stochastic_state",
    "restore_stochastic_state",
]
