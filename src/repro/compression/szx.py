"""SZx-style ultra-fast error-bounded lossy compressor.

SZx (Yu et al., HPDC 2022) trades compression ratio for speed: the data are
scanned in fixed-size blocks, each block is either declared *constant* (every
value within the error bound of the block mean, so only the mean is stored) or
*non-constant*, in which case the values are stored with cheap bit-wise
truncation and no entropy coding at all.

The reproduction follows the same two-mode design:

* constant blocks store a single float32 mean;
* non-constant blocks store, per value, a sign bit and a magnitude index
  obtained by *truncating* (not rounding) ``|x - mean| / ε`` — truncation
  toward the mean mirrors SZx's bit-plane truncation and is the reason its
  reconstructions are noticeably biased compared to the rounding-based SZ2 /
  SZ3 pipelines, which is exactly the behaviour the FedSZ paper observes
  (compression ratio pinned near ~4.8× and poor model accuracy).

No entropy stage is applied, keeping the codec extremely fast.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compression.base import (
    ErrorBoundMode,
    LossyCompressor,
    pack_array,
    pack_sections,
    resolve_error_bound,
    unpack_array,
    unpack_sections,
)
from repro.compression.bitstream import pack_bit_flags, unpack_bit_flags
from repro.compression.errors import CorruptPayloadError

_META_STRUCT = struct.Struct("<IQdII")
_FORMAT_VERSION = 2


class SZxCompressor(LossyCompressor):
    """Constant-block + bit-truncation compressor (SZx analogue)."""

    name = "szx"

    def __init__(self, block_size: int = 128) -> None:
        if block_size < 4:
            raise ValueError(f"block_size must be >= 4, got {block_size}")
        self.block_size = int(block_size)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = self._validate_input(data)
        original_shape = data.shape
        original_dtype = data.dtype
        flat = data.astype(np.float64, copy=False).ravel()
        absolute_bound = resolve_error_bound(flat, error_bound, mode)

        if flat.size == 0 or absolute_bound <= 0:
            sections = {
                "meta": self._pack_meta(flat.size, absolute_bound, original_shape, original_dtype, raw=True),
                "raw": pack_array(data),
            }
            return pack_sections(sections)

        block = self.block_size
        padded, num_blocks = _pad_to_blocks(flat, block)
        blocks = padded.reshape(num_blocks, block)

        # Block means are stored as float32, so compute constancy against the
        # value that will actually be reconstructed.
        means = blocks.mean(axis=1).astype(np.float32).astype(np.float64)
        deviations = blocks - means[:, None]
        is_constant = np.max(np.abs(deviations), axis=1) <= absolute_bound

        # Non-constant blocks: truncate |x - mean| / ε toward zero, keep a sign
        # bit and a per-block fixed bit width.
        magnitudes = np.floor(np.abs(deviations) / absolute_bound).astype(np.uint64)
        signs = (deviations < 0).astype(np.uint8)
        block_max = magnitudes.max(axis=1)
        widths = np.zeros(num_blocks, dtype=np.uint8)
        nonconstant = ~is_constant
        if np.any(nonconstant):
            widths[nonconstant] = np.maximum(
                1, np.ceil(np.log2(block_max[nonconstant].astype(np.float64) + 1.0)).astype(np.uint8)
            )

        # Blocks are stored grouped by bit width (ascending) so that each group
        # can be packed and unpacked with a single vectorised operation instead
        # of a per-block Python loop.  The decompressor reconstructs the same
        # grouping from the ``widths`` array.
        payload_parts = []
        for width in np.unique(widths[nonconstant]):
            group = nonconstant & (widths == width)
            packed = _pack_group_values(magnitudes[group], signs[group], int(width))
            payload_parts.append(packed)
        values_blob = b"".join(payload_parts)

        sections = {
            "meta": self._pack_meta(flat.size, absolute_bound, original_shape, original_dtype, raw=False),
            "flags": pack_bit_flags(is_constant),
            "means": pack_array(means.astype(np.float32)),
            "widths": pack_array(widths),
            "values": values_blob,
        }
        return pack_sections(sections)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        meta = self._unpack_meta(sections.get("meta"))
        if meta["raw"]:
            return unpack_array(sections["raw"])

        size = meta["size"]
        absolute_bound = meta["absolute_bound"]
        block = meta["block_size"]
        num_blocks = -(-size // block)

        is_constant = unpack_bit_flags(sections["flags"], num_blocks)
        means = unpack_array(sections["means"]).astype(np.float64)
        widths = unpack_array(sections["widths"]).astype(np.int64)
        values_blob = sections["values"]

        reconstruction = np.repeat(means[:, None], block, axis=1)

        cursor = 0
        nonconstant = ~is_constant
        for width in np.unique(widths[nonconstant]):
            group = nonconstant & (widths == width)
            group_count = int(np.count_nonzero(group))
            nbytes = _packed_group_nbytes(group_count, block, int(width))
            chunk = values_blob[cursor : cursor + nbytes]
            if len(chunk) != nbytes:
                raise CorruptPayloadError("SZx payload truncated inside value blocks")
            cursor += nbytes
            magnitudes, signs = _unpack_group_values(chunk, group_count, block, int(width))
            deviations = magnitudes.astype(np.float64) * absolute_bound
            deviations[signs.astype(bool)] *= -1.0
            reconstruction[group] = means[group, None] + deviations

        flat = reconstruction.ravel()[:size]
        return flat.astype(meta["dtype"]).reshape(meta["shape"])

    # ------------------------------------------------------------------
    # Metadata framing
    # ------------------------------------------------------------------
    def _pack_meta(
        self,
        size: int,
        absolute_bound: float,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        raw: bool,
    ) -> bytes:
        dtype_name = np.dtype(dtype).str.encode("ascii")
        header = _META_STRUCT.pack(
            _FORMAT_VERSION, size, float(absolute_bound), self.block_size, 1 if raw else 0
        )
        shape_blob = struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
        return header + struct.pack("<H", len(dtype_name)) + dtype_name + shape_blob

    @staticmethod
    def _unpack_meta(blob: bytes | None) -> dict:
        if not blob or len(blob) < _META_STRUCT.size:
            raise CorruptPayloadError("SZx payload missing metadata section")
        version, size, absolute_bound, block_size, raw = _META_STRUCT.unpack_from(blob, 0)
        if version != _FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported SZx payload version {version}")
        cursor = _META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, cursor) if ndim else ()
        return {
            "size": int(size),
            "absolute_bound": float(absolute_bound),
            "block_size": int(block_size),
            "raw": bool(raw),
            "dtype": dtype,
            "shape": tuple(int(s) for s in shape),
        }


def _pad_to_blocks(flat: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """Pad a 1-D array with its last value up to a whole number of blocks."""
    num_blocks = -(-flat.size // block)
    padded_size = num_blocks * block
    if padded_size == flat.size:
        return flat, num_blocks
    padded = np.empty(padded_size, dtype=np.float64)
    padded[: flat.size] = flat
    padded[flat.size :] = flat[-1]
    return padded, num_blocks


def _packed_group_nbytes(group_count: int, block: int, width: int) -> int:
    """Bytes used to store a group of non-constant blocks at the same width."""
    total_bits = group_count * block * (width + 1)
    return (total_bits + 7) // 8


def _pack_group_values(magnitudes: np.ndarray, signs: np.ndarray, width: int) -> bytes:
    """Bit-pack sign + fixed-width magnitude for a group of blocks."""
    group_count, block = magnitudes.shape
    bits = np.zeros((group_count, block, width + 1), dtype=np.uint8)
    bits[:, :, 0] = signs
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits[:, :, 1:] = (
        (magnitudes[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def _unpack_group_values(
    chunk: bytes, group_count: int, block: int, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`_pack_group_values`."""
    total_bits = group_count * block * (width + 1)
    bits = np.unpackbits(np.frombuffer(chunk, dtype=np.uint8))[:total_bits]
    bits = bits.reshape(group_count, block, width + 1)
    signs = bits[:, :, 0]
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    magnitudes = bits[:, :, 1:].astype(np.uint64) @ weights
    return magnitudes, signs
