"""CLI surface of ``repro lint``: exit codes, filters, formats, baseline."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

DIRTY = "import numpy as np\nnp.random.seed(1)\n"
CLEAN = "VALUE = 1\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A tiny lintable tree; cwd moved there so default-baseline logic sees it."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "dirty.py").write_text(DIRTY)
    (tmp_path / "pkg" / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(tree, capsys):
    assert main(["lint", "pkg/clean.py"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_rule_and_location(tree, capsys):
    assert main(["lint", "pkg"]) == 1
    out = capsys.readouterr().out
    assert "dirty.py:2:1: DET001" in out


def test_rule_filter(tree, capsys):
    assert main(["lint", "pkg", "--rule", "DET004"]) == 0
    assert main(["lint", "pkg", "--rule", "DET001"]) == 1


def test_unknown_rule_exits_two(tree, capsys):
    assert main(["lint", "pkg", "--rule", "NOPE999"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_missing_path_exits_two(tree, capsys):
    assert main(["lint", "no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_format(tree, capsys):
    assert main(["lint", "pkg", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.lint"
    assert payload["counts"] == {"DET001": 1}
    assert payload["findings"][0]["rule"] == "DET001"


def test_write_baseline_then_lint_is_green(tree, capsys):
    assert main(["lint", "pkg", "--write-baseline"]) == 0
    assert (tree / ".repro-lint-baseline.json").exists()
    # The default baseline file is now picked up automatically.
    assert main(["lint", "pkg"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_no_baseline_flag_reports_parked_findings(tree, capsys):
    assert main(["lint", "pkg", "--write-baseline"]) == 0
    assert main(["lint", "pkg", "--no-baseline"]) == 1


def test_explicit_baseline_path(tree, tmp_path, capsys):
    baseline = tmp_path / "custom-baseline.json"
    assert main(["lint", "pkg", "--write-baseline", "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    assert main(["lint", "pkg", "--baseline", str(baseline)]) == 0


def test_corrupt_baseline_exits_two(tree, capsys):
    (tree / "bad.json").write_text("{not json")
    assert main(["lint", "pkg", "--baseline", "bad.json"]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_list_rules(tree, capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "FORK001"):
        assert rule_id in out
    assert "invariant:" in out


# ----------------------------------------------------------------------
# --deep / --changed / SARIF
# ----------------------------------------------------------------------
RACY = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0
"""


@pytest.fixture
def deep_tree(tmp_path, monkeypatch):
    """A tree that is shallow-clean but has a deep (CONC001) finding."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "racy.py").write_text(RACY)
    (tmp_path / "pkg" / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_deep_finds_what_shallow_misses(deep_tree, capsys):
    assert main(["lint", "pkg"]) == 0
    capsys.readouterr()
    assert main(["lint", "pkg", "--deep", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "racy.py" in out and "CONC001" in out


def test_deep_rule_filter_requires_deep_flag(deep_tree, capsys):
    assert main(["lint", "pkg", "--rule", "CONC001"]) == 2
    assert "add --deep" in capsys.readouterr().err
    assert main(["lint", "pkg", "--deep", "--rule", "CONC001", "--no-cache"]) == 1
    assert main(["lint", "pkg", "--deep", "--rule", "EXH001", "--no-cache"]) == 0


def test_deep_respects_baseline(deep_tree, capsys):
    assert main(["lint", "pkg", "--deep", "--no-cache", "--write-baseline"]) == 0
    assert main(["lint", "pkg", "--deep", "--no-cache"]) == 0
    assert "baselined" in capsys.readouterr().out


def test_deep_populates_and_reuses_cache(deep_tree, capsys):
    assert main(["lint", "pkg", "--deep", "--cache-dir", "cachedir"]) == 1
    cached = list((deep_tree / "cachedir").glob("callgraph-*.json"))
    assert len(cached) == 1
    # Second run must give identical output from the cached index.
    first = capsys.readouterr().out
    assert main(["lint", "pkg", "--deep", "--cache-dir", "cachedir"]) == 1
    assert capsys.readouterr().out == first


def test_sarif_output_is_valid_and_carries_findings(deep_tree, capsys):
    assert main(["lint", "pkg", "--deep", "--no-cache", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"DET001", "CONC001", "EXH001"} <= rule_ids
    results = run["results"]
    assert results and results[0]["ruleId"] == "CONC001"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("racy.py")
    assert location["region"]["startLine"] > 1


def test_sarif_without_deep_lists_only_shallow_rules(tree, capsys):
    assert main(["lint", "pkg", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rule_ids = {rule["id"] for rule in payload["runs"][0]["tool"]["driver"]["rules"]}
    assert "DET001" in rule_ids and "CONC001" not in rule_ids


def test_list_rules_includes_deep_section(tree, capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("CONC001", "CONC002", "DET005", "EXH001", "EXH002", "FORK002"):
        assert rule_id in out
    assert "[deep]" in out


# ----------------------------------------------------------------------
# --changed (git-scoped fast path)
# ----------------------------------------------------------------------
def _git(tree, *args):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t.invalid", *args],
        cwd=tree, check=True, capture_output=True,
    )


@pytest.fixture
def git_tree(deep_tree):
    _git(deep_tree, "init", "-q")
    _git(deep_tree, "add", ".")
    _git(deep_tree, "commit", "-q", "-m", "seed")
    return deep_tree


def test_changed_scopes_to_modified_files(git_tree, capsys):
    # Nothing changed: nothing linted.
    assert main(["lint", "pkg", "--changed"]) == 0
    assert "0 finding(s) in 0 file(s)" in capsys.readouterr().out
    # Introduce a shallow finding in one file; only that file is linted.
    (git_tree / "pkg" / "clean.py").write_text(DIRTY)
    assert main(["lint", "pkg", "--changed"]) == 1
    out = capsys.readouterr().out
    assert "clean.py" in out and "1 file(s)" in out


def test_changed_deep_scopes_findings_but_indexes_everything(git_tree, capsys):
    # racy.py is unchanged, so its CONC001 finding is out of scope...
    (git_tree / "pkg" / "clean.py").write_text(CLEAN + "VALUE2 = 2\n")
    assert main(["lint", "pkg", "--changed", "--deep", "--no-cache"]) == 0
    capsys.readouterr()
    # ...until racy.py itself changes.
    (git_tree / "pkg" / "racy.py").write_text(RACY + "\n# touched\n")
    assert main(["lint", "pkg", "--changed", "--deep", "--no-cache"]) == 1
    assert "CONC001" in capsys.readouterr().out


def test_changed_outside_git_exits_two(deep_tree, monkeypatch, capsys):
    monkeypatch.setenv("GIT_DIR", str(deep_tree / "definitely-not-a-repo"))
    assert main(["lint", "pkg", "--changed"]) == 2
    assert "git status failed" in capsys.readouterr().err
