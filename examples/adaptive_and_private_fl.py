#!/usr/bin/env python
"""Beyond the paper: adaptive error bounds and DP-noised FedSZ updates.

Two extensions flagged as future work in the paper's discussion section,
implemented on top of the same federated simulation:

1. **Adaptive error bound** — an :class:`AdaptiveErrorBoundController` watches
   the server's validation accuracy and tightens/relaxes the FedSZ bound
   round by round, trading compression ratio for accuracy automatically.
2. **Differentially-private FedSZ** — the :class:`DPFedSZCompressor` clips
   each client update, adds a calibrated Laplace mechanism, and only then
   compresses, so the release carries a formal per-round ε guarantee that
   compression (post-processing) cannot weaken.

Run with::

    python examples/adaptive_and_private_fl.py [--rounds 6]
"""

from __future__ import annotations

import argparse

from repro.core import AdaptiveErrorBoundController, AdaptiveFedSZCompressor
from repro.experiments import build_federated_setup
from repro.experiments.reporting import render_table
from repro.fl import FederatedRuntime, ParallelExecutor
from repro.privacy import DPFedSZCompressor


def run_adaptive(rounds: int, samples: int) -> None:
    print("=== adaptive error-bound control ===")
    setup = build_federated_setup("resnet50", "cifar10", rounds=rounds, samples=samples, seed=21)
    controller = AdaptiveErrorBoundController(
        initial_bound=1e-1,  # start loose on purpose; the controller reins it in
        tolerance=0.03,
        backoff_factor=10.0,
        growth_factor=2.0,
        patience=2,
    )
    codec = AdaptiveFedSZCompressor(controller)
    # Drive the layered runtime directly: adaptive/DP codecs are stateful, so
    # the parallel executor shares them behind a lock while still overlapping
    # client training and transport.
    runtime = FederatedRuntime(
        setup.model_fn,
        setup.train_dataset,
        setup.validation_dataset,
        setup.config,
        codec=codec,
        executor=ParallelExecutor(max_workers=4),
    )
    rows = []
    for _ in range(rounds):
        record = runtime.run_round()
        codec.observe_accuracy(record.global_accuracy)
        rows.append(
            {
                "round": record.round_index,
                "accuracy": record.global_accuracy,
                "bound_used": controller.adjustments[-1].previous_bound,
                "next_bound": controller.current_bound,
                "action": controller.adjustments[-1].action,
                "ratio": record.mean_compression_ratio,
            }
        )
    print(render_table(rows))
    print()


def run_private(rounds: int, samples: int, epsilon: float) -> None:
    print("=== differentially-private FedSZ (Laplace mechanism + compression) ===")
    setup = build_federated_setup("resnet50", "cifar10", rounds=rounds, samples=samples, seed=22)
    codec = DPFedSZCompressor(epsilon_per_round=epsilon, clip_norm=0.5, error_bound=1e-2, seed=5)
    history = FederatedRuntime(
        setup.model_fn, setup.train_dataset, setup.validation_dataset, setup.config, codec=codec
    ).run()

    baseline_setup = build_federated_setup("resnet50", "cifar10", rounds=rounds, samples=samples, seed=22)
    baseline = FederatedRuntime(
        baseline_setup.model_fn,
        baseline_setup.train_dataset,
        baseline_setup.validation_dataset,
        baseline_setup.config,
        codec=None,
        executor=ParallelExecutor(max_workers=4),
    ).run()

    print(f"per-round epsilon: {epsilon:g}  (noise scale {codec.noise_scale:.3f}, "
          f"total spent across all client releases: {codec.spent_epsilon:g})")
    print(f"final accuracy:  private {history.final_accuracy:.3f} vs non-private {baseline.final_accuracy:.3f}")
    print(f"uplink traffic:  private {history.total_uplink_bytes / 1e6:.2f} MB vs "
          f"non-private {baseline.total_uplink_bytes / 1e6:.2f} MB")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--samples", type=int, default=480)
    parser.add_argument("--epsilon", type=float, default=50.0)
    arguments = parser.parse_args()
    run_adaptive(arguments.rounds, arguments.samples)
    run_private(arguments.rounds, arguments.samples, arguments.epsilon)


if __name__ == "__main__":
    main()
