"""Figure 3 — distribution of pretrained weights for the three model families.

The figure shows that every family's weights are sharply peaked around zero
but with family-specific dynamic ranges (MobileNetV2 spreads to ±0.25 and
beyond, AlexNet and ResNet50 concentrate within ±0.05), which is the
motivation for relative (rather than absolute) error bounds.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import PAPER_MODELS, model_weight_sample


def weight_histogram(model: str, bins: int = 81, num_values: int = 400_000, seed: int = 0) -> Dict[str, np.ndarray]:
    """Density histogram of one model family's trained-like weights."""
    weights = model_weight_sample(model, num_values=num_values, seed=seed)
    density, edges = np.histogram(weights, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return {"centers": centers, "density": density}


def run_figure3(
    models: Sequence[str] = PAPER_MODELS,
    num_values: int = 400_000,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 3 as summary statistics of each weight distribution."""
    result = ExperimentResult(
        name="Figure 3 — distribution of pretrained weights",
        description="Spread statistics of the per-family weight distributions.",
    )
    for model in models:
        weights = model_weight_sample(model, num_values=num_values, seed=seed)
        result.add_row(
            model=model,
            std=float(np.std(weights)),
            percentile_1=float(np.percentile(weights, 1)),
            percentile_99=float(np.percentile(weights, 99)),
            max_abs=float(np.max(np.abs(weights))),
            fraction_within_0_05=float(np.mean(np.abs(weights) < 0.05)),
            excess_kurtosis=float(_excess_kurtosis(weights)),
        )
    mobilenet = next((r for r in result.rows if r["model"] == "mobilenetv2"), None)
    alexnet = next((r for r in result.rows if r["model"] == "alexnet"), None)
    if mobilenet and alexnet:
        result.add_note(
            "MobileNetV2 weights are the most spread out and AlexNet's the most "
            f"concentrated ({mobilenet['std']:.3f} vs {alexnet['std']:.3f} std), matching Figure 3."
        )
    result.add_note(
        "All distributions are heavy-tailed (positive excess kurtosis), which is why a "
        "relative error bound adapts better than a fixed absolute bound."
    )
    return result


def _excess_kurtosis(values: np.ndarray) -> float:
    values = np.asarray(values, dtype=np.float64)
    centered = values - values.mean()
    variance = np.mean(centered**2)
    if variance == 0:
        return 0.0
    return float(np.mean(centered**4) / variance**2 - 3.0)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure3().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
