"""Benchmark regenerating Figure 2 (FL weights vs scientific data)."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_figure2


def test_figure2_data_characterization(run_once):
    result = run_once(run_figure2)
    print()
    print(result.to_text())

    weights = result.filter(source="fl-weights")
    fields = result.filter(source="miranda-like")
    # Paper shape: model parameters are spiky, the scientific slices smooth,
    # and the smooth data compresses far better under the same bound.
    assert np.mean([row["smoothness"] for row in weights]) > 3 * np.mean(
        [row["smoothness"] for row in fields]
    )
    assert np.median([row["sz2_ratio"] for row in fields]) > np.median(
        [row["sz2_ratio"] for row in weights]
    )
