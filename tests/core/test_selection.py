"""Tests for the Problem 1 / Problem 2 selection procedures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ErrorBoundCandidate,
    candidates_from_measurements,
    recommended_error_bound,
    select_error_bound,
    select_lossy_compressor,
)


@pytest.fixture
def weights(rng):
    values = rng.normal(0, 0.02, 60_000).astype(np.float32)
    values[rng.choice(values.size, 50, replace=False)] = rng.uniform(-0.8, 0.8, 50).astype(np.float32)
    return values


# ----------------------------------------------------------------------
# Problem 1 — compressor selection
# ----------------------------------------------------------------------
def test_selection_prefers_prediction_based_compressor_on_weights(weights):
    """On spiky model weights the ratio-oriented objective should land on one
    of the SZ-family prediction compressors, as the paper concludes."""
    selection = select_lossy_compressor(weights, error_bound=1e-2, bandwidth_mbps=10.0)
    assert selection.best.compressor in {"sz2", "sz3"}
    assert len(selection.candidates) == 4
    assert all(candidate.ratio > 0 for candidate in selection.candidates)


def test_selection_marks_infeasible_candidates_on_fast_links(weights):
    """At datacenter bandwidth, the transfer budget is tiny, so slow
    compressors become infeasible under Eqn. 2's constraint."""
    selection = select_lossy_compressor(weights, error_bound=1e-2, bandwidth_mbps=100_000.0)
    assert any(not candidate.feasible for candidate in selection.candidates)


def test_selection_with_runtime_heavy_objective_prefers_fast_codec(weights):
    selection = select_lossy_compressor(
        weights,
        error_bound=1e-2,
        ratio_weight=0.0,
        runtime_weight=1.0,
    )
    runtimes = {c.compressor: c.compress_seconds for c in selection.candidates}
    assert selection.best.compress_seconds == min(runtimes.values())


def test_selection_respects_candidate_subset(weights):
    selection = select_lossy_compressor(weights, candidates=("zfp", "szx"), error_bound=1e-2)
    assert selection.best.compressor in {"zfp", "szx"}


def test_candidate_score_property():
    from repro.core.selection import CompressorCandidate

    candidate = CompressorCandidate("sz2", 1e-2, ratio=10.0, compress_seconds=2.0, feasible=True)
    assert candidate.score == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Problem 2 — error-bound selection
# ----------------------------------------------------------------------
def _paper_like_candidates():
    """Accuracy/size behaviour shaped like Figure 5 + Table V for AlexNet."""
    return [
        ErrorBoundCandidate(1e-5, accuracy=0.578, communication_nbytes=int(230e6 / 2.9)),
        ErrorBoundCandidate(1e-4, accuracy=0.579, communication_nbytes=int(230e6 / 3.52)),
        ErrorBoundCandidate(1e-3, accuracy=0.577, communication_nbytes=int(230e6 / 5.54)),
        ErrorBoundCandidate(1e-2, accuracy=0.576, communication_nbytes=int(230e6 / 12.61)),
        ErrorBoundCandidate(1e-1, accuracy=0.10, communication_nbytes=int(230e6 / 54.54)),
    ]


def test_error_bound_selection_reproduces_paper_recommendation():
    selection = select_error_bound(_paper_like_candidates(), baseline_accuracy=0.579, tolerance=0.005)
    assert selection.best.error_bound == pytest.approx(1e-2)


def test_error_bound_selection_falls_back_to_closest_accuracy():
    candidates = [
        ErrorBoundCandidate(1e-2, accuracy=0.30, communication_nbytes=100),
        ErrorBoundCandidate(1e-3, accuracy=0.45, communication_nbytes=200),
    ]
    selection = select_error_bound(candidates, baseline_accuracy=0.60, tolerance=0.005)
    assert selection.best.error_bound == pytest.approx(1e-3)


def test_error_bound_selection_requires_candidates():
    with pytest.raises(ValueError):
        select_error_bound([], baseline_accuracy=0.5)


def test_candidates_from_measurements_helper():
    candidates = candidates_from_measurements(
        {1e-2: {"accuracy": 0.55, "nbytes": 1000}, 1e-3: {"accuracy": 0.56, "nbytes": 2000}}
    )
    assert len(candidates) == 2
    assert {c.error_bound for c in candidates} == {1e-2, 1e-3}


def test_recommended_error_bound_defaults_to_paper_value():
    assert recommended_error_bound() == pytest.approx(1e-2)
    selection = select_error_bound(_paper_like_candidates(), baseline_accuracy=0.579)
    assert recommended_error_bound(selection) == selection.best.error_bound
