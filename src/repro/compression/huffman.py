"""Canonical Huffman coding over integer symbol streams.

SZ2 and SZ3 entropy-code their quantization indices with Huffman coding
followed by a general-purpose lossless pass.  This module provides a
self-contained canonical Huffman codec with:

* a heap-based code construction (:func:`build_code_lengths`),
* canonical code assignment so that only the (symbol, length) table needs to
  be serialized,
* a fully vectorised encoder (every payload bit is placed by one
  repeat/cumsum expansion, with no Python loop at all),
* a table-driven decoder whose symbol walk is vectorised with
  pointer-doubling over the per-position jump table.

The scalar implementations these paths replaced live on in
:mod:`repro.compression.reference`; round-trip tests assert the vectorised
codec is bit-identical to them.

The codec operates on arbitrary integer symbols; callers are expected to map
their data (e.g. quantization indices) onto integers first.
"""

from __future__ import annotations

import heapq
import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.compression.errors import CorruptPayloadError

_TABLE_STRUCT = struct.Struct("<IQ")
#: numpy mirror of ``_TABLE_STRUCT`` so whole tables (de)serialize in one shot.
_TABLE_DTYPE = np.dtype([("length", "<u4"), ("symbol", "<u8")])


def build_frequency_table(symbols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(unique_symbols, counts)`` for an integer symbol array."""
    symbols = np.asarray(symbols).ravel()
    if symbols.size == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    unique, counts = np.unique(symbols, return_counts=True)
    return unique.astype(np.int64), counts.astype(np.int64)


def build_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths for each symbol given its frequency.

    Uses the classic two-queue/heap construction.  A single-symbol alphabet is
    assigned a 1-bit code so that the encoded stream is still well-formed.
    """
    frequencies = np.asarray(frequencies, dtype=np.int64)
    n = frequencies.size
    if n == 0:
        return np.array([], dtype=np.int64)
    if n == 1:
        return np.array([1], dtype=np.int64)

    counter = itertools.count()
    # Heap entries: (frequency, tie-breaker, node). A node is either a leaf
    # index (int) or a tuple of two child nodes.
    heap: list = [(int(freq), next(counter), index) for index, freq in enumerate(frequencies)]
    heapq.heapify(heap)
    while len(heap) > 1:
        freq_a, _, node_a = heapq.heappop(heap)
        freq_b, _, node_b = heapq.heappop(heap)
        heapq.heappush(heap, (freq_a + freq_b, next(counter), (node_a, node_b)))

    lengths = np.zeros(n, dtype=np.int64)
    # Iterative tree walk to avoid recursion limits on skewed distributions.
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)
    return lengths


def assign_canonical_codes(
    symbols: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assign canonical codewords given per-symbol code lengths.

    Returns ``(ordered_symbols, ordered_lengths, codes)`` where entries are
    sorted by ``(length, symbol)`` and ``codes[i]`` holds the integer codeword
    for ``ordered_symbols[i]``.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.lexsort((symbols, lengths))
    ordered_symbols = symbols[order]
    ordered_lengths = lengths[order]
    codes = np.zeros(ordered_symbols.size, dtype=np.uint64)
    code = 0
    previous_length = int(ordered_lengths[0]) if ordered_lengths.size else 0
    for i, length in enumerate(ordered_lengths):
        length = int(length)
        code <<= length - previous_length
        codes[i] = code
        code += 1
        previous_length = length
    return ordered_symbols, ordered_lengths, codes


@dataclass
class HuffmanCode:
    """A canonical Huffman code book.

    Attributes
    ----------
    symbols:
        Distinct integer symbols, sorted by ``(code length, symbol)``.
    lengths:
        Code length (bits) per symbol, same order as ``symbols``.
    codes:
        Canonical codeword per symbol, same order as ``symbols``.
    """

    symbols: np.ndarray
    lengths: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_symbols(cls, data: np.ndarray) -> "HuffmanCode":
        """Build a code book from the symbols present in ``data``."""
        unique, counts = build_frequency_table(data)
        lengths = build_code_lengths(counts)
        ordered_symbols, ordered_lengths, codes = assign_canonical_codes(unique, lengths)
        return cls(symbols=ordered_symbols, lengths=ordered_lengths, codes=codes)

    @property
    def max_length(self) -> int:
        """Longest codeword length in bits (0 for an empty code book)."""
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, data: np.ndarray) -> int:
        """Number of payload bits needed to encode ``data`` with this book."""
        if self.symbols.size == 0:
            return 0
        unique, counts = build_frequency_table(data)
        order = np.argsort(self.symbols)
        sorted_symbols = self.symbols[order]
        found = np.searchsorted(sorted_symbols, unique)
        clipped = np.minimum(found, sorted_symbols.size - 1)
        known = (found < sorted_symbols.size) & (sorted_symbols[clipped] == unique)
        if not np.all(known):
            raise KeyError(f"symbol {int(unique[~known][0])} is not in the code book")
        return int(np.sum(counts * self.lengths[order[found]]))

    # ------------------------------------------------------------------
    # Table serialization
    # ------------------------------------------------------------------
    def serialize_table(self) -> bytes:
        """Serialize the (symbol, length) table; codes are re-derived on load."""
        records = np.zeros(self.symbols.size, dtype=_TABLE_DTYPE)
        records["length"] = self.lengths.astype(np.uint32)
        records["symbol"] = self.symbols.astype(np.int64).view(np.uint64)
        return struct.pack("<I", self.symbols.size) + records.tobytes()

    @classmethod
    def deserialize_table(cls, payload: bytes) -> "HuffmanCode":
        """Inverse of :meth:`serialize_table`."""
        if len(payload) < 4:
            raise CorruptPayloadError("Huffman table payload too short")
        (count,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        expected = offset + count * _TABLE_STRUCT.size
        if len(payload) < expected:
            raise CorruptPayloadError("Huffman table payload truncated")
        records = np.frombuffer(payload, dtype=_TABLE_DTYPE, count=count, offset=offset)
        lengths = records["length"].astype(np.int64)
        symbols = records["symbol"].copy().view(np.int64)
        ordered_symbols, ordered_lengths, codes = assign_canonical_codes(symbols, lengths)
        return cls(symbols=ordered_symbols, lengths=ordered_lengths, codes=codes)


class HuffmanCodec:
    """Encode/decode integer arrays with canonical Huffman coding."""

    def encode(self, data: np.ndarray) -> bytes:
        """Encode an integer array into a self-describing payload."""
        data = np.asarray(data, dtype=np.int64).ravel()
        code = HuffmanCode.from_symbols(data)
        table = code.serialize_table()
        payload_bits, bit_count = self._encode_bits(data, code)
        header = struct.pack("<QQ", data.size, bit_count)
        return header + struct.pack("<I", len(table)) + table + payload_bits

    def decode(self, payload: bytes) -> np.ndarray:
        """Decode a payload produced by :meth:`encode`."""
        if len(payload) < 20:
            raise CorruptPayloadError("Huffman payload too short")
        count, bit_count = struct.unpack_from("<QQ", payload, 0)
        (table_len,) = struct.unpack_from("<I", payload, 16)
        table_start = 20
        table_end = table_start + table_len
        if len(payload) < table_end:
            raise CorruptPayloadError("Huffman payload truncated before table end")
        code = HuffmanCode.deserialize_table(payload[table_start:table_end])
        bits = np.unpackbits(np.frombuffer(payload[table_end:], dtype=np.uint8))
        if bits.size < bit_count:
            raise CorruptPayloadError("Huffman payload truncated before bitstream end")
        return self._decode_bits(bits[:bit_count], count, code)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_bits(data: np.ndarray, code: HuffmanCode) -> Tuple[bytes, int]:
        if data.size == 0:
            return b"", 0
        # Map each data symbol to its index in the code book.
        indices = np.searchsorted(np.sort(code.symbols), data)
        sort_order = np.argsort(code.symbols)
        index_of_sorted = sort_order[indices]
        lengths = code.lengths[index_of_sorted]
        codewords = code.codes[index_of_sorted]
        total_bits = int(np.sum(lengths))
        if total_bits > HuffmanCodec._VECTOR_PATH_LIMIT_BITS:
            return HuffmanCodec._encode_bits_per_position(
                codewords, lengths, total_bits, code.max_length
            )
        # Expand every codeword to its bits in one shared-kernel pass.
        from repro.compression.bitstream import expand_msb_first

        return np.packbits(expand_msb_first(codewords, lengths)).tobytes(), total_bits

    @staticmethod
    def _encode_bits_per_position(
        codewords: np.ndarray, lengths: np.ndarray, total_bits: int, max_length: int
    ) -> Tuple[bytes, int]:
        """Low-memory encoder: one pass per bit position of the longest
        codeword (~1 byte per payload bit transient, vs ~30 for the
        single-pass expansion — the symmetric guard to the decode fallback)."""
        ends = np.cumsum(lengths)
        starts = ends - lengths
        bits = np.zeros(total_bits, dtype=np.uint8)
        for j in range(max_length):
            mask = lengths > j
            if not np.any(mask):
                continue
            positions = starts[mask] + j
            shift = (lengths[mask] - 1 - j).astype(np.uint64)
            bits[positions] = ((codewords[mask] >> shift) & np.uint64(1)).astype(np.uint8)
        return np.packbits(bits).tobytes(), total_bits

    @staticmethod
    def _decode_bits(bits: np.ndarray, count: int, code: HuffmanCode) -> np.ndarray:
        if count == 0:
            return np.array([], dtype=np.int64)
        max_length = code.max_length
        if max_length == 0:
            raise CorruptPayloadError("cannot decode with an empty Huffman code book")
        if max_length <= 20:
            return HuffmanCodec._decode_with_table(bits, count, code)
        return HuffmanCodec._decode_bit_by_bit(bits, count, code)

    @staticmethod
    def _build_decode_table(code: HuffmanCode) -> Tuple[np.ndarray, np.ndarray]:
        """Full-window lookup table: window value -> (symbol, consumed bits)."""
        max_length = code.max_length
        table_symbols = np.zeros(1 << max_length, dtype=np.int64)
        table_lengths = np.zeros(1 << max_length, dtype=np.int64)
        for symbol, length, codeword in zip(code.symbols, code.lengths, code.codes, strict=True):
            length = int(length)
            prefix = int(codeword) << (max_length - length)
            span = 1 << (max_length - length)
            table_symbols[prefix : prefix + span] = symbol
            table_lengths[prefix : prefix + span] = length
        return table_symbols, table_lengths

    #: Above this payload size the vectorised walk's ~9 B/bit transient
    #: footprint (windows + jump table + doubling copies) outweighs its speed;
    #: fall back to the 1 B/bit scalar walk instead of risking OOM.
    _VECTOR_PATH_LIMIT_BITS = 1 << 27  # 128 Mibit ≈ 1.2 GB transient

    @staticmethod
    def _decode_with_table(bits: np.ndarray, count: int, code: HuffmanCode) -> np.ndarray:
        max_length = code.max_length
        table_symbols, table_lengths = HuffmanCodec._build_decode_table(code)
        total_bits = int(bits.size)
        if total_bits == 0:
            raise CorruptPayloadError("Huffman bitstream exhausted before all symbols decoded")
        if total_bits > HuffmanCodec._VECTOR_PATH_LIMIT_BITS:
            return HuffmanCodec._decode_with_table_scalar(
                bits, count, code, table_symbols, table_lengths
            )
        # Positions fit int32 for payloads under 2 Gib; large tensors decode in
        # half the transient memory that way.
        position_dtype = np.int32 if total_bits + max_length < 2**31 else np.int64
        # Window value at every bit position (zero-padded past the tail), built
        # with max_length shift/or passes instead of a per-symbol Python loop.
        # max_length <= 20, so windows fit int32.
        padded = np.concatenate([bits, np.zeros(max_length, dtype=np.uint8)]).astype(np.int32)
        windows = np.zeros(total_bits, dtype=np.int32)
        for j in range(max_length):
            windows = (windows << 1) | padded[j : j + total_bits]
        del padded
        # steps[p] = bits consumed by the codeword starting at position p
        # (0 marks an invalid window).  The decode walk is the chain
        # p -> p + steps[p] starting at 0; enumerate it with pointer doubling
        # so the whole walk stays vectorised: after k rounds `visited` holds
        # the first 2**k chain positions and `jump` advances 2**k steps.
        steps = table_lengths[windows].astype(np.int8)
        positions = np.arange(total_bits, dtype=position_dtype)
        advanced = np.minimum(positions + steps, total_bits).astype(position_dtype)
        # Invalid windows self-loop so the chain stalls there instead of
        # running past the corruption; position `total_bits` is absorbing.
        jump = np.append(np.where(steps > 0, advanced, positions), position_dtype(total_bits))
        del positions, advanced
        visited = np.zeros(1, dtype=position_dtype)
        while visited.size < count:
            visited = np.concatenate([visited, jump[visited]])
            jump = jump[jump]
        visited = visited[:count]
        if int(visited[-1]) >= total_bits:
            raise CorruptPayloadError("Huffman bitstream exhausted before all symbols decoded")
        if np.any(steps[visited] == 0):
            raise CorruptPayloadError("invalid Huffman codeword encountered")
        return table_symbols[windows[visited]]

    @staticmethod
    def _decode_with_table_scalar(
        bits: np.ndarray,
        count: int,
        code: HuffmanCode,
        table_symbols: np.ndarray,
        table_lengths: np.ndarray,
    ) -> np.ndarray:
        """Sequential table walk — O(1 byte/bit) memory for huge payloads."""
        max_length = code.max_length
        padded = np.concatenate([bits, np.zeros(max_length, dtype=np.uint8)])
        weights = 1 << np.arange(max_length - 1, -1, -1)
        output = np.empty(count, dtype=np.int64)
        position = 0
        total_bits = bits.size
        for i in range(count):
            if position >= total_bits:
                raise CorruptPayloadError("Huffman bitstream exhausted before all symbols decoded")
            window = int(padded[position : position + max_length] @ weights)
            length = table_lengths[window]
            if length == 0:
                raise CorruptPayloadError("invalid Huffman codeword encountered")
            output[i] = table_symbols[window]
            position += int(length)
        return output

    @staticmethod
    def _decode_bit_by_bit(bits: np.ndarray, count: int, code: HuffmanCode) -> np.ndarray:
        # First-code/offset decoding for canonical codes; used only when the
        # longest codeword would make the lookup table unreasonably large.
        lengths = code.lengths
        first_code: Dict[int, int] = {}
        first_index: Dict[int, int] = {}
        for index, length in enumerate(lengths):
            length = int(length)
            if length not in first_code:
                first_code[length] = int(code.codes[index])
                first_index[length] = index
        counts_per_length = {int(l): int(np.sum(lengths == l)) for l in np.unique(lengths)}
        output = np.empty(count, dtype=np.int64)
        value = 0
        length = 0
        position = 0
        decoded = 0
        while decoded < count:
            if position >= bits.size:
                raise CorruptPayloadError("Huffman bitstream exhausted before all symbols decoded")
            value = (value << 1) | int(bits[position])
            position += 1
            length += 1
            if length in first_code:
                offset = value - first_code[length]
                if 0 <= offset < counts_per_length[length]:
                    output[decoded] = code.symbols[first_index[length] + offset]
                    decoded += 1
                    value = 0
                    length = 0
        return output
