"""Table III — DNN characteristics (parameters, size, % lossy data, FLOPs).

Profiles the three paper-scale architectures with ImageNet-sized (1000-class)
heads, matching how the paper obtained its figures from torchvision
checkpoints.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.reporting import ExperimentResult
from repro.nn.flops import profile_model
from repro.nn.models import create_model

DEFAULT_MODELS: Tuple[str, ...] = ("mobilenetv2", "resnet50", "alexnet")

#: Table III reference values from the paper (for side-by-side comparison).
PAPER_REFERENCE = {
    "mobilenetv2": {"parameters": 3.5e6, "size_mb": 14.0, "lossy_data_percent": 96.94, "flops_g": 0.35},
    "resnet50": {"parameters": 4.5e7, "size_mb": 180.0, "lossy_data_percent": 99.47, "flops_g": 8.0},
    "alexnet": {"parameters": 6.0e7, "size_mb": 230.0, "lossy_data_percent": 99.98, "flops_g": 0.75},
}


def run_table3(
    models: Sequence[str] = DEFAULT_MODELS,
    num_classes: int = 1000,
    input_size: int = 224,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table III (parameters, size, % lossy data, FLOPs per model)."""
    result = ExperimentResult(
        name="Table III — DNNs for FedSZ profiling",
        description="Parameters, state size, share of lossy-eligible data and FLOPs per model.",
    )
    for model_name in models:
        model = create_model(model_name, "paper", num_classes=num_classes, seed=seed)
        profile = profile_model(model, model_name, (3, input_size, input_size))
        reference = PAPER_REFERENCE.get(model_name, {})
        result.add_row(
            model=model_name,
            parameters=profile.parameter_count,
            size_mb=profile.state_nbytes / 1e6,
            lossy_data_percent=100.0 * profile.lossy_fraction,
            flops_g=profile.flops / 1e9,
            paper_parameters=reference.get("parameters"),
            paper_size_mb=reference.get("size_mb"),
            paper_lossy_percent=reference.get("lossy_data_percent"),
        )
    result.add_note(
        "FLOPs are 2x multiply-accumulates at 224x224 input; the paper mixes MAC and "
        "FLOP conventions across rows, so absolute values differ by up to 2x."
    )
    result.add_note(
        "The paper lists ResNet50 at 45M parameters / 180MB; the standard torchvision "
        "ResNet-50 reproduced here has 25.6M / ~102MB."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table3().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
