"""Live-monitor acceptance tests.

Two guarantees are pinned here:

* **passivity** — a monitored serial run is bit-identical to an unmonitored
  one (``deterministic_rows()`` and final weights), because the monitor only
  reads completed records;
* **liveness** — while the runtime is mid-run, the stdlib HTTP endpoint
  serves a consistent snapshot whose round count is strictly between 0 and
  the target (polled from a subscriber on the round-completed event).
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core import FedSZCompressor
from repro.data import load_dataset
from repro.fl import FederatedRuntime, FLConfig, LinkSpec, Transport
from repro.nn.models import create_model
from repro.obs import MonitorServer, RunMonitor
from repro.obs.monitor import ROUND_COMPLETED


@pytest.fixture(scope="module")
def data():
    full = load_dataset("cifar10", num_samples=160, image_size=8, seed=0)
    return full.split(0.75, seed=1)


def _build_runtime(data, monitor=None, rounds: int = 2) -> FederatedRuntime:
    train, val = data
    return FederatedRuntime(
        lambda: create_model("resnet18", "tiny", num_classes=10, seed=7),
        train,
        val,
        FLConfig(num_clients=3, rounds=rounds, batch_size=16, local_epochs=1, seed=3),
        codec=FedSZCompressor(error_bound=1e-2),
        transport=Transport.heterogeneous(
            [LinkSpec(bandwidth_mbps=bw, dropout_probability=0.3) for bw in (5.0, 10.0, 25.0)]
        ),
        monitor=monitor,
    )


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def test_monitored_run_is_bit_identical_to_unmonitored(data):
    plain = _build_runtime(data)
    plain.run()
    plain.close()

    monitor = RunMonitor()
    observed = _build_runtime(data, monitor=monitor)
    observed.run()
    observed.close()

    assert observed.history.deterministic_rows() == plain.history.deterministic_rows()
    plain_state = plain.server.global_state()
    observed_state = observed.server.global_state()
    assert plain_state.keys() == observed_state.keys()
    for name in plain_state:
        np.testing.assert_array_equal(plain_state[name], observed_state[name], err_msg=name)

    snapshot = monitor.snapshot()
    assert snapshot["status"] == "completed"
    assert snapshot["progress"]["rounds_completed"] == 2
    assert len(snapshot["rounds"]) == 2
    assert snapshot["run"]["codec"] == "FedSZCompressor"
    assert len(snapshot["codec"]["error_bound_trajectory"]) == 2


def test_live_endpoint_serves_mid_run_snapshots(data):
    monitor = RunMonitor()
    mid_run = []

    with MonitorServer(monitor, port=0) as server:
        def poll(event):
            if event.kind == ROUND_COMPLETED:
                mid_run.append(_get_json(f"{server.url}/api/status"))

        monitor.subscribe(poll)
        runtime = _build_runtime(data, monitor=monitor, rounds=3)
        runtime.run()
        runtime.close()

        final = _get_json(f"{server.url}/api/status")

    assert [s["progress"]["rounds_completed"] for s in mid_run] == [1, 2, 3]
    assert mid_run[0]["status"] == "running"
    assert 0 < mid_run[0]["progress"]["fraction"] < 1
    assert final["status"] == "completed"
    assert final["progress"]["rounds_completed"] == 3
    assert len(final["codec"]["ratio_trajectory"]) == 3
    assert all(ratio > 1.0 for ratio in final["codec"]["ratio_trajectory"])
    assert {c["client_id"] for c in final["clients"]} == {0, 1, 2}


def test_api_routes_and_dashboard(data):
    monitor = RunMonitor()
    runtime = _build_runtime(data, monitor=monitor)
    runtime.run()
    runtime.close()

    with MonitorServer(monitor, port=0) as server:
        health = _get_json(f"{server.url}/api/health")
        assert health == {"ok": True, "status": "completed", "rounds_completed": 2}

        rounds = _get_json(f"{server.url}/api/rounds")
        assert [r["round"] for r in rounds["rounds"]] == [0, 1]
        assert set(rounds["codec"]) == {
            "error_bound_trajectory", "ratio_trajectory", "bound_utilization_trajectory",
        }

        clients = _get_json(f"{server.url}/api/clients")
        ranking = [
            (-c["dropped"], -c["stragglers"], -c["max_turnaround_seconds"], c["client_id"])
            for c in clients["clients"]
        ]
        assert ranking == sorted(ranking)
        assert all("mean_turnaround_seconds" in c for c in clients["clients"])

        with urllib.request.urlopen(f"{server.url}/", timeout=10) as response:
            page = response.read().decode("utf-8")
        assert "repro fleet monitor" in page and "/api/status" in page

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/api/nope", timeout=10)
        assert excinfo.value.code == 404


def test_checkpoint_hook_feeds_age_display(data, tmp_path):
    ticks = iter(range(100))
    monitor = RunMonitor(clock=lambda: float(next(ticks)))
    runtime = _build_runtime(data, monitor=monitor)
    runtime.run(checkpoint_dir=tmp_path, checkpoint_every=1)
    runtime.close()

    snapshot = monitor.snapshot()
    assert snapshot["checkpoint"]["count"] == 2
    assert snapshot["checkpoint"]["last_round"] == 1
    assert snapshot["checkpoint"]["rounds_behind"] == 0
    # The fake clock ticks once per observation, so age is a positive integer.
    assert snapshot["checkpoint"]["age_seconds"] > 0


def test_monitor_unit_behaviour():
    monitor = RunMonitor(max_events=4, clock=lambda: 0.0)
    seen = []
    monitor.subscribe(seen.append)
    monitor.subscribe(lambda event: (_ for _ in ()).throw(RuntimeError("boom")))

    for index in range(6):
        monitor.emit("tick", index=index)
    # Bounded log keeps the newest events; the raising subscriber never
    # disturbs the run or the healthy subscriber.
    assert len(monitor.events()) == 4
    assert [e.payload["index"] for e in monitor.events()] == [2, 3, 4, 5]
    assert len(seen) == 6

    monitor.fault_injected(3, RuntimeError("injected server crash"))
    monitor.run_finished(status="crashed", error=RuntimeError("injected server crash"))
    snapshot = monitor.snapshot()
    assert snapshot["status"] == "crashed"
    assert snapshot["faults"] == [
        {"round": 3, "kind": "RuntimeError", "detail": "injected server crash"}
    ]


def test_snapshot_is_a_deep_copy():
    monitor = RunMonitor(clock=lambda: 0.0)
    first = monitor.snapshot()
    first["rounds"].append({"round": 99})
    assert monitor.snapshot()["rounds"] == []


def test_concurrent_snapshots_do_not_race():
    monitor = RunMonitor(clock=lambda: 0.0)
    errors = []

    def reader():
        try:
            for _ in range(200):
                json.dumps(monitor.snapshot())
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for index in range(200):
        monitor.emit("tick", index=index)
    for thread in threads:
        thread.join()
    assert errors == []
