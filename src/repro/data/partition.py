"""Client data partitioning for federated simulations.

FedAvg experiments in the paper use four clients with local data.  The
partitioners here split a dataset into per-client index sets either IID
(uniform random) or non-IID (Dirichlet label skew, the standard benchmark
protocol), so the federated runtime can exercise both regimes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.datasets import SyntheticImageDataset


def iid_partition(
    dataset: SyntheticImageDataset, num_clients: int, seed: int = 0
) -> List[np.ndarray]:
    """Uniformly random, equally sized client splits."""
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    if len(dataset) < num_clients:
        raise ValueError(
            f"cannot split {len(dataset)} samples across {num_clients} clients"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    return [np.sort(chunk) for chunk in np.array_split(order, num_clients)]


def dirichlet_partition(
    dataset: SyntheticImageDataset,
    num_clients: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_samples_per_client: int = 2,
) -> List[np.ndarray]:
    """Label-skewed splits drawn from a Dirichlet(α) distribution per class.

    Smaller ``alpha`` produces more heterogeneous clients.  The partitioner
    retries until every client holds at least ``min_samples_per_client``
    samples so that local training is always possible.
    """
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = np.random.default_rng(seed)
    labels = dataset.labels
    for _ in range(100):
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for class_id in range(dataset.num_classes):
            class_positions = np.nonzero(labels == class_id)[0]
            if class_positions.size == 0:
                continue
            rng.shuffle(class_positions)
            proportions = rng.dirichlet([alpha] * num_clients)
            boundaries = (np.cumsum(proportions)[:-1] * class_positions.size).astype(int)
            for client_id, chunk in enumerate(np.split(class_positions, boundaries)):
                client_indices[client_id].extend(chunk.tolist())
        sizes = [len(indices) for indices in client_indices]
        if min(sizes) >= min_samples_per_client:
            return [np.sort(np.array(indices, dtype=np.int64)) for indices in client_indices]
    raise RuntimeError(
        "dirichlet_partition failed to produce a partition where every client "
        f"holds at least {min_samples_per_client} samples; increase alpha or the dataset size"
    )


def partition_dataset(
    dataset: SyntheticImageDataset,
    num_clients: int,
    strategy: str = "iid",
    alpha: float = 0.5,
    seed: int = 0,
) -> List[SyntheticImageDataset]:
    """Split a dataset into per-client datasets using the chosen strategy."""
    if strategy == "iid":
        index_sets = iid_partition(dataset, num_clients, seed)
    elif strategy == "dirichlet":
        index_sets = dirichlet_partition(dataset, num_clients, alpha=alpha, seed=seed)
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}; expected 'iid' or 'dirichlet'")
    return [dataset.subset(indices) for indices in index_sets]


def label_distribution(datasets: List[SyntheticImageDataset], num_classes: int) -> np.ndarray:
    """Per-client label histogram, shape ``(clients, classes)`` — useful for
    checking how heterogeneous a partition is."""
    histogram = np.zeros((len(datasets), num_classes), dtype=np.int64)
    for client_id, client_dataset in enumerate(datasets):
        counts = np.bincount(client_dataset.labels, minlength=num_classes)
        histogram[client_id] = counts
    return histogram
