"""Tests for the benchmark workload registry and the CLI bench runner."""

from __future__ import annotations

import json

import pytest

from repro.bench import available_workloads, get_workload, run_workload, validate_report
from repro.cli import main


def test_registry_contains_the_documented_workloads():
    names = {spec.name for spec in available_workloads()}
    assert {
        "tiny", "huffman", "bitstream", "codecs", "fl_round", "codec_parallel",
        "checkpoint",
    } <= names


def test_committed_checkpoint_baseline_is_valid():
    from pathlib import Path

    baseline = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "baselines" / "checkpoint.json"
    )
    report = json.loads(baseline.read_text())
    validate_report(report)
    assert report["workload"] == "checkpoint"
    assert {
        "checkpoint_tiny_snapshot",
        "checkpoint_tiny_restore",
        "checkpoint_paper_snapshot",
        "checkpoint_paper_restore",
    } <= set(report["metrics"])


def test_committed_codec_parallel_baseline_is_valid():
    from pathlib import Path

    baseline = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "baselines" / "codec_parallel.json"
    )
    report = json.loads(baseline.read_text())
    validate_report(report)
    assert report["workload"] == "codec_parallel"
    assert {"codec_parallel_serial", "codec_parallel_workers4"} <= set(report["metrics"])


def test_get_workload_is_case_insensitive_and_rejects_unknown():
    assert get_workload("TINY").name == "tiny"
    with pytest.raises(KeyError):
        get_workload("does-not-exist")


def test_tiny_workload_produces_expected_metrics():
    records = run_workload("tiny", warmup=0, repeats=1)
    names = [record.name for record in records]
    assert "huffman_encode" in names
    assert "huffman_decode" in names
    assert "pack_bit_flags" in names
    assert "codec_sz2_roundtrip" in names
    assert "fl_round_tiny" in names
    for record in records:
        assert record.seconds >= 0.0
    codec = next(record for record in records if record.name == "codec_sz2_roundtrip")
    assert set(codec.phases) == {"compress", "decompress"}
    assert codec.extra["ratio"] > 1.0


def test_cli_bench_writes_schema_versioned_json(tmp_path, capsys):
    destination = tmp_path / "BENCH_tiny.json"
    assert main(
        ["bench", "--workload", "tiny", "--out", str(destination),
         "--warmup", "0", "--repeats", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "BENCH tiny" in out
    assert str(destination) in out
    report = json.loads(destination.read_text())
    validate_report(report)
    assert report["workload"] == "tiny"
    assert report["config"] == {"warmup": 0, "repeats": 1}


def test_cli_bench_list_and_unknown_workload(capsys):
    assert main(["bench", "list"]) == 0
    assert "tiny" in capsys.readouterr().out
    assert main(["bench", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_committed_tiny_baseline_is_valid():
    from pathlib import Path

    baseline = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines" / "tiny.json"
    report = json.loads(baseline.read_text())
    validate_report(report)
    assert report["workload"] == "tiny"
    current_names = {record.name for record in run_workload("tiny", warmup=0, repeats=1)}
    # The gate fails on metrics missing from a run, so the committed baseline
    # must never reference metrics the workload no longer produces.
    assert set(report["metrics"]) <= current_names
