"""Thread-safe in-process event bus over a running federated fleet.

:class:`RunMonitor` is the write side of the observability layer: the
runtime calls its four hook methods (``run_started`` / ``round_completed`` /
``checkpoint_written`` / ``fault_injected`` / ``run_finished``) as a run
progresses, and any number of reader threads — the HTTP status server, tests,
a notebook — call :meth:`RunMonitor.snapshot` to get a JSON-compatible view
of the fleet at that instant.

Design constraints, in order:

1. **Passivity.**  The monitor only ever *reads* completed round records and
   cache counters.  It draws from no RNG stream, mutates no runtime state and
   swallows subscriber exceptions, so attaching it cannot change a run's
   simulated outcome (``tests/obs/test_monitor_server.py`` pins monitored ==
   unmonitored bit-for-bit).
2. **Thread safety.**  Every mutation and every snapshot happens under one
   lock; snapshots deep-copy the aggregated state so readers can serialize it
   without racing the training loop.
3. **Bounded memory.**  The raw event log is a bounded deque; the aggregated
   per-round/per-client state is O(rounds + clients), which is what the
   dashboard actually renders.

Wall-clock timestamps (``time.time``) appear *only* in monitor data — they
feed checkpoint-age display and never flow back into the simulation.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Event kinds the runtime emits, in lifecycle order.
RUN_STARTED = "run-started"
ROUND_COMPLETED = "round-completed"
CHECKPOINT_WRITTEN = "checkpoint-written"
FAULT_INJECTED = "fault-injected"
RUN_FINISHED = "run-finished"


@dataclass(frozen=True)
class MonitorEvent:
    """One observation pushed through the bus."""

    kind: str
    wall_time: float
    payload: Dict[str, object] = field(default_factory=dict)


def _round_row(record) -> Dict[str, object]:
    """Compact JSON-compatible view of one completed round."""
    return {
        "round": record.round_index,
        "accuracy": record.global_accuracy,
        "loss": record.global_loss,
        "participants": record.participating_clients,
        "dropped": record.dropped_clients,
        "stragglers": record.straggler_clients,
        "uplink_mb": record.uplink_bytes / 1e6,
        "downlink_mb": record.downlink_bytes / 1e6,
        "ratio": record.mean_compression_ratio,
        "error_bound": record.error_bound,
        "max_bound_utilization": record.max_bound_utilization,
        "simulated_seconds": record.simulated_round_seconds,
    }


class RunMonitor:
    """Aggregating event bus for one federated run (see module docstring)."""

    def __init__(
        self, max_events: int = 4096, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self._lock = threading.RLock()
        # Late-bound so monkeypatched/sanitized time.time is honoured; the
        # default wall clock feeds monitor data only, never simulation state.
        self._clock = clock if clock is not None else time.time  # repro-lint: disable=DET005 -- monitor timestamps are observational; callers inject a deterministic clock in tests
        self._events: deque = deque(maxlen=max_events)
        self._subscribers: List[Callable[[MonitorEvent], None]] = []
        self._status = "idle"
        self._run: Dict[str, object] = {}
        self._rounds: List[Dict[str, object]] = []
        self._clients: Dict[int, Dict[str, object]] = {}
        self._faults: List[Dict[str, object]] = []
        self._checkpoint: Dict[str, object] = {}
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Bus primitives
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[MonitorEvent], None]) -> None:
        """Register a callback invoked on the emitting thread for every event.

        Callbacks run *outside* the bus lock (so they may call
        :meth:`snapshot`, or block on a reader that does, without
        deadlocking) and their exceptions are swallowed: observability must
        never be able to kill the run it observes.
        """
        with self._lock:
            self._subscribers.append(callback)

    def emit(self, kind: str, **payload) -> MonitorEvent:
        """Append one event to the log and fan it out to subscribers."""
        event = MonitorEvent(kind=kind, wall_time=self._clock(), payload=payload)
        with self._lock:
            self._events.append(event)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:  # repro-lint: disable=DET004 -- monitor stays passive; a broken subscriber must not touch the run
                pass
        return event

    # ------------------------------------------------------------------
    # Runtime-facing hooks
    # ------------------------------------------------------------------
    def run_started(self, runtime, target_rounds: int) -> None:
        """Record run metadata when :meth:`FederatedRuntime.run` begins."""
        codec = runtime.codec
        with self._lock:
            self._status = "running"
            self._run = {
                "target_rounds": int(target_rounds),
                "rounds_at_start": len(runtime.history),
                "num_clients": len(runtime.clients),
                "scheduler": getattr(runtime.scheduler, "name", type(runtime.scheduler).__name__),
                "executor": getattr(runtime.executor, "name", type(runtime.executor).__name__),
                "codec": type(codec).__name__ if codec is not None else None,
                "started_at": self._clock(),
                "finished_at": None,
                "error": None,
            }
        self.emit(RUN_STARTED, target_rounds=int(target_rounds))

    def round_completed(self, record, runtime=None) -> None:
        """Fold one completed :class:`~repro.fl.history.RoundRecord` in."""
        row = _round_row(record)
        with self._lock:
            if self._status == "idle":
                self._status = "running"
            self._rounds.append(row)
            for stat in record.client_stats:
                client = self._clients.setdefault(
                    stat.client_id,
                    {
                        "client_id": stat.client_id,
                        "rounds": 0,
                        "dropped": 0,
                        "stragglers": 0,
                        "total_turnaround_seconds": 0.0,
                        "max_turnaround_seconds": 0.0,
                        "last_ratio": 1.0,
                        "max_bound_utilization": 0.0,
                    },
                )
                client["rounds"] += 1
                client["dropped"] += 0 if stat.delivered else 1
                client["stragglers"] += 1 if (stat.delivered and not stat.aggregated) else 0
                client["total_turnaround_seconds"] += stat.turnaround_seconds
                client["max_turnaround_seconds"] = max(
                    client["max_turnaround_seconds"], stat.turnaround_seconds
                )
                client["last_ratio"] = stat.compression_ratio
                client["max_bound_utilization"] = max(
                    client["max_bound_utilization"], stat.bound_utilization
                )
            if runtime is not None:
                cache = getattr(runtime, "broadcast_cache", None)
                if cache is not None:
                    self._cache = {
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "serializations": cache.serializations,
                        "compressions": cache.compressions,
                    }
        self.emit(ROUND_COMPLETED, **row)

    def checkpoint_written(self, round_index: int, path) -> None:
        """Record a persisted snapshot (drives the checkpoint-age display)."""
        with self._lock:
            self._checkpoint = {
                "last_round": int(round_index),
                "path": str(path),
                "written_at": self._clock(),
                "count": int(self._checkpoint.get("count", 0)) + 1,
            }
        self.emit(CHECKPOINT_WRITTEN, round=int(round_index), path=str(path))

    def fault_injected(self, round_index: int, fault: BaseException) -> None:
        """Record an injected failure firing after ``round_index``."""
        entry = {
            "round": int(round_index),
            "kind": type(fault).__name__,
            "detail": str(fault),
        }
        with self._lock:
            self._faults.append(entry)
        self.emit(
            FAULT_INJECTED,
            round=entry["round"],
            fault_kind=entry["kind"],
            detail=entry["detail"],
        )

    def run_finished(self, status: str = "completed", error: Optional[BaseException] = None) -> None:
        """Mark the run over (``status`` is ``"completed"`` or ``"crashed"``)."""
        with self._lock:
            self._status = status
            if self._run:
                self._run["finished_at"] = self._clock()
                self._run["error"] = None if error is None else f"{type(error).__name__}: {error}"
        self.emit(RUN_FINISHED, status=status)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-compatible deep copy of the aggregated live state."""
        with self._lock:
            now = self._clock()
            rounds_completed = len(self._rounds)
            target = int(self._run.get("target_rounds", 0) or 0)
            checkpoint = dict(self._checkpoint)
            if checkpoint:
                checkpoint["age_seconds"] = max(0.0, now - float(checkpoint["written_at"]))
                checkpoint["rounds_behind"] = max(
                    0, (self._rounds[-1]["round"] if self._rounds else 0) - checkpoint["last_round"]
                )
            return {
                "status": self._status,
                "run": copy.deepcopy(self._run),
                "progress": {
                    "rounds_completed": rounds_completed,
                    "target_rounds": target,
                    "fraction": (rounds_completed / target) if target else 0.0,
                },
                "rounds": copy.deepcopy(self._rounds),
                "clients": copy.deepcopy(sorted(self._clients.values(), key=lambda c: c["client_id"])),
                "codec": {
                    "error_bound_trajectory": [r["error_bound"] for r in self._rounds],
                    "ratio_trajectory": [r["ratio"] for r in self._rounds],
                    "bound_utilization_trajectory": [
                        r["max_bound_utilization"] for r in self._rounds
                    ],
                },
                "broadcast_cache": dict(self._cache),
                "checkpoint": checkpoint,
                "faults": copy.deepcopy(self._faults),
                "event_count": len(self._events),
            }

    def events(self) -> List[MonitorEvent]:
        """The retained event log (newest last)."""
        with self._lock:
            return list(self._events)


__all__ = [
    "MonitorEvent",
    "RunMonitor",
    "RUN_STARTED",
    "ROUND_COMPLETED",
    "CHECKPOINT_WRITTEN",
    "FAULT_INJECTED",
    "RUN_FINISHED",
]
