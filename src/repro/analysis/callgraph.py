"""Project-wide symbol table and call graph for ``repro lint --deep``.

The shallow engine (:mod:`repro.analysis.engine`) hands each rule one module
at a time; the properties the integration suites actually enforce — lock
discipline, pickle-safety across the fork boundary, clock/RNG taint reaching
deterministic fields — are *whole-program* properties.  This module builds
the shared substrate every deep rule consumes:

* a **symbol table**: every module, class and function under the linted
  paths, keyed by fully-qualified dotted name (``repro.fl.events.EventQueue``);
* a **call graph**: resolved call edges through import aliases, ``self.``
  method dispatch, ``super()`` dispatch, decorator application and
  ``register_*``-style callback registration;
* **per-entity facts** extracted in one AST pass per module — attribute
  access discipline (read/write/mutate × under-which-lock), annotated field
  types, local taint summaries (see :mod:`repro.analysis.dataflow`), event
  ``kind`` pushes and dispatch comparisons, checkpoint-protocol coverage —
  so each deep rule is a pure graph/set computation over plain data.

Because rules consume *facts* rather than ASTs, the whole index serializes
to JSON.  :meth:`ProjectIndex.load_or_build` keys an on-disk cache on a
content hash over every input file, so a rerun with unchanged sources skips
parsing entirely (the expensive part) and deep lint becomes a cache read
plus set algebra.  Any edited byte changes the digest and forces a rebuild.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleContext

#: Bump when the extracted fact schema changes: stale cache files from an
#: older extractor must miss, not half-deserialize.
INDEX_FORMAT_VERSION = 1

#: Cache directory created next to the linted tree (gitignored).
DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: ``threading`` primitives whose ``self.<attr> = threading.X()`` binding
#: makes a class *lock-owning* for the CONC rules.  ``Condition`` counts: its
#: default internal lock is an RLock and ``with self._condition:`` is the
#: guard idiom the pool uses.
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})

#: Method calls that mutate their receiver in place (``self.x.append(...)``
#: is a write to ``x`` for lock-discipline and checkpoint-coverage purposes).
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "setdefault",
    "push", "sort", "reverse",
})

#: RNG draw methods: calling one advances the generator's hidden state, so a
#: draw on ``self._rng`` *evolves* the attribute exactly like an assignment
#: (the checkpoint protocol must capture it or resume diverges).
_RNG_DRAW_METHODS = frozenset({
    "normal", "standard_normal", "uniform", "random", "integers", "choice",
    "shuffle", "permutation", "laplace", "exponential", "poisson",
    "binomial", "bytes",
})

#: Wall-clock callables that are banned as *values* too: binding
#: ``time.time`` to an attribute dodges DET002's call-site check, so the
#: deep taint rule flags the binding itself (suppressible where sanctioned).
_BANNED_CLOCK_VALUES = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Timing calls whose results are tainted (mirrors rule_wallclock).
_TIMING_SOURCES = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
}) | _BANNED_CLOCK_VALUES

#: Host-entropy calls whose results are tainted with the ``entropy`` atom.
_ENTROPY_SOURCES = frozenset({
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
})

#: ``default_rng()`` / ``SeedSequence()`` with **no arguments** seed from OS
#: entropy — a determinism hazard DET001 cannot see (the call itself is legal
#: when seeded).
_ENTROPY_IF_UNSEEDED = frozenset({
    "numpy.random.default_rng", "numpy.random.SeedSequence",
})


def module_name_for_path(path) -> str:
    """Dotted module name for ``path`` by walking up ``__init__.py`` parents.

    ``src/repro/fl/events.py`` → ``repro.fl.events`` (``src`` has no
    ``__init__.py``, so the package root is ``repro``).  A loose file with no
    package parents is just its stem.  Used for real files; in-memory sources
    go through :func:`module_name_for_source_path`.
    """
    p = Path(path)
    parts: List[str] = [] if p.stem == "__init__" else [p.stem]
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else p.stem


def module_name_for_source_path(path: str) -> str:
    """Dotted module name from a path *string* (no filesystem access).

    Strips everything up to and including a ``src`` component, then joins the
    rest — the convention the fixture tests already use
    (``src/repro/fake/module.py`` → ``repro.fake.module``).
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "module"


# ----------------------------------------------------------------------
# Fact dataclasses (everything here round-trips through JSON)
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One resolved call: who is called, from where, with which tainted args."""

    callee: str
    line: int
    col: int
    #: ``[(param_name_or_positional_index, [taint atoms...]), ...]`` for
    #: arguments whose expression carried any taint atom (see dataflow.py).
    tainted_args: List[Tuple[str, List[str]]] = field(default_factory=list)


@dataclass
class AttributeAccess:
    """One ``self.<attr>`` access inside a method."""

    attr: str
    kind: str  # "read" | "write" | "mutate"
    method: str
    line: int
    col: int
    #: Name of the lock attribute whose ``with self.<lock>:`` block encloses
    #: this access, or ``None`` when unguarded.
    under_lock: Optional[str] = None


@dataclass
class FieldFact:
    """One annotated class-level field and its resolved type names."""

    name: str
    line: int
    col: int
    #: Every identifier in the annotation, resolved where possible
    #: (``LinkSpec`` → ``repro.fl.transport.LinkSpec``) plus the raw tail
    #: names (for forbidden-type matching on unresolvable externals).
    type_names: List[str] = field(default_factory=list)


@dataclass
class SinkFact:
    """A value flowing into a deterministic field or checkpoint state."""

    sink: str  # field name, or "<checkpoint-state>"
    line: int
    col: int
    atoms: List[str] = field(default_factory=list)


@dataclass
class FunctionFact:
    """One module-level function or method, with its local taint summary."""

    qualname: str
    name: str
    path: str
    line: int
    col: int
    class_name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    decorators: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: Taint atoms the return value may carry (see dataflow.py).
    return_atoms: List[str] = field(default_factory=list)
    sinks: List[SinkFact] = field(default_factory=list)


@dataclass
class ClassFact:
    """One class: fields, methods, lock discipline, checkpoint coverage."""

    qualname: str
    name: str
    path: str
    line: int
    col: int
    bases: List[str] = field(default_factory=list)
    is_dataclass: bool = False
    worker_crossing: bool = False
    defines_deterministic_rows: bool = False
    fields: List[FieldFact] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    lock_attrs: List[str] = field(default_factory=list)
    accesses: List[AttributeAccess] = field(default_factory=list)
    #: ``self.<attr>`` names referenced anywhere inside ``checkpoint_state``.
    checkpoint_reads: List[str] = field(default_factory=list)
    #: ``self.<attr>`` names (re)assigned or mutated in
    #: ``restore_checkpoint_state``.
    restore_writes: List[str] = field(default_factory=list)


@dataclass
class ModuleFact:
    """Per-module facts that are not per-function or per-class."""

    path: str
    module: str
    #: ``{line: [RULE, ...]}`` copied from the shallow engine's suppression
    #: scan, so deep findings honour the same inline-disable comments.
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    #: Module-level string constants: ``{local_name: (qualname, line, col)}``.
    constants: Dict[str, Tuple[str, int, int]] = field(default_factory=dict)
    #: Constant qualnames used as the ``kind=`` of a constructed event, with
    #: one representative push site each.
    kind_pushes: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Constant qualnames some ``<expr>.kind`` is compared against.
    kind_dispatches: List[str] = field(default_factory=list)
    #: ``{SET_NAME: [entries...]}`` for DETERMINISTIC_*/OBSERVATIONAL_*
    #: field-classification frozensets (see rule_exhaustiveness).
    classification_sets: Dict[str, List[str]] = field(default_factory=dict)
    has_deterministic_rows: bool = False
    #: Banned wall-clock callables referenced as *values*: ``(qualname,
    #: line, col)`` per binding.
    clock_bindings: List[Tuple[str, int, int]] = field(default_factory=list)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _shallow_walk(node: ast.AST, *, skip_types=(ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
    """Yield descendants of ``node`` without entering nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, skip_types):
            stack.extend(ast.iter_child_nodes(child))


class _ModuleExtractor:
    """One-pass fact extraction for a single module."""

    def __init__(self, context: ModuleContext, module_name: str) -> None:
        self.ctx = context
        self.module = module_name
        self.module_fact = ModuleFact(
            path=context.path,
            module=module_name,
            suppressions={
                line: sorted(rules) for line, rules in context.suppressions.items()
            },
        )
        self.functions: List[FunctionFact] = []
        self.classes: List[ClassFact] = []
        #: Module-level definition names, for resolving local references.
        self._local_defs: Set[str] = set()

    # -- name resolution ------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Qualname of a Name/Attribute chain: imports first, then module
        locals (``CLIENT_COMPLETION`` defined here → ``<module>.CLIENT_COMPLETION``)."""
        resolved = self.ctx.resolve(node)
        if resolved is not None:
            # Normalise the one alias the taint sources care about.
            return resolved.replace("np.", "numpy.", 1) if resolved.startswith("np.") else resolved
        dotted = self.ctx.dotted_name(node)
        if dotted is None:
            return None
        head = dotted.partition(".")[0]
        if head in self._local_defs:
            return f"{self.module}.{dotted}"
        return None

    # -- extraction entry point -----------------------------------------
    def extract(self) -> None:
        tree = self.ctx.tree
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._local_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._local_defs.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self._local_defs.add(node.target.id)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.append(self._extract_function(node, class_name=None, class_fact=None))
            elif isinstance(node, ast.ClassDef):
                self._extract_class(node)
            elif isinstance(node, ast.Assign):
                self._extract_module_constant(node)

        self._extract_kind_usage(tree)
        self._extract_clock_bindings(tree)

    # -- module-level constants and classification sets ------------------
    def _extract_module_constant(self, node: ast.Assign) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            self.module_fact.constants[name] = (
                f"{self.module}.{name}", node.lineno, node.col_offset,
            )
            return
        entries = self._string_set_entries(value)
        if entries is not None and (
            name.startswith("DETERMINISTIC_") or name.startswith("OBSERVATIONAL_")
        ) and name.endswith("_FIELDS"):
            self.module_fact.classification_sets[name] = entries

    @staticmethod
    def _string_set_entries(value: ast.AST) -> Optional[List[str]]:
        """Entries of a ``frozenset({...})`` / set / tuple / list of strings."""
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) and value.func.id in ("frozenset", "set") and len(value.args) == 1:
            value = value.args[0]
        if not isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            return None
        entries: List[str] = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            entries.append(element.value)
        return entries

    # -- event kinds ------------------------------------------------------
    def _extract_kind_usage(self, tree: ast.Module) -> None:
        fact = self.module_fact
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg != "kind":
                        continue
                    resolved = self.resolve(keyword.value)
                    if resolved is not None and resolved not in fact.kind_pushes:
                        fact.kind_pushes[resolved] = (node.lineno, node.col_offset)
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if not any(
                    isinstance(side, ast.Attribute) and side.attr == "kind"
                    for side in sides
                ):
                    continue
                if not all(isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)) for op in node.ops):
                    continue
                for side in sides:
                    if isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                        candidates = side.elts
                    else:
                        candidates = [side]
                    for candidate in candidates:
                        resolved = self.resolve(candidate)
                        if resolved is not None and resolved not in fact.kind_dispatches:
                            fact.kind_dispatches.append(resolved)

    # -- clock-value bindings --------------------------------------------
    def _extract_clock_bindings(self, tree: ast.Module) -> None:
        call_funcs = {
            id(node.func) for node in ast.walk(tree) if isinstance(node, ast.Call)
        }
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if id(node) in call_funcs:
                continue  # a call site — DET002's territory
            resolved = self.resolve(node)
            if resolved in _BANNED_CLOCK_VALUES:
                self.module_fact.clock_bindings.append(
                    (resolved, node.lineno, node.col_offset)
                )
        # An Attribute's inner Name would double-report; keep outermost only.
        self.module_fact.clock_bindings = _outermost_only(self.module_fact.clock_bindings)

    # -- classes ----------------------------------------------------------
    def _extract_class(self, cls: ast.ClassDef) -> None:
        from repro.analysis.rule_fork_safety import _is_worker_crossing

        fact = ClassFact(
            qualname=f"{self.module}.{cls.name}",
            name=cls.name,
            path=self.ctx.path,
            line=cls.lineno,
            col=cls.col_offset,
            worker_crossing=_is_worker_crossing(self.ctx, cls),
        )
        for base in cls.bases:
            resolved = self.resolve(base) or self.ctx.dotted_name(base)
            if resolved:
                fact.bases.append(resolved)
        for decorator in cls.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = self.resolve(target) or self.ctx.dotted_name(target) or ""
            if resolved.rpartition(".")[2] == "dataclass":
                fact.is_dataclass = True

        for item in cls.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                fact.fields.append(
                    FieldFact(
                        name=item.target.id,
                        line=item.lineno,
                        col=item.col_offset,
                        type_names=self._annotation_names(item.annotation),
                    )
                )
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fact.methods.append(item.name)
                if item.name == "deterministic_rows":
                    fact.defines_deterministic_rows = True
                    self.module_fact.has_deterministic_rows = True

        # Lock attributes first (they shape the access pass).
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(item):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                resolved = self.resolve(node.value.func) or ""
                if resolved not in _LOCK_FACTORIES and resolved.rpartition(".")[2] not in {
                    factory.rpartition(".")[2] for factory in _LOCK_FACTORIES
                }:
                    continue
                if not resolved.startswith("threading.") and resolved not in _LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in fact.lock_attrs
                    ):
                        fact.lock_attrs.append(target.attr)

        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_accesses(item, fact)
                self.functions.append(
                    self._extract_function(item, class_name=cls.name, class_fact=fact)
                )
        self.classes.append(fact)

    def _annotation_names(self, annotation: ast.AST) -> List[str]:
        names: List[str] = []
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                resolved = self.resolve(node)
                dotted = self.ctx.dotted_name(node)
                for candidate in (resolved, dotted):
                    if candidate and candidate not in names:
                        names.append(candidate)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # String annotation: pull identifiers out and resolve each.
                try:
                    parsed = ast.parse(node.value, mode="eval")
                except SyntaxError:
                    continue
                names.extend(
                    name for name in self._annotation_names(parsed.body)
                    if name not in names
                )
        return names

    def _extract_accesses(self, method: ast.FunctionDef, fact: ClassFact) -> None:
        """Record every ``self.<attr>`` read/write/mutate with lock context."""
        lock_attrs = set(fact.lock_attrs)
        accesses = fact.accesses

        def self_attr(node: ast.AST) -> Optional[str]:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node.attr
            return None

        def visit(node: ast.AST, under: Optional[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)) and node is not method:
                return
            if isinstance(node, ast.With):
                held = under
                for item in node.items:
                    attr = self_attr(item.context_expr)
                    if attr in lock_attrs:
                        held = attr
                for item in node.items:
                    visit(item.context_expr, under)
                for stmt in node.body:
                    visit(stmt, held)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    attr = self_attr(target)
                    if attr is not None:
                        accesses.append(AttributeAccess(attr, "write", method.name, target.lineno, target.col_offset, under))
                    else:
                        base = self_attr(getattr(target, "value", None))
                        if base is not None and isinstance(target, (ast.Attribute, ast.Subscript)):
                            accesses.append(AttributeAccess(base, "mutate", method.name, target.lineno, target.col_offset, under))
                        else:
                            visit(target, under)
                if isinstance(node, ast.AugAssign):
                    attr = self_attr(node.target)
                    # += reads then writes; the write entry above covers both.
                visit(node.value, under) if node.value is not None else None
                return
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    base = self_attr(func.value)
                    if base is not None and base not in lock_attrs and (
                        func.attr in _MUTATOR_METHODS or func.attr in _RNG_DRAW_METHODS
                    ):
                        accesses.append(AttributeAccess(base, "mutate", method.name, func.lineno, func.col_offset, under))
                    elif base is not None:
                        visit(func.value, under)
                    else:
                        visit(func, under)
                else:
                    visit(func, under)
                for arg in node.args:
                    visit(arg, under)
                for keyword in node.keywords:
                    visit(keyword.value, under)
                return
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                attr = self_attr(node)
                if attr is not None and attr not in lock_attrs:
                    accesses.append(AttributeAccess(attr, "read", method.name, node.lineno, node.col_offset, under))
                    return
            for child in ast.iter_child_nodes(node):
                visit(child, under)

        for statement in method.body:
            visit(statement, None)

        if method.name == "checkpoint_state":
            fact.checkpoint_reads = sorted({
                access.attr for access in accesses
                if access.method == "checkpoint_state"
            })
        if method.name == "restore_checkpoint_state":
            fact.restore_writes = sorted({
                access.attr for access in accesses
                if access.method == "restore_checkpoint_state"
                and access.kind in ("write", "mutate")
            })

    # -- functions and local taint ----------------------------------------
    def _extract_function(
        self, fn: ast.FunctionDef, class_name: Optional[str], class_fact: Optional[ClassFact]
    ) -> FunctionFact:
        qualname = (
            f"{self.module}.{class_name}.{fn.name}" if class_name else f"{self.module}.{fn.name}"
        )
        fact = FunctionFact(
            qualname=qualname,
            name=fn.name,
            path=self.ctx.path,
            line=fn.lineno,
            col=fn.col_offset,
            class_name=class_name,
            params=[arg.arg for arg in fn.args.args if arg.arg != "self"],
        )
        for decorator in fn.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = self.resolve(target) or self.ctx.dotted_name(target)
            if resolved:
                fact.decorators.append(resolved)

        from repro.analysis.dataflow import LocalTaint

        taint = LocalTaint(self, fn, class_name=class_name)
        taint.run()
        fact.calls = taint.calls
        fact.return_atoms = sorted(taint.return_atoms)
        fact.sinks = taint.sinks
        return fact


def _outermost_only(bindings: List[Tuple[str, int, int]]) -> List[Tuple[str, int, int]]:
    """Collapse (qualname, line, col) duplicates at the same line, keeping
    the smallest column (the outermost expression)."""
    best: Dict[Tuple[str, int], Tuple[str, int, int]] = {}
    for qualname, line, col in bindings:
        key = (qualname, line)
        if key not in best or col < best[key][2]:
            best[key] = (qualname, line, col)
    return sorted(best.values(), key=lambda entry: (entry[1], entry[2]))


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------
class ProjectIndex:
    """Symbol table + call graph + facts for one set of source files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleFact] = {}  # keyed by path
        self.functions: Dict[str, FunctionFact] = {}
        self.classes: Dict[str, ClassFact] = {}
        #: Set when the index came from the on-disk cache.
        self.from_cache: bool = False
        self._line_cache: Dict[str, List[str]] = {}
        self._tainted_returns: Optional[Dict[str, Set[str]]] = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_sources(
        cls, sources: Sequence[Tuple[str, str]], module_names: Optional[Dict[str, str]] = None
    ) -> "ProjectIndex":
        """Build from in-memory ``(path, source)`` pairs (fixture-friendly)."""
        index = cls()
        for path, source in sources:
            context = ModuleContext(path, source)
            name = (module_names or {}).get(path) or module_name_for_source_path(path)
            extractor = _ModuleExtractor(context, name)
            extractor.extract()
            index.modules[context.path] = extractor.module_fact
            for fn in extractor.functions:
                index.functions[fn.qualname] = fn
            for klass in extractor.classes:
                index.classes[klass.qualname] = klass
            index._line_cache[context.path] = context.lines
        return index

    @classmethod
    def build(cls, files: Sequence) -> "ProjectIndex":
        """Parse and extract every file (the cold path)."""
        sources = []
        names = {}
        for file_path in files:
            path = Path(file_path)
            posix = path.as_posix()
            sources.append((posix, path.read_text(encoding="utf-8")))
            names[posix] = module_name_for_path(path)
        return cls.from_sources(sources, module_names=names)

    @classmethod
    def load_or_build(
        cls, files: Sequence, cache_dir: Optional[Path | str] = DEFAULT_CACHE_DIR
    ) -> "ProjectIndex":
        """Content-hash-keyed cached build.

        The digest covers the format version and every file's path + bytes;
        any edit anywhere forces a rebuild, an untouched tree loads the
        serialized facts without parsing a single module.
        """
        if cache_dir is None:
            return cls.build(files)
        digest = hashlib.sha256(f"v{INDEX_FORMAT_VERSION}".encode())
        ordered = sorted(Path(f) for f in files)
        for path in ordered:
            digest.update(path.as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(hashlib.sha256(path.read_bytes()).digest())
        cache_path = Path(cache_dir) / f"callgraph-{digest.hexdigest()[:24]}.json"
        if cache_path.exists():
            try:
                index = cls.from_payload(json.loads(cache_path.read_text(encoding="utf-8")))
                index.from_cache = True
                return index
            except (ValueError, KeyError, TypeError):
                pass  # corrupt/stale cache: rebuild below
        index = cls.build(ordered)
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(json.dumps(index.to_payload()), encoding="utf-8")
        # Keep the cache bounded: drop older digests.
        siblings = sorted(
            cache_path.parent.glob("callgraph-*.json"), key=lambda p: p.stat().st_mtime
        )
        for stale in siblings[:-4]:
            try:
                stale.unlink()
            except OSError:
                pass
        return index

    # -- serialization ----------------------------------------------------
    def to_payload(self) -> Dict:
        return {
            "format": INDEX_FORMAT_VERSION,
            "modules": {path: asdict(fact) for path, fact in self.modules.items()},
            "functions": {q: asdict(fact) for q, fact in self.functions.items()},
            "classes": {q: asdict(fact) for q, fact in self.classes.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "ProjectIndex":
        if payload.get("format") != INDEX_FORMAT_VERSION:
            raise ValueError(f"unsupported index format {payload.get('format')!r}")
        index = cls()
        for path, raw in payload["modules"].items():
            fact = ModuleFact(
                path=raw["path"],
                module=raw["module"],
                suppressions={int(k): list(v) for k, v in raw["suppressions"].items()},
                constants={k: tuple(v) for k, v in raw["constants"].items()},
                kind_pushes={k: tuple(v) for k, v in raw["kind_pushes"].items()},
                kind_dispatches=list(raw["kind_dispatches"]),
                classification_sets={k: list(v) for k, v in raw["classification_sets"].items()},
                has_deterministic_rows=bool(raw["has_deterministic_rows"]),
                clock_bindings=[tuple(entry) for entry in raw["clock_bindings"]],
            )
            index.modules[path] = fact
        for qualname, raw in payload["functions"].items():
            index.functions[qualname] = FunctionFact(
                qualname=raw["qualname"], name=raw["name"], path=raw["path"],
                line=raw["line"], col=raw["col"], class_name=raw["class_name"],
                params=list(raw["params"]), decorators=list(raw["decorators"]),
                calls=[
                    CallSite(
                        callee=c["callee"], line=c["line"], col=c["col"],
                        tainted_args=[(k, list(a)) for k, a in c["tainted_args"]],
                    )
                    for c in raw["calls"]
                ],
                return_atoms=list(raw["return_atoms"]),
                sinks=[SinkFact(s["sink"], s["line"], s["col"], list(s["atoms"])) for s in raw["sinks"]],
            )
        for qualname, raw in payload["classes"].items():
            index.classes[qualname] = ClassFact(
                qualname=raw["qualname"], name=raw["name"], path=raw["path"],
                line=raw["line"], col=raw["col"], bases=list(raw["bases"]),
                is_dataclass=bool(raw["is_dataclass"]),
                worker_crossing=bool(raw["worker_crossing"]),
                defines_deterministic_rows=bool(raw["defines_deterministic_rows"]),
                fields=[FieldFact(f["name"], f["line"], f["col"], list(f["type_names"])) for f in raw["fields"]],
                methods=list(raw["methods"]),
                lock_attrs=list(raw["lock_attrs"]),
                accesses=[
                    AttributeAccess(a["attr"], a["kind"], a["method"], a["line"], a["col"], a["under_lock"])
                    for a in raw["accesses"]
                ],
                checkpoint_reads=list(raw["checkpoint_reads"]),
                restore_writes=list(raw["restore_writes"]),
            )
        return index

    # -- graph queries -----------------------------------------------------
    def call_edges(self) -> Dict[str, Set[str]]:
        """``{caller_qualname: {callee_qualname, ...}}`` including decorator
        application and ``register_*`` callback registration edges."""
        edges: Dict[str, Set[str]] = {}
        for fn in self.functions.values():
            targets = edges.setdefault(fn.qualname, set())
            for call in fn.calls:
                callee = self.resolve_callee(fn, call.callee)
                if callee is not None:
                    targets.add(callee)
            for decorator in fn.decorators:
                if decorator in self.functions:
                    targets.add(decorator)
        return edges

    def callers_of(self, qualname: str) -> Set[str]:
        return {
            caller for caller, callees in self.call_edges().items()
            if qualname in callees
        }

    def resolve_callee(self, caller: FunctionFact, callee: str) -> Optional[str]:
        """Map a recorded call target onto a known function, if any.

        Handles the spellings the extractor records: already-qualified names,
        ``self.<method>`` (dispatch within the class, then base classes) and
        ``super().<method>`` (base classes only).
        """
        if callee in self.functions:
            return callee
        if callee.startswith("self.") and caller.class_name is not None:
            method = callee[len("self."):]
            owner = f"{caller.qualname.rsplit('.', 1)[0]}"
            return self._resolve_method(owner, method, include_own=True)
        if callee.startswith("super.") and caller.class_name is not None:
            method = callee[len("super."):]
            owner = f"{caller.qualname.rsplit('.', 1)[0]}"
            return self._resolve_method(owner, method, include_own=False)
        # Class construction: Foo(...) calls Foo.__init__ when known.
        init = f"{callee}.__init__"
        if init in self.functions:
            return init
        return None

    def _resolve_method(self, class_qualname: str, method: str, include_own: bool) -> Optional[str]:
        seen: Set[str] = set()
        queue = [class_qualname]
        first = True
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            if (include_own or not first) and f"{current}.{method}" in self.functions:
                return f"{current}.{method}"
            klass = self.classes.get(current)
            if klass is not None:
                queue.extend(base for base in klass.bases if base in self.classes)
            first = False
        return None

    def registered_callables(self) -> Set[str]:
        """Functions/classes passed to (or decorating with) ``register_*``.

        A registry callback has no direct call site — registration *is* its
        reachability, mirroring how ``@register_rule`` wires the shallow
        rules themselves.
        """
        registered: Set[str] = set()
        for fn in self.functions.values():
            for call in fn.calls:
                if call.callee.rpartition(".")[2].startswith("register"):
                    for _, atoms in call.tainted_args:
                        for atom in atoms:
                            if atom.startswith("ref:"):
                                registered.add(atom[len("ref:"):])
            for decorator in fn.decorators:
                if decorator.rpartition(".")[2].startswith("register"):
                    registered.add(fn.qualname)
        return registered

    # -- taint fixpoint (see dataflow.py) ----------------------------------
    def tainted_returns(self) -> Dict[str, Set[str]]:
        """``{qualname: {"time"|"entropy", ...}}`` fixpoint over the graph."""
        if self._tainted_returns is None:
            from repro.analysis.dataflow import solve_return_taint

            self._tainted_returns = solve_return_taint(self)
        return self._tainted_returns

    # -- reporting helpers -------------------------------------------------
    def line_text(self, path: str, line: int) -> str:
        lines = self._line_cache.get(path)
        if lines is None:
            try:
                lines = Path(path).read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
            self._line_cache[path] = lines
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def is_suppressed(self, path: str, line: int, rule: str) -> bool:
        fact = self.modules.get(path)
        if fact is None:
            return False
        rules = fact.suppressions.get(line)
        if not rules:
            return False
        return "ALL" in rules or rule.upper() in rules

    def deterministic_field_names(self) -> Set[str]:
        """Union of declared DETERMINISTIC_*_FIELDS entries, falling back to
        the shallow rule's static list when no declarations exist."""
        declared: Set[str] = set()
        for fact in self.modules.values():
            for name, entries in fact.classification_sets.items():
                if name.startswith("DETERMINISTIC_"):
                    declared.update(entries)
        if declared:
            # Structural members are containers/keys, not scalar sinks.
            return declared - {"client_stats", "round_index", "client_id"}
        from repro.analysis.rule_wallclock import DETERMINISTIC_FIELDS

        return set(DETERMINISTIC_FIELDS)


__all__ = [
    "DEFAULT_CACHE_DIR",
    "INDEX_FORMAT_VERSION",
    "AttributeAccess",
    "CallSite",
    "ClassFact",
    "FieldFact",
    "FunctionFact",
    "ModuleFact",
    "ProjectIndex",
    "SinkFact",
    "module_name_for_path",
    "module_name_for_source_path",
]
