"""The public FedSZ API.

:class:`FedSZCompressor` wraps the pipeline behind the simple
``compress(state_dict) -> bytes`` / ``decompress(bytes) -> state_dict``
interface the federated runtime (and any external FL framework) needs, keeps
the report of the last invocation for inspection, and exposes the Eqn.-1
worthwhileness check for a given link bandwidth.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

import hashlib

from repro.compression.base import ErrorBoundMode
from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZReport, compress_state_dict, decompress_state_dict
from repro.network.decision import CompressionDecision, should_compress


def _payload_digest(payload: bytes) -> bytes:
    """Cheap identity fingerprint for "is this the payload I just produced?"."""
    return hashlib.blake2b(payload, digest_size=16).digest()


class FedSZCompressor:
    """FedSZ: error-bounded lossy compression for FL model updates.

    Example
    -------
    >>> from repro.nn.models import create_model
    >>> from repro.core import FedSZCompressor
    >>> model = create_model("mobilenetv2", "tiny", seed=0)
    >>> codec = FedSZCompressor(error_bound=1e-2)
    >>> payload = codec.compress(model.state_dict())
    >>> restored = codec.decompress(payload)
    >>> codec.last_report.ratio > 1.0
    True
    """

    def __init__(
        self,
        error_bound: float = 1e-2,
        error_bound_mode: ErrorBoundMode = ErrorBoundMode.REL,
        lossy_compressor: str = "sz2",
        lossless_compressor: str = "blosc-lz",
        partition_threshold: int = 1024,
        lossy_options: Optional[Dict[str, object]] = None,
        parallel_tensors: bool = False,
        max_codec_workers: Optional[int] = None,
    ) -> None:
        self.config = FedSZConfig(
            error_bound=error_bound,
            error_bound_mode=error_bound_mode,
            lossy_compressor=lossy_compressor,
            lossless_compressor=lossless_compressor,
            partition_threshold=partition_threshold,
            lossy_options=dict(lossy_options or {}),
            parallel_tensors=parallel_tensors,
            max_codec_workers=max_codec_workers,
        )
        self.last_report: Optional[FedSZReport] = None
        self._last_payload_digest: Optional[bytes] = None

    @classmethod
    def from_config(cls, config: FedSZConfig) -> "FedSZCompressor":
        """Build a compressor from an existing :class:`FedSZConfig`."""
        instance = cls.__new__(cls)
        instance.config = config
        instance.last_report = None
        instance._last_payload_digest = None
        return instance

    def clone(self) -> "FedSZCompressor":
        """A fresh compressor with the same configuration and no report state.

        The parallel executor clones the codec once per client so concurrent
        compressions keep independent ``last_report``s instead of clobbering a
        shared one.  Subclasses carrying extra state must override this (the
        default only copies the config).
        """
        return type(self).from_config(self.config)

    # ------------------------------------------------------------------
    # Codec interface (what the FL runtime calls)
    # ------------------------------------------------------------------
    def compress(self, state_dict: Mapping[str, np.ndarray]) -> bytes:
        """Compress a model state dict into a transmissible byte payload."""
        payload, report = compress_state_dict(state_dict, self.config)
        self.last_report = report
        self._last_payload_digest = _payload_digest(payload)
        return payload

    def decompress(self, payload: bytes) -> Dict[str, np.ndarray]:
        """Reconstruct a state dict from a FedSZ payload.

        Decoding honours the configured per-tensor parallelism.  Measured
        per-tensor decode times are recorded onto ``last_report`` only when
        ``payload`` is byte-for-byte the one ``compress`` produced (checked
        by digest) — decompressing any other payload, even one with the same
        tensor names, must not mix foreign timings into an unrelated report.
        """
        matches = (
            self.last_report is not None
            and getattr(self, "_last_payload_digest", None) == _payload_digest(payload)
        )
        return decompress_state_dict(
            payload, self.config, report=self.last_report if matches else None
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def report(self) -> FedSZReport:
        """Report of the most recent :meth:`compress` call."""
        if self.last_report is None:
            raise RuntimeError("no compression has been performed yet")
        return self.last_report

    def compression_errors(
        self, original: Mapping[str, np.ndarray], restored: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Flattened element-wise errors over the lossy-compressed tensors.

        This is the error population whose Laplace-like shape Section VII-D
        analyses for differential-privacy potential.
        """
        errors = []
        for name, tensor in original.items():
            if name not in restored:
                continue
            difference = np.asarray(restored[name], dtype=np.float64) - np.asarray(
                tensor, dtype=np.float64
            )
            if np.any(difference != 0):
                errors.append(difference.ravel())
        if not errors:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(errors)

    def is_worthwhile(self, bandwidth_mbps: float) -> CompressionDecision:
        """Evaluate Eqn. 1 for the last compressed payload on a given link."""
        report = self.report()
        decompress_seconds = report.decompress_seconds or report.compress_seconds * 0.5
        return should_compress(
            original_nbytes=report.original_nbytes,
            compressed_nbytes=report.compressed_nbytes,
            compress_seconds=report.compress_seconds,
            decompress_seconds=decompress_seconds,
            bandwidth_mbps=bandwidth_mbps,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FedSZCompressor({self.config.describe()})"


class IdentityCodec:
    """No-op codec used as the uncompressed baseline in experiments.

    It serializes the state dict to raw bytes (so payload sizes are
    comparable) but applies no compression at all.
    """

    def __init__(self) -> None:
        self.last_report: Optional[FedSZReport] = None

    def clone(self) -> "IdentityCodec":
        """A fresh identity codec (per-client instances in parallel rounds)."""
        return IdentityCodec()

    def compress(self, state_dict: Mapping[str, np.ndarray]) -> bytes:
        from repro.core.serializer import serialize_named_arrays

        payload = serialize_named_arrays(state_dict)
        original = int(sum(np.asarray(v).nbytes for v in state_dict.values()))
        self.last_report = FedSZReport(
            original_nbytes=original,
            compressed_nbytes=len(payload),
            lossless_original_nbytes=original,
            lossless_compressed_nbytes=len(payload),
            lossless_tensor_count=len(state_dict),
        )
        return payload

    def decompress(self, payload: bytes) -> Dict[str, np.ndarray]:
        from repro.core.serializer import deserialize_named_arrays

        return deserialize_named_arrays(payload)
