"""Scheduler layer of the federated runtime: pluggable round strategies.

A scheduler decides *what a round means*: who aggregates, with which weights,
and how long the round takes in simulated time.

* :class:`SynchronousScheduler` — classic FedAvg; the server waits for every
  participant and averages them (the seed simulation's behaviour,
  numerically unchanged).
* :class:`SemiSynchronousScheduler` — FedAvg with a straggler deadline: any
  client whose simulated turnaround (training + codec + transfer) exceeds the
  deadline is excluded from aggregation and the round closes at the deadline
  instead of waiting.
* :class:`AsynchronousScheduler` — staleness-weighted sequential mixing
  (FedAsync-style): delivered updates are applied one at a time in arrival
  order, each with weight ``mixing_rate * (1 + staleness)**-staleness_exponent``.

Schedulers only orchestrate; client execution belongs to the executor layer
and per-client links to the transport layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fl.aggregation import mix_states
from repro.fl.history import RoundRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fl.runtime import FederatedRuntime


class RoundScheduler:
    """Base class: one federated round under some coordination strategy."""

    name = "base"

    def run_round(self, runtime: "FederatedRuntime") -> RoundRecord:
        """Execute one round against the runtime and return its record."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """JSON-compatible fingerprint of this scheduler's configuration.

        Schedulers are stateless between rounds, so the fingerprint exists for
        *validation*, not restoration: a checkpoint records it and resume
        refuses to continue under a scheduler with different round semantics
        (which would silently break bit-identical resumability).
        """
        return {"name": self.name}


class SynchronousScheduler(RoundScheduler):
    """FedAvg: wait for every participant, aggregate them all."""

    name = "sync"

    def run_round(self, runtime: "FederatedRuntime") -> RoundRecord:
        context = runtime.start_round()
        results = runtime.execute_clients(context)
        delivered = [result for result in results if result.delivered]
        if delivered:
            runtime.server.aggregate(
                [result.state for result in delivered],
                [float(result.update.num_samples) for result in delivered],
            )
        # The synchronous server waits for every participant's turnaround —
        # including updates that were lost in transit (it only learns they are
        # missing once their transfer window has passed).
        round_seconds = max((r.turnaround_seconds for r in results), default=0.0)
        return runtime.finish_round(
            context,
            results,
            aggregated_ids={r.client_id for r in delivered},
            round_seconds=round_seconds,
        )

    def consume_events(self, runtime, context, results, events) -> RoundRecord:
        """Event form of the barrier: drain every completion, then aggregate.

        Synchronous FedAvg is the degenerate case of the event engine — the
        round closes at the last completion event (delivered or not), and
        aggregation still walks ``results`` in task order so float summation
        order matches :meth:`run_round` exactly.
        """
        from repro.fl.events import CLIENT_COMPLETION

        round_seconds = 0.0
        while events:
            event = events.pop()
            if event.kind == CLIENT_COMPLETION:
                round_seconds = event.time  # pops ascend: last one is the max
        delivered = [result for result in results if result.delivered]
        if delivered:
            runtime.server.aggregate(
                [result.state for result in delivered],
                [float(result.update.num_samples) for result in delivered],
            )
        return runtime.finish_round(
            context,
            results,
            aggregated_ids={r.client_id for r in delivered},
            round_seconds=round_seconds,
        )


class SemiSynchronousScheduler(RoundScheduler):
    """FedAvg with a deadline: stragglers are cut, not waited for."""

    name = "semi-sync"

    def __init__(self, deadline_seconds: float) -> None:
        if deadline_seconds <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_seconds}")
        self.deadline_seconds = float(deadline_seconds)

    def state_dict(self) -> dict:
        return {"name": self.name, "deadline_seconds": self.deadline_seconds}

    def run_round(self, runtime: "FederatedRuntime") -> RoundRecord:
        context = runtime.start_round()
        results = runtime.execute_clients(context)
        delivered = [result for result in results if result.delivered]
        on_time = [r for r in delivered if r.turnaround_seconds <= self.deadline_seconds]
        if on_time:
            runtime.server.aggregate(
                [result.state for result in on_time],
                [float(result.update.num_samples) for result in on_time],
            )
        # The round runs to the deadline whenever any expected update is
        # missing at close — cut stragglers *and* updates dropped in transit
        # (the server cannot distinguish "late" from "lost" until then).
        waited_out = len(on_time) < len(results)
        round_seconds = (
            self.deadline_seconds
            if waited_out
            else max((r.turnaround_seconds for r in on_time), default=0.0)
        )
        return runtime.finish_round(
            context,
            results,
            aggregated_ids={r.client_id for r in on_time},
            round_seconds=round_seconds,
        )

    def consume_events(self, runtime, context, results, events) -> RoundRecord:
        """Event form of the deadline: completions race a deadline event.

        Deliveries popping before the :data:`~repro.fl.events.STRAGGLER_DEADLINE`
        event are on time; the engine pushes the deadline after the
        completions, so an update landing at exactly the deadline drains
        first — reproducing :meth:`run_round`'s ``<=`` comparison.
        Aggregation walks ``results`` in task order, not pop order.
        """
        from repro.fl.events import CLIENT_COMPLETION, STRAGGLER_DEADLINE

        on_time_ids = set()
        last_on_time = 0.0
        while events:
            event = events.pop()
            if event.kind == STRAGGLER_DEADLINE:
                break  # everything still queued is a straggler
            if event.kind == CLIENT_COMPLETION and event.result.delivered:
                on_time_ids.add(event.client_id)
                last_on_time = event.time
        on_time = [r for r in results if r.client_id in on_time_ids]
        if on_time:
            runtime.server.aggregate(
                [result.state for result in on_time],
                [float(result.update.num_samples) for result in on_time],
            )
        waited_out = len(on_time) < len(results)
        round_seconds = self.deadline_seconds if waited_out else last_on_time
        return runtime.finish_round(
            context,
            results,
            aggregated_ids={r.client_id for r in on_time},
            round_seconds=round_seconds,
        )


class AsynchronousScheduler(RoundScheduler):
    """Staleness-weighted sequential mixing in simulated arrival order.

    Within each scheduling window ("round"), delivered updates — all trained
    against the window's broadcast state — are applied one at a time, ordered
    by simulated turnaround.  The ``i``-th arrival finds a global model that
    has already absorbed ``i`` fresher updates, so it is mixed in with weight
    ``mixing_rate * (1 + i) ** -staleness_exponent``.
    """

    name = "async"

    def __init__(self, mixing_rate: float = 0.5, staleness_exponent: float = 0.5) -> None:
        if not 0.0 < mixing_rate <= 1.0:
            raise ValueError(f"mixing_rate must lie in (0, 1], got {mixing_rate}")
        if staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be non-negative, got {staleness_exponent}"
            )
        self.mixing_rate = float(mixing_rate)
        self.staleness_exponent = float(staleness_exponent)

    def state_dict(self) -> dict:
        return {
            "name": self.name,
            "mixing_rate": self.mixing_rate,
            "staleness_exponent": self.staleness_exponent,
        }

    def staleness_weight(self, staleness: int) -> float:
        """Mixing weight for an update that is ``staleness`` versions old."""
        return self.mixing_rate * (1.0 + staleness) ** (-self.staleness_exponent)

    def run_round(self, runtime: "FederatedRuntime") -> RoundRecord:
        context = runtime.start_round()
        results = runtime.execute_clients(context)
        delivered = [result for result in results if result.delivered]
        arrivals = sorted(delivered, key=lambda r: (r.turnaround_seconds, r.client_id))

        weights = {}
        staleness_by_client = {}
        global_state = runtime.server.global_state()
        for staleness, result in enumerate(arrivals):
            weight = self.staleness_weight(staleness)
            global_state = mix_states(global_state, result.state, weight)
            weights[result.client_id] = weight
            staleness_by_client[result.client_id] = staleness
        if arrivals:
            runtime.server.set_global_state(global_state)

        round_seconds = max((r.turnaround_seconds for r in arrivals), default=0.0)
        return runtime.finish_round(
            context,
            results,
            aggregated_ids={r.client_id for r in arrivals},
            round_seconds=round_seconds,
            client_weights=weights,
            client_staleness=staleness_by_client,
        )

    def consume_events(self, runtime, context, results, events) -> RoundRecord:
        """Event form of async mixing: apply deliveries in pop order.

        The engine pushes completions in task order (ascending client id), so
        pop order is ``(turnaround, client_id)`` — exactly :meth:`run_round`'s
        arrival sort — and each delivered update is mixed in the moment its
        event fires.
        """
        from repro.fl.events import CLIENT_COMPLETION

        weights = {}
        staleness_by_client = {}
        aggregated_ids = set()
        global_state = runtime.server.global_state()
        staleness = 0
        round_seconds = 0.0
        while events:
            event = events.pop()
            if event.kind != CLIENT_COMPLETION or not event.result.delivered:
                continue
            weight = self.staleness_weight(staleness)
            global_state = mix_states(global_state, event.result.state, weight)
            weights[event.client_id] = weight
            staleness_by_client[event.client_id] = staleness
            aggregated_ids.add(event.client_id)
            round_seconds = event.time  # pops ascend: last delivery closes
            staleness += 1
        if aggregated_ids:
            runtime.server.set_global_state(global_state)
        return runtime.finish_round(
            context,
            results,
            aggregated_ids=aggregated_ids,
            round_seconds=round_seconds,
            client_weights=weights,
            client_staleness=staleness_by_client,
        )


def canonical_scheduler_name(name: str) -> str:
    """Normalise a scheduler alias to ``sync`` / ``semi-sync`` / ``async``."""
    key = name.lower().replace("_", "-")
    if key in {"sync", "synchronous", "fedavg"}:
        return "sync"
    if key in {"semi-sync", "semisync", "semi-synchronous"}:
        return "semi-sync"
    if key in {"async", "asynchronous", "fedasync"}:
        return "async"
    raise KeyError(
        f"unknown scheduler {name!r}; available: 'sync', 'semi-sync', 'async'"
    )


def get_scheduler(name: str, **kwargs) -> RoundScheduler:
    """Build a scheduler by its short name (``sync``/``semi-sync``/``async``)."""
    canonical = canonical_scheduler_name(name)
    if canonical == "sync":
        return SynchronousScheduler()
    if canonical == "semi-sync":
        return SemiSynchronousScheduler(**kwargs)
    return AsynchronousScheduler(**kwargs)


__all__ = [
    "RoundScheduler",
    "SynchronousScheduler",
    "SemiSynchronousScheduler",
    "AsynchronousScheduler",
    "canonical_scheduler_name",
    "get_scheduler",
]
