"""Path → service mapping for the monitor HTTP endpoint.

A route handler is ``f(monitor) -> JSON-compatible dict``.  The server looks
paths up here so adding an API surface never means touching HTTP plumbing.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.obs.services import (
    clients_payload,
    health_payload,
    rounds_payload,
    status_payload,
)

#: JSON API routes served by :class:`repro.obs.server.MonitorServer`.
ROUTES: Dict[str, Callable[[object], Dict[str, object]]] = {
    "/api/status": status_payload,
    "/api/rounds": rounds_payload,
    "/api/clients": clients_payload,
    "/api/health": health_payload,
}

__all__ = ["ROUTES"]
