"""Kill-and-resume integration: a crashed run, resumed from its latest
snapshot, is bit-identical to an uninterrupted run.

The scenario deliberately stresses every stream the checkpoint must carry:

* ``client_fraction < 1`` — the participant-sampling RNG advances each round;
* link ``dropout_probability > 0`` — per-link dropout streams advance;
* mobilenetv2 (Dropout layers) — per-client stochastic streams advance;
* a FedSZ codec — payload bytes and ratios must match exactly;
* multi-epoch loaders — shuffle streams advance per epoch.

Wall-clock-measured fields (train/compress seconds, turnarounds) legitimately
differ between runs; the comparison uses
:meth:`repro.fl.history.TrainingHistory.deterministic_rows`, which projects
exactly the simulation-determined fields.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedSZCompressor
from repro.data import load_dataset
from repro.fl import (
    FederatedRuntime,
    FLConfig,
    LinkSpec,
    ParallelExecutor,
    ProcessParallelExecutor,
    SerialExecutor,
    ServerCrashSchedule,
    SimulatedCrash,
    Transport,
    list_checkpoints,
)
from repro.nn.models import create_model

ROUNDS = 4
CRASH_AFTER = 1


@pytest.fixture(scope="module")
def data():
    full = load_dataset("cifar10", num_samples=160, image_size=8, seed=0)
    return full.split(0.75, seed=1)


def _build_runtime(data, executor_name: str) -> FederatedRuntime:
    train, val = data
    if executor_name == "parallel":
        executor = ParallelExecutor(max_workers=2)
    elif executor_name == "process":
        executor = ProcessParallelExecutor(max_workers=2)
    else:
        executor = SerialExecutor()
    return FederatedRuntime(
        lambda: create_model("mobilenetv2", "tiny", num_classes=10, seed=9),
        train,
        val,
        FLConfig(
            num_clients=4,
            rounds=ROUNDS,
            batch_size=16,
            local_epochs=2,
            client_fraction=0.5,
            seed=3,
        ),
        codec=FedSZCompressor(error_bound=1e-2),
        executor=executor,
        transport=Transport.heterogeneous(
            [
                LinkSpec(bandwidth_mbps=bw, dropout_probability=0.3)
                for bw in (5.0, 10.0, 25.0, 50.0)
            ]
        ),
    )


def _assert_states_identical(reference, resumed):
    reference_state = reference.server.global_state()
    resumed_state = resumed.server.global_state()
    assert reference_state.keys() == resumed_state.keys()
    for name in reference_state:
        np.testing.assert_array_equal(
            reference_state[name], resumed_state[name], err_msg=name
        )
        assert reference_state[name].dtype == resumed_state[name].dtype


@pytest.mark.parametrize("executor_name", ["serial", "parallel", "process"])
def test_kill_after_round_k_resume_is_bit_identical(data, tmp_path, executor_name):
    reference = _build_runtime(data, executor_name)
    crashed = resumed = None
    try:
        reference.run()
        assert len(reference.history) == ROUNDS

        crashed = _build_runtime(data, executor_name)
        with pytest.raises(SimulatedCrash):
            crashed.run(
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
                fault_injector=ServerCrashSchedule(CRASH_AFTER),
            )
        assert len(crashed.history) == CRASH_AFTER + 1  # progress died with the process

        resumed = _build_runtime(data, executor_name)
        history = resumed.run(checkpoint_dir=tmp_path, resume=True)

        assert len(history) == ROUNDS
        _assert_states_identical(reference, resumed)
        assert history.deterministic_rows() == reference.history.deterministic_rows()
        # The restored prefix carries the crashed process's measured timings
        # verbatim — resume does not re-execute already-persisted rounds.
        for restored, original in zip(
            history.records[: CRASH_AFTER + 1], crashed.history.records, strict=False
        ):
            assert restored == original
    finally:
        for runtime in (reference, crashed, resumed):
            if runtime is not None:
                runtime.close()


def test_resume_from_sparse_checkpoints_replays_unpersisted_rounds(data, tmp_path):
    """With checkpoint_every=2 a crash after round 2 resumes from the round-2
    snapshot and *re-executes* round 2 — bit-identically, because every RNG
    stream was restored to its exact pre-round state."""
    reference = _build_runtime(data, "serial")
    reference.run()

    crashed = _build_runtime(data, "serial")
    with pytest.raises(SimulatedCrash):
        crashed.run(
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            fault_injector=ServerCrashSchedule(2),
        )
    assert len(crashed.history) == 3  # rounds 0..2 ran, only round 2 snapshot exists
    assert [path.name for path in list_checkpoints(tmp_path)] == [
        "checkpoint_round000002.ckpt"
    ]

    resumed = _build_runtime(data, "serial")
    history = resumed.run(checkpoint_dir=tmp_path, checkpoint_every=2, resume=True)
    assert len(history) == ROUNDS
    _assert_states_identical(reference, resumed)
    assert history.deterministic_rows() == reference.history.deterministic_rows()


def test_resume_with_no_snapshot_starts_fresh(data, tmp_path):
    """resume=True on an empty directory is a fresh start, so launch scripts
    can pass it unconditionally."""
    runtime = _build_runtime(data, "serial")
    history = runtime.run(checkpoint_dir=tmp_path, resume=True)
    assert len(history) == ROUNDS
    reference = _build_runtime(data, "serial")
    reference.run()
    assert history.deterministic_rows() == reference.history.deterministic_rows()


def test_repeated_crashes_converge(data, tmp_path):
    """Two successive crashes (rounds 0 and 2) still reach the reference
    outcome after two resumes — the multi-failure regime long fleet runs hit."""
    reference = _build_runtime(data, "serial")
    reference.run()

    first = _build_runtime(data, "serial")
    with pytest.raises(SimulatedCrash):
        first.run(checkpoint_dir=tmp_path, fault_injector=ServerCrashSchedule(0, 2))
    second = _build_runtime(data, "serial")
    with pytest.raises(SimulatedCrash):
        second.run(
            checkpoint_dir=tmp_path, resume=True, fault_injector=ServerCrashSchedule(0, 2)
        )
    final = _build_runtime(data, "serial")
    history = final.run(checkpoint_dir=tmp_path, resume=True)

    assert len(history) == ROUNDS
    _assert_states_identical(reference, final)
    assert history.deterministic_rows() == reference.history.deterministic_rows()


def test_constructor_attached_crash_schedule_does_not_livelock_on_sparse_checkpoints(
    data, tmp_path
):
    """Regression: with checkpoint_every=2 the crash round (2) is never
    persisted, so resume re-executes it — a one-shot crash schedule attached
    at construction (the unreliable-server preset path) must not re-fire and
    livelock every resume attempt."""
    reference = _build_runtime(data, "serial")
    reference.run()

    def build_with_injector():
        runtime = _build_runtime(data, "serial")
        runtime.fault_injector = ServerCrashSchedule(2)
        return runtime

    crashed = build_with_injector()
    with pytest.raises(SimulatedCrash):
        crashed.run(checkpoint_dir=tmp_path, checkpoint_every=2)
    assert [path.name for path in list_checkpoints(tmp_path)] == [
        "checkpoint_round000002.ckpt"
    ]

    resumed = build_with_injector()  # a restarted process re-attaches the preset
    history = resumed.run(checkpoint_dir=tmp_path, checkpoint_every=2, resume=True)
    assert len(history) == ROUNDS
    _assert_states_identical(reference, resumed)
    assert history.deterministic_rows() == reference.history.deterministic_rows()


def test_resume_refuses_a_different_codec_bound(data, tmp_path):
    """Resuming with a different error bound (or codec) would silently break
    bit-identity; the codec fingerprint must catch it up front."""
    from repro.fl import CheckpointError

    crashed = _build_runtime(data, "serial")
    with pytest.raises(SimulatedCrash):
        crashed.run(checkpoint_dir=tmp_path, fault_injector=ServerCrashSchedule(CRASH_AFTER))

    retargeted = _build_runtime(data, "serial")
    retargeted.codec = FedSZCompressor(error_bound=1e-1)
    with pytest.raises(CheckpointError, match="codec"):
        retargeted.run(checkpoint_dir=tmp_path, resume=True)

    uncompressed = _build_runtime(data, "serial")
    uncompressed.codec = None
    with pytest.raises(CheckpointError, match="codec"):
        uncompressed.run(checkpoint_dir=tmp_path, resume=True)


def test_consecutive_crash_rounds_each_fire_once(data, tmp_path):
    """Regression: resume must not swallow a listed crash round the dead
    process never reached — ServerCrashSchedule(1, 2) with dense checkpoints
    kills exactly two process generations, then the run completes."""
    from repro.fl import fired_crash_rounds

    reference = _build_runtime(data, "serial")
    reference.run()

    crashes = 0
    runtime = _build_runtime(data, "serial")
    with pytest.raises(SimulatedCrash) as first:
        runtime.run(
            checkpoint_dir=tmp_path, resume=True, fault_injector=ServerCrashSchedule(1, 2)
        )
    assert first.value.round_index == 1
    with pytest.raises(SimulatedCrash) as second:
        _build_runtime(data, "serial").run(
            checkpoint_dir=tmp_path, resume=True, fault_injector=ServerCrashSchedule(1, 2)
        )
    assert second.value.round_index == 2  # the second listed failure still fires
    assert fired_crash_rounds(tmp_path) == {1, 2}

    final = _build_runtime(data, "serial")
    history = final.run(
        checkpoint_dir=tmp_path, resume=True, fault_injector=ServerCrashSchedule(1, 2)
    )
    assert len(history) == ROUNDS
    _assert_states_identical(reference, final)
    assert history.deterministic_rows() == reference.history.deterministic_rows()


def test_crash_before_first_checkpoint_does_not_livelock(data, tmp_path):
    """Regression: a crash at round 0 with checkpoint_every=3 leaves a crash
    marker but no snapshot; resume must still consult the markers so the
    one-shot crash is not re-fired forever."""
    reference = _build_runtime(data, "serial")
    reference.run()

    crashed = _build_runtime(data, "serial")
    with pytest.raises(SimulatedCrash):
        crashed.run(
            checkpoint_dir=tmp_path,
            checkpoint_every=3,
            fault_injector=ServerCrashSchedule(0),
        )
    assert list_checkpoints(tmp_path) == []  # nothing persisted yet

    resumed = _build_runtime(data, "serial")
    history = resumed.run(
        checkpoint_dir=tmp_path,
        checkpoint_every=3,
        resume=True,
        fault_injector=ServerCrashSchedule(0),
    )
    assert len(history) == ROUNDS
    _assert_states_identical(reference, resumed)
    assert history.deterministic_rows() == reference.history.deterministic_rows()
