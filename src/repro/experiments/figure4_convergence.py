"""Figure 4 — accuracy convergence per EBLC over federated rounds.

The paper trains AlexNet on CIFAR-10 with FedAvg for ten rounds while
compressing every client update with each candidate EBLC and finds that SZ2,
SZ3 and ZFP all track the uncompressed run, while SZx destroys accuracy.

The harness reruns that protocol on the tiny trainable model variants and the
synthetic datasets: one federated simulation per compressor (plus the
uncompressed baseline), identical seeds across runs so that the only
difference is the codec in the uplink path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import FedSZCompressor
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import build_federated_setup
from repro.fl import FLSimulation

DEFAULT_COMPRESSORS: Sequence[Optional[str]] = (None, "sz2", "sz3", "zfp", "szx")


def run_figure4(
    model: str = "resnet50",
    dataset: str = "cifar10",
    compressors: Sequence[Optional[str]] = DEFAULT_COMPRESSORS,
    rounds: int = 10,
    error_bound: float = 1e-2,
    num_clients: int = 4,
    samples: int = 600,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate one panel of Figure 4 (accuracy per round per compressor)."""
    result = ExperimentResult(
        name=f"Figure 4 — accuracy convergence per EBLC ({model} / {dataset})",
        description=(
            "Validation accuracy per communication round with client updates compressed "
            f"by each candidate EBLC at REL {error_bound:g} (None = uncompressed)."
        ),
    )
    curves: Dict[str, List[float]] = {}
    for compressor in compressors:
        setup = build_federated_setup(
            model_name=model,
            dataset_name=dataset,
            num_clients=num_clients,
            rounds=rounds,
            samples=samples,
            seed=seed,
        )
        codec = (
            None
            if compressor is None
            else FedSZCompressor(error_bound=error_bound, lossy_compressor=compressor)
        )
        history = FLSimulation(
            setup.model_fn, setup.train_dataset, setup.validation_dataset, setup.config, codec=codec
        ).run()
        label = compressor or "uncompressed"
        curves[label] = history.accuracies()
        for round_index, accuracy in enumerate(history.accuracies()):
            result.add_row(
                compressor=label,
                round=round_index,
                accuracy=accuracy,
                uplink_mb=history.records[round_index].uplink_bytes / 1e6,
            )

    baseline = curves.get("uncompressed")
    if baseline:
        for label, accuracies in curves.items():
            if label == "uncompressed":
                continue
            gap = baseline[-1] - accuracies[-1]
            result.add_note(f"final-round accuracy gap vs uncompressed for {label}: {gap:+.3f}")
    return result


def final_accuracies(result: ExperimentResult) -> Dict[str, float]:
    """Convenience: final-round accuracy per compressor from a Figure 4 result."""
    finals: Dict[str, float] = {}
    for row in result.rows:
        finals[str(row["compressor"])] = float(row["accuracy"])
    return finals


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure4(rounds=3, samples=320).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
