"""Crash-safe, round-granular checkpointing for the federated runtime.

Long-horizon federated runs (hundreds of rounds over simulated edge fleets)
previously lost everything on a crash: :class:`~repro.fl.runtime.FederatedRuntime`
held all run state — the global model, the sampling and dropout RNG streams,
each client's shuffle and Dropout streams, the adaptive-bound controller, the
round history — in memory only.  This module persists all of it:

* :class:`RunCheckpoint` — one immutable snapshot of a run after ``N``
  completed rounds.  The global model is serialized through the same
  self-describing bitstream as FedSZ payloads
  (:func:`repro.core.serializer.serialize_named_arrays` — no pickle, nothing
  executes on load), RNG streams are captured as bit-generator states, and
  the :class:`~repro.fl.history.TrainingHistory` rides along in full fidelity.
* **Atomic writes** — snapshots are written to a temporary file in the target
  directory and published with ``os.replace``, so a crash mid-write can never
  leave a partial ``*.ckpt`` behind; a CRC32 frame
  (:func:`repro.core.serializer.frame_checksummed`) additionally rejects
  truncated or bit-rotted files at load time.
* **Schema versioning** — files carry :data:`SCHEMA_VERSION`; loading a
  foreign or future schema fails with a clear :class:`CheckpointError`
  instead of mis-parsing.
* **Retention** — :func:`write_checkpoint` keeps the newest ``keep_last``
  snapshots and prunes the rest, bounding disk use on long runs.

Resume is **bit-identical**: restoring the latest snapshot into a freshly
constructed runtime and finishing the run produces exactly the final weights
and (simulation-determined) history rows of an uninterrupted run — asserted
by ``tests/integration/test_checkpoint_resume.py`` under both the serial and
parallel executors, with a :class:`~repro.fl.scenarios.ServerCrashSchedule`
killing the first attempt mid-run.

The checkpoint also *validates* before restoring: the run configuration,
scheduler, participation schedule, link topology and codec identity recorded
at save time must match the resuming runtime.  Executor choice is exempt:
for deterministic codecs, serial and parallel execution produce identical
simulated outcomes (the PR-1 determinism guarantee), so a run may resume on
a different worker count.  The one known exception is a *stochastic shared*
codec without ``clone()`` — the DP codec under the parallel executor draws
noise in thread-completion order (see :mod:`repro.fl.executor`), so such
runs are only reproducible, and therefore only bit-identically resumable,
with the serial executor.  Codec state is captured through an optional
protocol: any codec exposing ``checkpoint_state()`` /
``restore_checkpoint_state(state)`` (the adaptive error-bound compressor,
the DP codec) has its evolving state carried across the crash.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.compression.errors import CorruptPayloadError
from repro.core.serializer import (
    deserialize_named_arrays,
    frame_checksummed,
    serialize_named_arrays,
    unframe_checksummed,
)
from repro.compression.base import pack_sections, unpack_sections
from repro.fl.history import TrainingHistory

#: On-disk frame magic for run checkpoints ("RePro ChecKpoint").
CHECKPOINT_MAGIC = b"RPCK"
#: Bump on any incompatible layout change; loaders refuse other versions.
SCHEMA_VERSION = 1

_FILE_PATTERN = re.compile(r"^checkpoint_round(\d{6})\.ckpt$")
_MARKER_PATTERN = re.compile(r"^crash_round(\d{6})\.fired$")
_META_KEY = "meta"
_MODEL_KEY = "model"
_HISTORY_KEY = "history"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied to a runtime."""


def _jsonable(value):
    """JSON encoder fallback for the numpy scalars RNG states may carry (and
    the enums codec configurations may carry)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"checkpoint metadata is not JSON-serializable: {type(value)!r}")


def codec_fingerprint(codec) -> Optional[Dict[str, object]]:
    """Identity of a codec: class name plus static configuration.

    Born as resume validation — resuming under a different codec, or the same
    codec at a different error bound, would produce different payloads and
    different reconstructed weights from the first resumed round, silently
    breaking the bit-identical guarantee, so the fingerprint is part of the
    compatibility check.  The broadcast payload cache
    (:mod:`repro.fl.broadcast`) keys on the same identity, so a codec or
    error-bound swap between rounds invalidates cached broadcasts for free.
    The identity is the codec's class name plus its static configuration: a
    dataclass ``.config`` when the codec has one
    (:class:`~repro.core.FedSZCompressor`), or the result of an opt-in
    ``checkpoint_fingerprint()`` for composite codecs whose settings live
    elsewhere (the adaptive and DP wrappers).  The value is canonicalised
    through JSON so captured and freshly computed fingerprints compare equal
    after the on-disk round trip.
    """
    if codec is None:
        return None
    fingerprint: Dict[str, object] = {"type": type(codec).__name__}
    describe = getattr(codec, "checkpoint_fingerprint", None)
    if callable(describe):
        fingerprint["params"] = describe()
    else:
        config = getattr(codec, "config", None)
        if dataclasses.is_dataclass(config):
            fingerprint["params"] = dataclasses.asdict(config)
    return json.loads(json.dumps(fingerprint, sort_keys=True, default=_jsonable))


#: Backwards-compatible alias from before the fingerprint went public.
_codec_fingerprint = codec_fingerprint


@dataclass(frozen=True)
class RunCheckpoint:
    """One snapshot of a federated run after ``rounds_completed`` rounds.

    Everything needed to continue the run bit-identically: the global model
    weights, every RNG stream that advances round by round (participant
    sampling, per-link dropout, per-client shuffle and Dropout streams),
    optional codec state (adaptive controller, DP noise stream), the full
    round history, and the configuration fingerprints used to validate that
    the resuming runtime matches the one that crashed.
    """

    rounds_completed: int
    config: Dict[str, object]
    scheduler: Dict[str, object]
    schedule: Optional[Dict[str, object]]
    transport: Dict[str, object]
    sampling_rng: Dict[str, object]
    link_rngs: Dict[str, object]
    clients: Dict[str, object]
    codec: Optional[Dict[str, object]]
    codec_fingerprint: Optional[Dict[str, object]]
    history_rows: List[Dict[str, object]]
    model_state: Dict[str, np.ndarray] = field(repr=False)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Bytes <-> snapshot
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the framed, checksummed on-disk layout."""
        meta = {
            "schema_version": self.schema_version,
            "rounds_completed": self.rounds_completed,
            "config": self.config,
            "scheduler": self.scheduler,
            "schedule": self.schedule,
            "transport": self.transport,
            "sampling_rng": self.sampling_rng,
            "link_rngs": self.link_rngs,
            "clients": self.clients,
            "codec": self.codec,
            "codec_fingerprint": self.codec_fingerprint,
        }
        payload = pack_sections(
            {
                _META_KEY: json.dumps(meta, sort_keys=True, default=_jsonable).encode("utf-8"),
                _MODEL_KEY: serialize_named_arrays(self.model_state),
                _HISTORY_KEY: json.dumps(self.history_rows, default=_jsonable).encode("utf-8"),
            }
        )
        return frame_checksummed(CHECKPOINT_MAGIC, payload)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RunCheckpoint":
        """Parse the on-disk layout; raises :class:`CheckpointError` on any
        corruption, truncation, or schema mismatch."""
        try:
            payload = unframe_checksummed(CHECKPOINT_MAGIC, blob)
            sections = unpack_sections(payload)
        except CorruptPayloadError as error:
            raise CheckpointError(f"not a valid checkpoint: {error}") from error
        for key in (_META_KEY, _MODEL_KEY, _HISTORY_KEY):
            if key not in sections:
                raise CheckpointError(f"checkpoint is missing its {key!r} section")
        try:
            meta = json.loads(sections[_META_KEY].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(f"checkpoint metadata is not valid JSON: {error}") from error
        version = meta.get("schema_version")
        if version != SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema version {version!r} is not supported by this "
                f"build (expected {SCHEMA_VERSION}); it was written by an "
                "incompatible release and cannot be resumed safely"
            )
        try:
            model_state = deserialize_named_arrays(sections[_MODEL_KEY])
        except CorruptPayloadError as error:
            raise CheckpointError(f"checkpoint model section is corrupt: {error}") from error
        try:
            history_rows = json.loads(sections[_HISTORY_KEY].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(f"checkpoint history is not valid JSON: {error}") from error
        return cls(
            rounds_completed=int(meta["rounds_completed"]),
            config=meta["config"],
            scheduler=meta["scheduler"],
            schedule=meta["schedule"],
            transport=meta["transport"],
            sampling_rng=meta["sampling_rng"],
            link_rngs=meta["link_rngs"],
            clients=meta["clients"],
            codec=meta["codec"],
            codec_fingerprint=meta["codec_fingerprint"],
            history_rows=history_rows,
            model_state=model_state,
            schema_version=int(version),
        )


# ----------------------------------------------------------------------
# Runtime <-> snapshot
# ----------------------------------------------------------------------
def capture_runtime(runtime) -> RunCheckpoint:
    """Snapshot a :class:`~repro.fl.runtime.FederatedRuntime` mid-run."""
    codec_state = None
    capture = getattr(runtime.codec, "checkpoint_state", None)
    if callable(capture):
        codec_state = capture()
    clients = {
        str(client_id): client.checkpoint_state()
        for client_id, client in runtime.clients.materialized_items()
    }
    return RunCheckpoint(
        rounds_completed=len(runtime.history),
        config=dataclasses.asdict(runtime.config),
        scheduler=runtime.scheduler.state_dict(),
        schedule=runtime.schedule.state_dict() if runtime.schedule is not None else None,
        transport=runtime.transport.spec_fingerprint(),
        sampling_rng=runtime._sampling_rng.bit_generator.state,
        link_rngs={str(cid): state for cid, state in runtime.transport.rng_states().items()},
        clients=clients,
        codec=codec_state,
        codec_fingerprint=codec_fingerprint(runtime.codec),
        history_rows=runtime.history.serialize(),
        model_state=runtime.server.global_state(),
    )


def _check_match(kind: str, saved, current) -> None:
    if saved != current:
        raise CheckpointError(
            f"checkpoint {kind} does not match the resuming runtime "
            f"(saved {saved!r}, runtime has {current!r}); resuming under a "
            f"different {kind} would break bit-identical resumption"
        )


#: Config fields that do not influence the simulated outcome and may differ
#: between the checkpointing and resuming processes: the round target (resume
#: may extend a run), the model-pool bound (pooled execution is bit-identical
#: at any pool size), and the executor choice (serial, thread and process
#: execution are bit-identical by construction, so a run may resume under a
#: different executor or worker count; likewise the round engine — "rounds"
#: and "events" drive identical simulated outcomes, so either may finish a
#: run the other started).
_EXECUTION_ONLY_CONFIG_FIELDS = frozenset(
    {"rounds", "max_resident_models", "executor", "max_workers", "engine"}
)


def validate_compatible(runtime, checkpoint: RunCheckpoint) -> None:
    """Refuse to resume a checkpoint into a runtime it was not taken from."""
    saved = {
        key: value
        for key, value in checkpoint.config.items()
        if key not in _EXECUTION_ONLY_CONFIG_FIELDS
    }
    current = {
        key: value
        for key, value in dataclasses.asdict(runtime.config).items()
        if key not in _EXECUTION_ONLY_CONFIG_FIELDS
    }
    _check_match("run configuration", saved, current)
    _check_match("scheduler", checkpoint.scheduler, runtime.scheduler.state_dict())
    _check_match(
        "participation schedule",
        checkpoint.schedule,
        runtime.schedule.state_dict() if runtime.schedule is not None else None,
    )
    _check_match("transport topology", checkpoint.transport, runtime.transport.spec_fingerprint())
    _check_match("codec", checkpoint.codec_fingerprint, codec_fingerprint(runtime.codec))
    if checkpoint.codec is not None and not callable(
        getattr(runtime.codec, "restore_checkpoint_state", None)
    ):
        raise CheckpointError(
            "checkpoint carries codec state but the runtime's codec does not "
            "implement restore_checkpoint_state(); resume with the codec the "
            "run was started with"
        )


def restore_runtime(runtime, checkpoint: RunCheckpoint) -> None:
    """Load a snapshot into a freshly constructed runtime.

    The runtime must have been built with the same configuration, scheduler,
    schedule and transport as the one the checkpoint was captured from
    (validated first; :class:`CheckpointError` otherwise).  After this call
    the runtime is indistinguishable — for every future round — from the one
    that wrote the snapshot.
    """
    validate_compatible(runtime, checkpoint)
    runtime.server.set_global_state(checkpoint.model_state)
    runtime.history = TrainingHistory.deserialize(checkpoint.history_rows)
    runtime._sampling_rng.bit_generator.state = checkpoint.sampling_rng
    runtime.transport.restore_rng_states(
        {int(cid): state for cid, state in checkpoint.link_rngs.items()}
    )
    for cid, state in checkpoint.clients.items():
        runtime.clients[int(cid)].restore_checkpoint_state(state)
    if checkpoint.codec is not None:
        runtime.codec.restore_checkpoint_state(checkpoint.codec)


# ----------------------------------------------------------------------
# Directory layout, atomic writes, retention
# ----------------------------------------------------------------------
def checkpoint_path(directory: Path | str, rounds_completed: int) -> Path:
    """Canonical file name for a snapshot after ``rounds_completed`` rounds."""
    if rounds_completed < 0 or rounds_completed > 999_999:
        raise ValueError(f"rounds_completed out of range: {rounds_completed}")
    return Path(directory) / f"checkpoint_round{rounds_completed:06d}.ckpt"


def _checkpoint_round(path: Path) -> int:
    return int(_FILE_PATTERN.match(path.name).group(1))


def _crash_markers(directory: Path) -> List[tuple]:
    """``(round_index, path)`` for every crash marker in ``directory``."""
    if not directory.is_dir():
        return []
    markers = []
    for entry in directory.iterdir():
        match = _MARKER_PATTERN.match(entry.name)
        if match:
            markers.append((int(match.group(1)), entry))
    return sorted(markers)


def record_crash_marker(directory: Path | str, round_index: int) -> Path:
    """Durably note that the simulated crash after ``round_index`` fired.

    A snapshot alone cannot say whether the crash round itself was executed —
    a sparse-checkpoint crash dies *after* re-executable rounds — so the
    runtime drops this marker as the :class:`SimulatedCrash` propagates.
    :func:`fired_crash_rounds` feeds the markers back to the fault injector on
    resume, giving one-shot crash schedules exact once-per-round semantics:
    an un-persisted crash round is not re-crashed on replay (no livelock),
    while a listed round that genuinely never ran still fires.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    marker = directory / f"crash_round{int(round_index):06d}.fired"
    marker.touch()
    return marker


def fired_crash_rounds(directory: Path | str) -> frozenset:
    """Round indices whose simulated crash already fired in an earlier process."""
    return frozenset(round_index for round_index, _ in _crash_markers(Path(directory)))


def list_checkpoints(directory: Path | str) -> List[Path]:
    """All checkpoint files in ``directory``, oldest round first.

    In-progress temporaries and foreign files are ignored, so a crash during
    a write never confuses discovery.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _FILE_PATTERN.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def latest_checkpoint(directory: Path | str) -> Optional[Path]:
    """The newest snapshot in ``directory`` (``None`` when there is none)."""
    paths = list_checkpoints(directory)
    return paths[-1] if paths else None


def write_checkpoint(
    checkpoint: RunCheckpoint, directory: Path | str, keep_last: int = 3
) -> Path:
    """Atomically persist a snapshot and prune old ones.

    The bytes are written to a private temporary file in the same directory
    and published with ``os.replace`` — on every platform this repo targets
    that rename is atomic, so readers (and post-crash resumers) only ever see
    complete, checksummed files.  On any failure the temporary is removed.

    After a successful publish, pruning runs in two steps.  First, snapshots
    (and crash markers) from rounds **beyond** this one are deleted: in a live
    run rounds only increase, so anything "from the future" belongs to an
    abandoned timeline — e.g. a fresh, non-resume run re-using a directory
    left behind by a longer crashed run; keeping those files would make
    ``latest_checkpoint`` prefer the abandoned run's state over what was just
    written.  Then all but the newest ``keep_last`` snapshots of the current
    timeline are deleted.
    """
    if keep_last < 1:
        raise ValueError(f"keep_last must be at least 1, got {keep_last}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    destination = checkpoint_path(directory, checkpoint.rounds_completed)
    temporary = directory / f".{destination.name}.tmp.{os.getpid()}"
    try:
        temporary.write_bytes(checkpoint.to_bytes())
        os.replace(temporary, destination)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise
    remaining = []
    for path in list_checkpoints(directory):
        if _checkpoint_round(path) > checkpoint.rounds_completed:
            path.unlink(missing_ok=True)  # abandoned-timeline future snapshot
        else:
            remaining.append(path)
    for marker_round, marker in _crash_markers(directory):
        if marker_round > checkpoint.rounds_completed:
            marker.unlink(missing_ok=True)
    for stale in remaining[:-keep_last]:
        stale.unlink(missing_ok=True)
    return destination


def load_checkpoint(path: Path | str) -> RunCheckpoint:
    """Read and validate one snapshot file."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    return RunCheckpoint.from_bytes(blob)


__all__ = [
    "CHECKPOINT_MAGIC",
    "SCHEMA_VERSION",
    "CheckpointError",
    "RunCheckpoint",
    "codec_fingerprint",
    "capture_runtime",
    "restore_runtime",
    "validate_compatible",
    "checkpoint_path",
    "list_checkpoints",
    "latest_checkpoint",
    "write_checkpoint",
    "load_checkpoint",
    "record_crash_marker",
    "fired_crash_rounds",
]
