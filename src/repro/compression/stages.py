"""Composable stage pipeline shared by every EBLC codec.

The FedSZ paper's codecs (SZ2, SZ3, SZx, ZFP) all follow the same shape —
SZ3 itself is explicitly architected this way, as a modular
predictor/quantizer/encoder pipeline:

.. code-block:: text

                 ┌────────────┐   ┌───────────┐   ┌──────────────┐
    tensor ───▶  │ Predictor  │──▶│ Quantizer │──▶│ EntropyStage │──▶ payload
                 │   stage    │   │  (2ε grid)│   │ (Huffman /   │
                 └────────────┘   └───────────┘   │  DEFLATE)    │
                                                  └──────────────┘

Everything that is *not* prediction lives here, in exactly one place:

* :class:`StageContext` — the per-invocation facts every stage sees (size,
  shape, dtype, resolved absolute bound, codec parameters);
* :class:`PredictorStage` — the one interface a new codec must implement
  (``encode`` sections from a flat float64 array, ``decode`` them back);
* :class:`Quantizer` / :class:`EntropyStage` — the shared ``2ε`` uniform
  quantization and entropy-coding stages;
* metadata framing (:func:`pack_stage_meta` / :func:`unpack_stage_meta`) and
  the raw fallback for empty or constant inputs;
* :class:`StagedCompressor` — the generic composition: validate → resolve
  bound → predictor → frame.  SZ2/SZ3/SZx/ZFP are each a thin
  :class:`PredictorStage` plus a :class:`StagedCompressor` subclass exposing
  their tuning knobs.

Adding a codec therefore means writing one predictor stage (see
``README.md`` → "Adding a codec as a predictor stage") and registering it
with :func:`repro.compression.registry.register_predictor`.

Stages are stateless: all state flows through the :class:`StageContext`, so
codec ``clone()`` is a shallow copy and concurrent per-tensor compression
(see :mod:`repro.core.pipeline`) needs no locking.
"""

from __future__ import annotations

import json
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.compression.base import (
    ErrorBoundMode,
    LossyCompressor,
    pack_array,
    pack_sections,
    resolve_error_bound,
    unpack_array,
    unpack_sections,
    validate_lossy_input,
)
from repro.compression.entropy import EntropyBackend, decode_indices, encode_indices
from repro.compression.errors import CorruptPayloadError
from repro.compression.quantizer import dequantize_residuals, quantize_residuals

#: Shared payload version for every staged codec (bumped from the per-codec
#: version 2 formats the monolithic implementations used).
STAGED_FORMAT_VERSION = 3

_META_STRUCT = struct.Struct("<IQdB")


@dataclass
class StageContext:
    """Per-invocation facts shared by every stage of one (de)compression.

    ``params`` carries the codec-specific scalars that must round-trip through
    the payload metadata (block size, cubic flag, retained precision, ...);
    predictors populate it in :meth:`PredictorStage.prepare` and read it back
    in :meth:`PredictorStage.decode`, so a decoder instance configured
    differently from the encoder still decodes faithfully.
    """

    size: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    error_bound: float = 0.0
    mode: ErrorBoundMode = ErrorBoundMode.REL
    absolute_bound: float = 0.0
    raw: bool = False
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def bin_width(self) -> float:
        """Uniform quantization grid spacing (``2ε``)."""
        return 2.0 * self.absolute_bound


class Quantizer:
    """Uniform error-bounded quantization stage (grid width ``2ε``).

    Thin stage wrapper over :mod:`repro.compression.quantizer`'s residual
    primitives: ``encode`` maps value-minus-prediction onto signed bin
    indices, ``decode`` reconstructs ``prediction + index * 2ε``, which keeps
    the element-wise error within ``ε`` by construction.
    """

    @staticmethod
    def encode(values: np.ndarray, predictions: np.ndarray, ctx: StageContext) -> np.ndarray:
        return quantize_residuals(values, predictions, ctx.absolute_bound)

    @staticmethod
    def decode(indices: np.ndarray, predictions: np.ndarray, ctx: StageContext) -> np.ndarray:
        return dequantize_residuals(indices, predictions, ctx.absolute_bound)


@dataclass(frozen=True)
class EntropyStage:
    """Entropy-coding stage over quantization indices (Huffman / DEFLATE)."""

    backend: EntropyBackend = "deflate"
    level: int = 6

    def encode(self, indices: np.ndarray) -> bytes:
        return encode_indices(indices, self.backend, self.level)

    @staticmethod
    def decode(payload: bytes) -> np.ndarray:
        # Entropy payloads are self-describing, so decode needs no config.
        return decode_indices(payload)


class PredictorStage(ABC):
    """The one interface a codec must implement in the stage pipeline.

    ``prepare`` resolves the error bound (the shared default handles the
    ABS/REL semantics and the zero-bound raw fallback) and records the
    codec parameters that must survive into the payload metadata.
    ``encode`` turns the flat float64 array into named payload sections;
    ``decode`` is its exact inverse, reading parameters from the context the
    metadata was unpacked into.  Implementations must be stateless — every
    per-call fact belongs on the :class:`StageContext`.
    """

    #: Human-readable stage name (diagnostics only).
    name: str = "predictor"

    def prepare(self, flat: np.ndarray, ctx: StageContext) -> None:
        """Resolve the bound and decide whether to fall back to raw storage.

        The default covers every strictly-bounded SZ-style codec: resolve the
        (bound, mode) pair into an absolute tolerance, and store the input
        raw when it is empty or constant (zero resolved bound) — exact
        storage is trivially cheap for both.
        """
        ctx.absolute_bound = resolve_error_bound(flat, ctx.error_bound, ctx.mode)
        ctx.raw = ctx.size == 0 or ctx.absolute_bound <= 0

    @abstractmethod
    def encode(self, flat: np.ndarray, ctx: StageContext) -> Dict[str, bytes]:
        """Compress a flat float64 array into named payload sections."""

    @abstractmethod
    def decode(self, sections: Mapping[str, bytes], ctx: StageContext) -> np.ndarray:
        """Reconstruct the flat float64 array from payload sections."""


def pack_stage_meta(ctx: StageContext) -> bytes:
    """Serialize the shared metadata section for a staged payload."""
    params_blob = json.dumps(ctx.params, sort_keys=True).encode("utf-8")
    dtype_name = np.dtype(ctx.dtype).str.encode("ascii")
    blob = bytearray(
        _META_STRUCT.pack(
            STAGED_FORMAT_VERSION, ctx.size, float(ctx.absolute_bound), 1 if ctx.raw else 0
        )
    )
    blob += struct.pack("<H", len(dtype_name)) + dtype_name
    blob += struct.pack("<B", len(ctx.shape))
    if ctx.shape:
        blob += struct.pack(f"<{len(ctx.shape)}q", *ctx.shape)
    blob += struct.pack("<I", len(params_blob)) + params_blob
    return bytes(blob)


def unpack_stage_meta(blob: bytes | None, codec: str) -> StageContext:
    """Inverse of :func:`pack_stage_meta`, validating the format version."""
    if not blob or len(blob) < _META_STRUCT.size:
        raise CorruptPayloadError(f"{codec} payload missing metadata section")
    try:
        version, size, absolute_bound, raw = _META_STRUCT.unpack_from(blob, 0)
        if version != STAGED_FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported {codec} payload version {version}")
        cursor = _META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape: Tuple[int, ...] = ()
        if ndim:
            shape = struct.unpack_from(f"<{ndim}q", blob, cursor)
            cursor += 8 * ndim
        (params_len,) = struct.unpack_from("<I", blob, cursor)
        cursor += 4
        params = json.loads(blob[cursor : cursor + params_len].decode("utf-8"))
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError, TypeError) as error:
        raise CorruptPayloadError(f"corrupt {codec} payload metadata: {error}") from error
    return StageContext(
        size=int(size),
        shape=tuple(int(s) for s in shape),
        dtype=dtype,
        absolute_bound=float(absolute_bound),
        raw=bool(raw),
        params=params,
    )


class StagedCompressor(LossyCompressor):
    """Generic error-bounded compressor composed from a predictor stage.

    Subclasses hold the codec's tuning knobs as plain instance attributes
    (so ``FedSZConfig.lossy_options`` can keep overriding them by name) and
    build their predictor per call from those attributes — predictor
    construction is a couple of attribute assignments, so this costs nothing
    and guarantees option mutations are always picked up.
    """

    def _predictor(self) -> PredictorStage:
        raise NotImplementedError(f"{type(self).__name__} must build its predictor stage")

    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = validate_lossy_input(data, codec=self.name)
        flat = data.astype(np.float64, copy=False).ravel()
        ctx = StageContext(
            size=flat.size,
            shape=data.shape,
            dtype=data.dtype,
            error_bound=float(error_bound),
            mode=mode,
        )
        predictor = self._predictor()
        predictor.prepare(flat, ctx)
        if ctx.raw:
            return pack_sections({"meta": pack_stage_meta(ctx), "raw": pack_array(data)})
        sections = predictor.encode(flat, ctx)
        return pack_sections({"meta": pack_stage_meta(ctx), **sections})

    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        ctx = unpack_stage_meta(sections.get("meta"), self.name)
        if ctx.raw:
            return unpack_array(sections["raw"])
        flat = self._predictor().decode(sections, ctx)
        return flat.astype(ctx.dtype).reshape(ctx.shape)


def pad_to_blocks(flat: np.ndarray, block: int, fill: str = "edge") -> Tuple[np.ndarray, int]:
    """Pad a 1-D float64 array up to a whole number of ``block``-sized blocks.

    ``fill="edge"`` repeats the last value (SZ2/SZx — keeps the pad inside
    the final block's value range), ``fill="zero"`` pads with zeros (ZFP —
    matches block-floating-point alignment of a partially filled block).
    """
    num_blocks = -(-flat.size // block)
    padded_size = num_blocks * block
    if padded_size == flat.size:
        return flat, num_blocks
    if fill == "edge":
        padded = np.empty(padded_size, dtype=np.float64)
        padded[flat.size :] = flat[-1]
    elif fill == "zero":
        padded = np.zeros(padded_size, dtype=np.float64)
    else:
        raise ValueError(f"unknown pad fill {fill!r}")
    padded[: flat.size] = flat
    return padded, num_blocks


__all__ = [
    "STAGED_FORMAT_VERSION",
    "StageContext",
    "Quantizer",
    "EntropyStage",
    "PredictorStage",
    "StagedCompressor",
    "pack_stage_meta",
    "unpack_stage_meta",
    "pad_to_blocks",
]
