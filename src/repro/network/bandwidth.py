"""Bandwidth model and simulated client→server channel.

The paper emulates constrained networks by measuring the real MPI
process-to-process bandwidth and inserting sleeps sized so that each transfer
takes as long as it would on the target link (Section VI-C).  The simulator
here does the same thing analytically: every transfer is billed
``latency + bytes / bandwidth`` seconds of *simulated* time, and an optional
``real_sleep`` flag reproduces the paper's wall-clock emulation for
demonstrations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.utils.sizes import megabits_per_second_to_bytes_per_second


@dataclass(frozen=True)
class BandwidthModel:
    """A point-to-point link characterised by bandwidth and fixed latency."""

    bandwidth_mbps: float
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps} Mbps")
        if self.latency_seconds < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_seconds}")

    @property
    def bytes_per_second(self) -> float:
        """Usable link throughput in bytes per second."""
        return megabits_per_second_to_bytes_per_second(self.bandwidth_mbps)

    def transmission_seconds(self, num_bytes: int) -> float:
        """Seconds needed to push ``num_bytes`` through the link."""
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes}")
        return self.latency_seconds + num_bytes / self.bytes_per_second


#: Bandwidths highlighted in the paper's evaluation.
EDGE_BANDWIDTH_MBPS = 10.0  # typical constrained edge uplink (Figure 7/9)
DATACENTER_BANDWIDTH_MBPS = 10_000.0  # "can approach 10 Gbps" (Section VI-C)


@dataclass
class TransferRecord:
    """One simulated transfer."""

    payload_nbytes: int
    seconds: float
    description: str = ""


@dataclass
class SimulatedChannel:
    """Client→server channel accumulating simulated transfer time.

    ``real_sleep=True`` reproduces the paper's wall-clock emulation (the
    process actually sleeps for the computed duration); by default time is
    only accounted virtually so large sweeps remain fast.
    """

    bandwidth: BandwidthModel
    real_sleep: bool = False
    transfers: List[TransferRecord] = field(default_factory=list)

    def send(
        self, payload: bytes | int, description: str = "", delay_scale: float = 1.0
    ) -> TransferRecord:
        """Simulate sending ``payload`` (bytes object or a byte count).

        ``delay_scale`` multiplies the modelled transfer time; transport links
        use it to inject stragglers (a slow client occupies its link longer
        without changing the link's nominal bandwidth).
        """
        if delay_scale < 0:
            raise ValueError(f"delay_scale must be non-negative, got {delay_scale}")
        num_bytes = payload if isinstance(payload, int) else len(payload)
        seconds = self.bandwidth.transmission_seconds(num_bytes) * delay_scale
        if self.real_sleep:
            time.sleep(seconds)
        record = TransferRecord(payload_nbytes=num_bytes, seconds=seconds, description=description)
        self.transfers.append(record)
        return record

    @property
    def total_seconds(self) -> float:
        """Total simulated transfer time so far."""
        return sum(record.seconds for record in self.transfers)

    @property
    def total_bytes(self) -> int:
        """Total bytes pushed through the channel so far."""
        return sum(record.payload_nbytes for record in self.transfers)

    def reset(self) -> None:
        """Forget all recorded transfers."""
        self.transfers.clear()
