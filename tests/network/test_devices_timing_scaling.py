"""Tests for device profiles, communication estimates and the scaling model."""

from __future__ import annotations

import pytest

from repro.network import (
    RASPBERRY_PI_5,
    DeviceProfile,
    EpochTimeBreakdown,
    ScalingConfig,
    TimingAccumulator,
    estimate_communication,
    get_device_profile,
    speedup_curve,
    strong_scaling,
    weak_scaling,
)


# ----------------------------------------------------------------------
# Device profiles
# ----------------------------------------------------------------------
def test_raspberry_pi_profile_matches_table1_runtime():
    """Table I: compressing the 230 MB AlexNet state with SZ2 at 1e-2 takes ~3.2 s."""
    seconds = RASPBERRY_PI_5.compression_seconds("sz2", 230_000_000, 1e-2)
    assert seconds == pytest.approx(3.25, rel=0.05)


def test_raspberry_pi_szx_is_orders_of_magnitude_faster():
    sz2 = RASPBERRY_PI_5.compression_seconds("sz2", 100_000_000, 1e-2)
    szx = RASPBERRY_PI_5.compression_seconds("szx", 100_000_000, 1e-2)
    assert szx < sz2 / 20


def test_device_profile_nearest_bound_lookup():
    exact = RASPBERRY_PI_5.compression_seconds("sz3", 1_000_000, 1e-3)
    nearby = RASPBERRY_PI_5.compression_seconds("sz3", 1_000_000, 2e-3)
    assert exact == nearby


def test_device_profile_decompression_faster_than_compression():
    compress = RASPBERRY_PI_5.compression_seconds("sz2", 10_000_000, 1e-2)
    decompress = RASPBERRY_PI_5.decompression_seconds("sz2", 10_000_000, 1e-2)
    assert decompress < compress


def test_device_profile_lossless_lookup_and_errors():
    assert RASPBERRY_PI_5.lossless_seconds("blosc-lz", 1_000_000) < RASPBERRY_PI_5.lossless_seconds(
        "xz", 1_000_000
    )
    with pytest.raises(KeyError):
        RASPBERRY_PI_5.lossless_seconds("lz4", 100)
    with pytest.raises(KeyError):
        RASPBERRY_PI_5.compression_seconds("mgard", 100)


def test_get_device_profile_lookup():
    assert get_device_profile("local") is None
    assert get_device_profile("raspberry-pi-5") is RASPBERRY_PI_5
    assert isinstance(get_device_profile("rpi5"), DeviceProfile)
    with pytest.raises(KeyError):
        get_device_profile("jetson-nano")


# ----------------------------------------------------------------------
# Communication estimates
# ----------------------------------------------------------------------
def test_uncompressed_estimate_has_no_codec_time():
    estimate = estimate_communication(230_000_000, None, bandwidth_mbps=10.0)
    assert estimate.compress_seconds == 0.0
    assert estimate.transmitted_nbytes == 230_000_000
    assert estimate.total_seconds == pytest.approx(184.0)


def test_compressed_estimate_with_device_profile_reduces_total_time():
    """Figure 7: at 10 Mbps, FedSZ cuts AlexNet communication by ~an order of magnitude."""
    original = 230_000_000
    compressed = int(original / 12.61)  # Table V AlexNet / CIFAR-10 at 1e-2
    baseline = estimate_communication(original, None, bandwidth_mbps=10.0)
    fedsz = estimate_communication(
        original,
        compressed,
        bandwidth_mbps=10.0,
        compressor="sz2",
        error_bound=1e-2,
        device=RASPBERRY_PI_5,
    )
    assert fedsz.total_seconds < baseline.total_seconds / 8
    assert (baseline.total_seconds - fedsz.total_seconds) > 100
    assert fedsz.as_decision().worthwhile


def test_compressed_estimate_with_measured_times():
    estimate = estimate_communication(
        1_000_000,
        200_000,
        bandwidth_mbps=100.0,
        compressor="sz2",
        measured_compress_seconds=0.01,
        measured_decompress_seconds=0.005,
    )
    assert estimate.compress_seconds == 0.01
    assert estimate.total_seconds == pytest.approx(0.01 + 0.005 + 0.016, rel=1e-3)


# ----------------------------------------------------------------------
# Epoch breakdowns
# ----------------------------------------------------------------------
def test_epoch_breakdown_fraction_and_row():
    breakdown = EpochTimeBreakdown(
        client_training_seconds=18.0,
        validation_seconds=2.0,
        compression_seconds=1.0,
        communication_seconds=0.0,
    )
    assert breakdown.total_seconds == pytest.approx(21.0)
    assert breakdown.compression_overhead_fraction == pytest.approx(1.0 / 21.0)
    row = breakdown.as_row()
    assert row["compression_overhead_percent"] == pytest.approx(100.0 / 21.0)


def test_empty_breakdown_fraction_is_zero():
    assert EpochTimeBreakdown().compression_overhead_fraction == 0.0


def test_timing_accumulator_mean():
    accumulator = TimingAccumulator()
    accumulator.add(EpochTimeBreakdown(10.0, 1.0, 0.5, 2.0))
    accumulator.add(EpochTimeBreakdown(20.0, 3.0, 1.5, 4.0))
    mean = accumulator.mean_breakdown()
    assert mean.client_training_seconds == pytest.approx(15.0)
    assert mean.compression_seconds == pytest.approx(1.0)
    assert TimingAccumulator().mean_breakdown().total_seconds == 0.0


# ----------------------------------------------------------------------
# Scaling model (Figure 9)
# ----------------------------------------------------------------------
@pytest.fixture
def scaling_configs():
    update_nbytes = 9_000_000  # MobileNetV2-sized update
    compressed = update_nbytes // 5
    fedsz = ScalingConfig(
        update_nbytes=update_nbytes,
        compressed_nbytes=compressed,
        train_seconds_per_client=5.0,
        compress_seconds_per_client=0.4,
        bandwidth_mbps=10.0,
    )
    uncompressed = ScalingConfig(
        update_nbytes=update_nbytes,
        compressed_nbytes=None,
        train_seconds_per_client=5.0,
        compress_seconds_per_client=0.0,
        bandwidth_mbps=10.0,
    )
    return fedsz, uncompressed


CORES = [2, 4, 8, 16, 32, 64, 128]


def test_weak_scaling_time_grows_with_clients(scaling_configs):
    fedsz, _ = scaling_configs
    points = weak_scaling(fedsz, CORES)
    times = [p.epoch_seconds_per_client for p in points]
    assert all(later >= earlier for earlier, later in zip(times, times[1:], strict=False))
    assert points[-1].clients == 128


def test_weak_scaling_compression_is_flatter_than_uncompressed(scaling_configs):
    fedsz, uncompressed = scaling_configs
    fedsz_points = weak_scaling(fedsz, CORES)
    raw_points = weak_scaling(uncompressed, CORES)
    fedsz_growth = fedsz_points[-1].epoch_seconds_per_client / fedsz_points[0].epoch_seconds_per_client
    raw_growth = raw_points[-1].epoch_seconds_per_client / raw_points[0].epoch_seconds_per_client
    assert fedsz_growth < raw_growth
    assert all(
        f.epoch_seconds_per_client < r.epoch_seconds_per_client
        for f, r in zip(fedsz_points, raw_points, strict=True)
    )


def test_strong_scaling_speedup_increases_with_cores(scaling_configs):
    fedsz, _ = scaling_configs
    points = strong_scaling(fedsz, CORES, total_clients=127)
    speedups = speedup_curve(points)
    assert speedups[2] == pytest.approx(1.0)
    assert speedups[128] > speedups[2]
    assert speedups[128] > 3.0


def test_scaling_validation(scaling_configs):
    fedsz, _ = scaling_configs
    with pytest.raises(ValueError):
        strong_scaling(fedsz, [0])
    assert speedup_curve([]) == {}
