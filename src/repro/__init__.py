"""FedSZ reproduction: error-bounded lossy compression for FL communications.

A from-scratch, pure-Python/numpy reproduction of "FedSZ: Leveraging
Error-Bounded Lossy Compression for Federated Learning Communications"
(Wilkins et al., ICDCS 2024), including every substrate the paper depends on:

* :mod:`repro.compression` — SZ2 / SZ3 / SZx / ZFP analogues plus the
  lossless codec suite;
* :mod:`repro.nn` — a minimal deep-learning substrate (Module/state_dict,
  layers, SGD) and the AlexNet / MobileNetV2 / ResNet model zoo;
* :mod:`repro.data` — synthetic CIFAR-10 / Fashion-MNIST / Caltech101
  stand-ins and client partitioning;
* :mod:`repro.fl` — FedAvg clients, server and the federated simulation loop;
* :mod:`repro.network` — bandwidth/device/timing models and the Eqn.-1
  decision rule;
* :mod:`repro.core` — the FedSZ pipeline itself (partition, compress,
  serialize) and the compressor / error-bound selection procedures;
* :mod:`repro.privacy` — compression-error analysis and the
  differential-privacy comparison;
* :mod:`repro.experiments` — one harness per table/figure of the paper.

Quickstart::

    from repro.core import FedSZCompressor
    from repro.nn.models import create_model

    model = create_model("mobilenetv2", "tiny", seed=0)
    codec = FedSZCompressor(error_bound=1e-2)
    payload = codec.compress(model.state_dict())
    restored = codec.decompress(payload)
    print(codec.report().ratio)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
