"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator, Mapping, Tuple

import numpy as np

from repro.data.datasets import SyntheticImageDataset


class DataLoader:
    """Batched (optionally shuffled) iteration over a dataset.

    Iterating twice yields different shuffles when ``shuffle=True`` (a fresh
    permutation per epoch), but the sequence of permutations is fully
    determined by the seed, keeping federated runs reproducible.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = np.random.default_rng(seed)

    def get_rng_state(self) -> dict:
        """Snapshot the shuffle stream (advances once per shuffled epoch).

        The public accessor pair (`get`/`set`) exists for checkpointing:
        callers persist the state and later hand it back to
        :meth:`set_rng_state`, restoring the exact sequence of future epoch
        permutations without reaching into the private generator.
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: Mapping) -> None:
        """Restore a shuffle-stream snapshot taken by :meth:`get_rng_state`."""
        self._rng.bit_generator.state = dict(state)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            if batch.size < self.batch_size and self.drop_last:
                return
            yield self.dataset.images[batch], self.dataset.labels[batch]
