"""Runtime RNG/clock sanitizer behaviour.

The sanitizer must (a) blow up when *repo runtime code* touches global RNG or
wall-clock, (b) pass calls from anywhere else through untouched, and (c)
restore every patched function on exit, including under nesting.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    DeterminismViolation,
    is_active,
    sanitized,
    violation_snapshot,
)
from repro.obs import RunMonitor
from repro.utils.seeding import set_global_seed


class TestRaisesFromRepoCode:
    def test_global_seed_entry_point_raises(self):
        # utils.seeding.set_global_seed carries lint suppressions (it is the
        # sanctioned *static* escape hatch), but the determinism suites must
        # still never reach it dynamically — the sanitizer enforces that.
        with sanitized():
            with pytest.raises(DeterminismViolation, match="random.seed"):
                set_global_seed(0)

    def test_monitor_default_wall_clock_raises(self):
        # RunMonitor's default clock is time.time, called from obs/monitor.py
        # (repo runtime code) — under the sanitizer that must fail loudly.
        with sanitized():
            monitor = RunMonitor()
            with pytest.raises(DeterminismViolation, match="time.time"):
                monitor.emit("probe")

    def test_injected_clock_keeps_monitor_usable(self):
        with sanitized():
            monitor = RunMonitor(clock=lambda: 0.0)
            event = monitor.emit("probe")
            assert event.wall_time == 0.0


class TestPassThroughOutsideRepo:
    def test_test_code_may_use_globals(self):
        with sanitized():
            # This frame lives under tests/, not src/repro — allowed.
            assert np.random.rand() is not None
            assert random.random() is not None
            assert time.time() > 0


class TestPatchLifecycle:
    def test_patches_are_restored(self):
        before = (np.random.seed, random.seed, time.time)
        with sanitized():
            assert is_active()
            assert np.random.seed is not before[0]
        assert not is_active()
        assert (np.random.seed, random.seed, time.time) == before
        assert violation_snapshot() == {"active_depth": 0, "patched": 0}

    def test_nesting_is_reentrant(self):
        with sanitized():
            patched = violation_snapshot()["patched"]
            with sanitized():
                # Inner activation must not double-patch.
                assert violation_snapshot() == {"active_depth": 2, "patched": patched}
            assert is_active()
        assert not is_active()

    def test_restored_after_violation(self):
        original = time.time
        with pytest.raises(DeterminismViolation):
            with sanitized():
                set_global_seed(3)
        assert time.time is original
        assert not is_active()

    def test_rng_only_mode_leaves_clock_alone(self):
        original = time.time
        with sanitized(clock=False):
            assert time.time is original
            with pytest.raises(DeterminismViolation):
                set_global_seed(1)
