"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools/pip combination predates PEP 660 support
(``pip install -e .`` falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
