"""Neural-network layers with explicit forward/backward passes."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.seeding import default_rng


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = rng or default_rng()
        self.weight = Parameter(init.linear_weight(out_features, in_features, rng))
        if bias:
            self.bias = Parameter(init.linear_bias(out_features, in_features, rng))
        else:
            self.register_parameter("bias", None)
            object.__setattr__(self, "bias", None)
        self._cache: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._cache = inputs
        output = inputs @ self.weight.data.T
        if self.bias is not None:
            output = output + self.bias.data
        return output.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        inputs = self._cache
        self.weight.accumulate_grad(grad_output.T @ inputs)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return (grad_output @ self.weight.data).astype(np.float32)


class Conv2d(Module):
    """2-D convolution (supports grouped and depthwise convolutions)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("in_channels and out_channels must be divisible by groups")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        rng = rng or default_rng()
        self.weight = Parameter(
            init.conv_weight(out_channels, in_channels // groups, kernel_size, rng)
        )
        if bias:
            self.bias = Parameter(np.zeros(out_channels, dtype=np.float32))
        else:
            self.register_parameter("bias", None)
            object.__setattr__(self, "bias", None)
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        output, self._cache = F.conv2d_forward(
            inputs, self.weight.data, bias, self.stride, self.padding, self.groups
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input, grad_weight, grad_bias = F.conv2d_backward(
            grad_output, self.weight.data, self._cache
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW inputs.

    Running statistics are tracked as buffers (``running_mean``,
    ``running_var`` and ``num_batches_tracked``) so that they appear in
    ``state_dict()`` — they are precisely the "metadata and non-weight
    parameters" FedSZ routes through the lossless path.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.array(0, dtype=np.int64))
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self.training:
            mean = inputs.mean(axis=(0, 2, 3))
            var = inputs.var(axis=(0, 2, 3))
            self._buffers["running_mean"] = (
                (1.0 - self.momentum) * self._buffers["running_mean"] + self.momentum * mean
            ).astype(np.float32)
            self._buffers["running_var"] = (
                (1.0 - self.momentum) * self._buffers["running_var"] + self.momentum * var
            ).astype(np.float32)
            self._buffers["num_batches_tracked"] = self._buffers["num_batches_tracked"] + 1
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]

        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (inputs - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
        output = normalized * self.weight.data.reshape(1, -1, 1, 1) + self.bias.data.reshape(1, -1, 1, 1)
        self._cache = {
            "normalized": normalized,
            "inv_std": inv_std,
            "input_shape": inputs.shape,
            "training": self.training,
        }
        return output.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cache = self._cache
        normalized = cache["normalized"]
        inv_std = cache["inv_std"]
        batch, _, height, width = cache["input_shape"]
        count = batch * height * width

        grad_weight = np.sum(grad_output * normalized, axis=(0, 2, 3))
        grad_bias = np.sum(grad_output, axis=(0, 2, 3))
        self.weight.accumulate_grad(grad_weight)
        self.bias.accumulate_grad(grad_bias)

        grad_normalized = grad_output * self.weight.data.reshape(1, -1, 1, 1)
        if cache["training"]:
            # Full batch-norm gradient (statistics depend on the batch).
            sum_grad = grad_normalized.sum(axis=(0, 2, 3), keepdims=True)
            sum_grad_normalized = (grad_normalized * normalized).sum(axis=(0, 2, 3), keepdims=True)
            grad_input = (
                grad_normalized - sum_grad / count - normalized * sum_grad_normalized / count
            ) * inv_std.reshape(1, -1, 1, 1)
        else:
            grad_input = grad_normalized * inv_std.reshape(1, -1, 1, 1)
        return grad_input.astype(np.float32)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._mask = F.relu_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_output, self._mask)


class ReLU6(Module):
    """ReLU clipped at 6, used throughout MobileNetV2."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._mask = F.relu_forward(inputs, max_value=6.0)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_output, self._mask)


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.padding = int(padding)
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.max_pool2d_forward(
            inputs, self.kernel_size, self.stride, self.padding
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.max_pool2d_backward(grad_output, self._cache)


class AvgPool2d(Module):
    """Average pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.padding = int(padding)
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.avg_pool2d_forward(
            inputs, self.kernel_size, self.stride, self.padding
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.avg_pool2d_backward(grad_output, self._cache)


class GlobalAvgPool2d(Module):
    """Adaptive average pooling to 1×1 (the head pooling of ResNet/MobileNet)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.global_avg_pool_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.global_avg_pool_backward(grad_output, self._cache)


class Flatten(Module):
    """Flatten all dimensions after the batch axis."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, probability: float = 0.5, rng=None) -> None:
        super().__init__()
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {probability}")
        self.probability = float(probability)
        self._rng = rng or default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.probability == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.probability
        self._mask = (self._rng.random(inputs.shape) < keep).astype(np.float32) / keep
        return (inputs * self._mask).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return (grad_output * self._mask).astype(np.float32)


class Identity(Module):
    """Pass-through module (used for optional residual projections)."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(index)]

    def append(self, module: Module) -> "Sequential":
        """Add a module at the end of the container."""
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for module in self._modules.values():
            output = module(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for module in reversed(list(self._modules.values())):
            grad = module.backward(grad)
        return grad
