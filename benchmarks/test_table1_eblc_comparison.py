"""Benchmark regenerating Table I (EBLC comparison across models)."""

from __future__ import annotations

from repro.experiments import run_table1


def test_table1_eblc_comparison(run_once):
    result = run_once(
        run_table1,
        models=("alexnet", "mobilenetv2", "resnet50"),
        error_bounds=(1e-2, 1e-3, 1e-4),
        sample_elements=200_000,
        device="raspberry-pi-5",
    )
    print()
    print(result.to_text())

    # Paper shape: SZ2 achieves the best ratio of the error-bounded candidates
    # at 1e-2 on every model, ZFP trails clearly, SZx is the fastest.
    for model in ("alexnet", "mobilenetv2", "resnet50"):
        rows = {row["compressor"]: row for row in result.filter(model=model, error_bound=1e-2)}
        assert rows["sz2"]["ratio"] >= rows["sz3"]["ratio"] * 0.9
        assert rows["sz2"]["ratio"] > rows["zfp"]["ratio"]
        assert rows["szx"]["runtime_seconds"] < rows["sz2"]["runtime_seconds"]
    # Ratios fall as the bound tightens (Table I columns left to right).
    alexnet_sz2 = sorted(
        result.filter(model="alexnet", compressor="sz2"), key=lambda row: row["error_bound"]
    )
    ratios = [row["ratio"] for row in alexnet_sz2]
    assert ratios == sorted(ratios)
