"""State-dict partitioning (Algorithm 1, lines 2–8).

FedSZ splits a client update — the model ``state_dict()`` — into

* the **lossy partition**: large floating-point *weight* tensors, which
  dominate the update size and tolerate bounded error, and
* the **lossless partition**: everything else — biases, BatchNorm scale/shift
  and running statistics, integer counters and any weight tensor smaller than
  the threshold — whose exact values are cheap to keep and risky to perturb.

The rule is exactly the paper's: a tensor goes lossy when its name contains
``"weight"``, it is floating point, and its flattened size exceeds the
``threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from repro.core.config import DEFAULT_PARTITION_THRESHOLD


def is_lossy_eligible(name: str, tensor: np.ndarray, threshold: int = DEFAULT_PARTITION_THRESHOLD) -> bool:
    """Algorithm 1's predicate for routing a tensor to the lossy path."""
    tensor = np.asarray(tensor)
    return (
        "weight" in name
        and np.issubdtype(tensor.dtype, np.floating)
        and tensor.size > threshold
    )


@dataclass
class StateDictPartition:
    """The two halves of a partitioned state dict, with bookkeeping."""

    lossy: Dict[str, np.ndarray] = field(default_factory=dict)
    lossless: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def lossy_nbytes(self) -> int:
        """Raw byte footprint of the lossy partition."""
        return int(sum(np.asarray(v).nbytes for v in self.lossy.values()))

    @property
    def lossless_nbytes(self) -> int:
        """Raw byte footprint of the lossless partition."""
        return int(sum(np.asarray(v).nbytes for v in self.lossless.values()))

    @property
    def total_nbytes(self) -> int:
        """Raw byte footprint of the whole state dict."""
        return self.lossy_nbytes + self.lossless_nbytes

    @property
    def lossy_fraction(self) -> float:
        """Share of bytes eligible for lossy compression (Table III's column)."""
        total = self.total_nbytes
        if total == 0:
            return 0.0
        return self.lossy_nbytes / total

    def merged(self) -> Dict[str, np.ndarray]:
        """Recombine both partitions into a single mapping."""
        combined: Dict[str, np.ndarray] = {}
        combined.update(self.lossy)
        combined.update(self.lossless)
        return combined


def partition_state_dict(
    state_dict: Mapping[str, np.ndarray],
    threshold: int = DEFAULT_PARTITION_THRESHOLD,
) -> StateDictPartition:
    """Split ``state_dict`` into lossy / lossless partitions (Algorithm 1)."""
    partition = StateDictPartition()
    for name, tensor in state_dict.items():
        tensor = np.asarray(tensor)
        if is_lossy_eligible(name, tensor, threshold):
            partition.lossy[name] = tensor
        else:
            partition.lossless[name] = tensor
    return partition
