"""Benchmark regenerating Figure 4 (accuracy convergence per EBLC)."""

from __future__ import annotations

from repro.experiments import final_accuracies, run_figure4


def test_figure4_accuracy_convergence(run_once):
    result = run_once(
        run_figure4,
        compressors=(None, "sz2", "sz3", "zfp"),
        rounds=6,
        samples=500,
        num_clients=4,
        error_bound=1e-2,
    )
    print()
    print(result.to_text())

    finals = final_accuracies(result)
    # Paper shape: the error-bounded compressors track the uncompressed run at
    # the recommended bound — accuracy rises well above chance and the gap to
    # the baseline stays small.  (SZx, whose collapse in the paper stems from
    # an implementation quirk of SZx v1.0.0, is covered in EXPERIMENTS.md.)
    assert finals["uncompressed"] > 0.5
    for compressor in ("sz2", "sz3", "zfp"):
        assert finals[compressor] > 0.5
        assert abs(finals[compressor] - finals["uncompressed"]) < 0.2

    for label in ("uncompressed", "sz2"):
        accuracies = [row["accuracy"] for row in result.filter(compressor=label)]
        assert accuracies[-1] > accuracies[0]
