"""Shared workload builders for the experiment harnesses.

Three kinds of workload are needed to regenerate the paper's tables and
figures:

* **paper-scale state dicts** whose tensor shapes match torchvision's
  AlexNet / MobileNetV2 / ResNet-50 and whose weight values are distributed
  like trained weights (heavy-tailed, dataset-seeded) — used by the
  compression-ratio, sizing and communication experiments, where only the
  data distribution matters, not a functioning model;
* **trained tiny models** of the same architectural families, genuinely
  trained on the synthetic datasets — used wherever inference accuracy is the
  measured quantity (Figures 4 and 5, Table I's accuracy columns);
* **federated setups** (datasets, model factory, configuration) shared by the
  convergence and timing experiments.

Paper-scale tensors can optionally be subsampled (``max_elements_per_tensor``)
so that sweeps over many (model, dataset, bound) combinations remain fast;
ratios measured on the subsample track the full-tensor ratios closely because
the value distribution is what drives the entropy stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.data import SyntheticImageDataset, load_dataset
from repro.fl import FLConfig
from repro.nn.models import create_model
from repro.nn.module import Module
from repro.utils.seeding import SeedSequenceFactory

#: (model, dataset) grids evaluated by the paper.
PAPER_MODELS = ("alexnet", "mobilenetv2", "resnet50")
PAPER_DATASETS = ("cifar10", "caltech101", "fashion-mnist")

#: Per-model Laplace scale of the trained-weight bulk (Figure 3 calibration).
_WEIGHT_SCALES: Dict[str, float] = {
    "alexnet": 0.016,
    "mobilenetv2": 0.075,
    "resnet50": 0.032,
    "resnet18": 0.03,
}

#: Dataset-specific spread multiplier: harder tasks (more classes) leave the
#: fine-tuned weights slightly more spread out, which is why Table V's ratios
#: differ a little between datasets for the same model.
_DATASET_SPREAD: Dict[str, float] = {
    "cifar10": 1.0,
    "caltech101": 1.25,
    "fashion-mnist": 0.95,
}


def _dataset_seed(dataset: str) -> int:
    return abs(hash(("fedsz-repro", dataset))) % (2**31)


def _heavy_tailed_weights(rng: np.random.Generator, size: int, scale: float) -> np.ndarray:
    """Draw trained-like weights: Laplace bulk, a wider mid-tail, rare outliers.

    The three-component mixture matches the qualitative shape of trained
    convolutional checkpoints (Figure 3): most mass concentrated near zero, a
    noticeable fraction spread several scales wider (later layers / biases
    folded into weights), and isolated large-magnitude values that set the
    tensor's dynamic range.
    """
    values = rng.laplace(0.0, scale / np.sqrt(2.0), size)
    mid_tail = max(1, size // 10)
    positions = rng.choice(size, mid_tail, replace=False)
    values[positions] = rng.laplace(0.0, 3.0 * scale / np.sqrt(2.0), mid_tail)
    outliers = max(1, size // 2000)
    positions = rng.choice(size, outliers, replace=False)
    values[positions] = rng.uniform(-0.9, 0.9, outliers)
    # Trained weights stay within [-1, 1] (Figure 3); clip the rare tail draws
    # that would exceed it.
    return np.clip(values, -1.0, 1.0).astype(np.float32)


def pretrained_like_state_dict(
    model_name: str,
    dataset: str = "cifar10",
    max_elements_per_tensor: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """A paper-scale state dict with trained-like weight statistics.

    The tensor *shapes* come from the real architecture; the large weight
    tensors are re-drawn from a heavy-tailed (Laplace bulk + rare outliers)
    distribution whose scale depends on the model family and dataset, which
    reproduces the compressibility of genuinely trained checkpoints without
    requiring GPU-scale training.
    """
    num_classes = 101 if dataset == "caltech101" else 10
    in_channels = 1 if dataset == "fashion-mnist" else 3
    model = create_model(model_name, "paper", num_classes=num_classes, in_channels=in_channels, seed=seed)
    state = model.state_dict()

    scale = _WEIGHT_SCALES.get(model_name, 0.02) * _DATASET_SPREAD.get(dataset, 1.0)
    rng = np.random.default_rng(seed * 1_000_003 + _dataset_seed(dataset) % 65_536)

    synthesized: Dict[str, np.ndarray] = {}
    for name, tensor in state.items():
        if "weight" in name and tensor.size > 1024 and np.issubdtype(tensor.dtype, np.floating):
            size = tensor.size
            if max_elements_per_tensor is not None and size > max_elements_per_tensor:
                size = int(max_elements_per_tensor)
            values = _heavy_tailed_weights(rng, size, scale)
            if size == tensor.size:
                synthesized[name] = values.reshape(tensor.shape)
            else:
                synthesized[name] = values
        else:
            synthesized[name] = tensor
    return synthesized


def model_weight_sample(model_name: str, num_values: int = 1_000_000, dataset: str = "cifar10", seed: int = 0) -> np.ndarray:
    """A flat sample of trained-like weights for one model family."""
    scale = _WEIGHT_SCALES.get(model_name, 0.02) * _DATASET_SPREAD.get(dataset, 1.0)
    rng = np.random.default_rng(seed * 7919 + _dataset_seed(dataset) % 65_536)
    return _heavy_tailed_weights(rng, num_values, scale)


@dataclass
class FederatedSetup:
    """Everything needed to run one federated experiment."""

    model_fn: Callable[[], Module]
    train_dataset: SyntheticImageDataset
    validation_dataset: SyntheticImageDataset
    config: FLConfig
    model_name: str
    dataset_name: str


def build_federated_setup(
    model_name: str = "resnet50",
    dataset_name: str = "cifar10",
    num_clients: int = 4,
    rounds: int = 10,
    samples: int = 600,
    image_size: int = 16,
    batch_size: int = 32,
    learning_rate: float = 0.1,
    local_epochs: int = 2,
    prototype_scale: float = 0.12,
    noise_scale: float = 0.6,
    seed: int = 0,
) -> FederatedSetup:
    """Build the tiny-model federated setup used by the accuracy experiments.

    The synthetic task difficulty (``prototype_scale`` / ``noise_scale``) is
    tuned so that validation accuracy neither saturates in one round nor stays
    at chance — the regime where compression-induced weight error has a
    visible effect, as in the paper's CIFAR-10 experiments.
    """
    seeds = SeedSequenceFactory(seed)
    num_classes = 101 if dataset_name == "caltech101" else 10
    in_channels = 1 if dataset_name == "fashion-mnist" else 3
    # Caltech101 has 101 classes; with tiny synthetic data we keep the task
    # learnable by capping the number of active classes at 10 (the harness
    # notes this substitution).
    effective_classes = min(num_classes, 10)

    dataset = load_dataset(
        dataset_name,
        num_samples=samples,
        image_size=image_size,
        noise_scale=noise_scale,
        prototype_scale=prototype_scale,
        seed=seeds.next_seed(),
    )
    if effective_classes < dataset.num_classes:
        mask = dataset.labels < effective_classes
        dataset = dataset.subset(np.nonzero(mask)[0])
    train, validation = dataset.split(0.8, seed=seeds.next_seed())

    model_seed = seeds.next_seed()

    def model_fn() -> Module:
        return create_model(
            model_name,
            "tiny",
            num_classes=effective_classes,
            in_channels=in_channels,
            seed=model_seed,
        )

    config = FLConfig(
        num_clients=num_clients,
        rounds=rounds,
        local_epochs=local_epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        momentum=0.9,
        bandwidth_mbps=10.0,
        seed=seeds.next_seed(),
    )
    return FederatedSetup(
        model_fn=model_fn,
        train_dataset=train,
        validation_dataset=validation,
        config=config,
        model_name=model_name,
        dataset_name=dataset_name,
    )


def train_tiny_model(
    model_name: str = "resnet50",
    dataset_name: str = "cifar10",
    epochs: int = 6,
    samples: int = 500,
    image_size: int = 16,
    learning_rate: float = 0.08,
    seed: int = 0,
) -> Tuple[Module, SyntheticImageDataset]:
    """Centrally train a tiny model; returns the model and its held-out data.

    Used by Figure 5 (accuracy versus error bound), where a single trained
    model is repeatedly corrupted by compression and re-evaluated.
    """
    from repro.data import DataLoader
    from repro.nn import CrossEntropyLoss, SGD

    setup = build_federated_setup(
        model_name,
        dataset_name,
        samples=samples,
        image_size=image_size,
        learning_rate=learning_rate,
        seed=seed,
    )
    model = setup.model_fn()
    loader = DataLoader(setup.train_dataset, batch_size=32, shuffle=True, seed=seed)
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=learning_rate, momentum=0.9)
    model.train()
    for _ in range(epochs):
        for images, labels in loader:
            optimizer.zero_grad()
            loss_fn(model(images), labels)
            model.backward(loss_fn.backward())
            optimizer.step()
    return model, setup.validation_dataset


def evaluate_state_dict(
    model_fn: Callable[[], Module],
    state_dict: Dict[str, np.ndarray],
    dataset: SyntheticImageDataset,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of a state dict on a dataset (loads it into a fresh model)."""
    from repro.nn import functional as F

    model = model_fn()
    model.load_state_dict(dict(state_dict))
    model.eval()
    correct = 0.0
    for start in range(0, len(dataset), batch_size):
        images = dataset.images[start : start + batch_size]
        labels = dataset.labels[start : start + batch_size]
        correct += F.accuracy(model(images), labels) * labels.shape[0]
    return correct / max(len(dataset), 1)
