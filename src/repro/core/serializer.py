"""Serialization of named tensor collections and the FedSZ bitstream layout.

The reference implementation pickles the compressed dictionary before the
final lossless pass; pickle is unsafe to load from untrusted peers, so this
reproduction uses an explicit, self-describing binary framing built on the
same section format as the compressor payloads:

``FedSZ payload``
    ├── ``header``   — pipeline configuration + format version
    ├── ``lossy``    — one section per lossy tensor, each holding the raw
    │                  EBLC payload for that tensor
    └── ``lossless`` — the lossless-compressed serialization of every
                       remaining tensor (metadata, biases, running stats)

Both directions are pure functions of the byte string — no code execution on
load, unlike pickle.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.compression.base import (
    append_section,
    append_section_header,
    begin_sections,
    pack_array,
    pack_sections,
    sections_nbytes,
    unpack_array,
    unpack_sections,
)
from repro.compression.errors import CorruptPayloadError

_FORMAT_VERSION = 1
_HEADER_KEY = "header"
_LOSSY_KEY = "lossy"
_LOSSLESS_KEY = "lossless"


def frame_checksummed(magic: bytes, payload: bytes) -> bytes:
    """Wrap ``payload`` in a 4-byte magic + CRC32 frame.

    Durable on-disk artefacts (run checkpoints) use this so that torn writes
    and bit rot are detected deterministically on load instead of surfacing as
    arbitrary parse errors deeper in the section framing.
    """
    if len(magic) != 4:
        raise ValueError(f"magic must be exactly 4 bytes, got {len(magic)}")
    return magic + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF) + payload


def unframe_checksummed(magic: bytes, blob: bytes) -> bytes:
    """Inverse of :func:`frame_checksummed`; raises :class:`CorruptPayloadError`
    on a foreign magic, a truncated frame, or a checksum mismatch."""
    if len(magic) != 4:
        raise ValueError(f"magic must be exactly 4 bytes, got {len(magic)}")
    if len(blob) < 8:
        raise CorruptPayloadError("frame too short to hold magic and checksum")
    if blob[:4] != magic:
        raise CorruptPayloadError(
            f"bad frame magic {blob[:4]!r} (expected {magic!r})"
        )
    (expected,) = struct.unpack_from("<I", blob, 4)
    payload = blob[8:]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != expected:
        raise CorruptPayloadError(
            f"frame checksum mismatch (stored {expected:#010x}, computed "
            f"{actual:#010x}); the file is truncated or corrupt"
        )
    return payload


def serialize_named_arrays(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a name→array mapping preserving order, dtypes and shapes."""
    return pack_sections({name: pack_array(np.asarray(value)) for name, value in arrays.items()})


def deserialize_named_arrays(payload: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`serialize_named_arrays`."""
    return {name: unpack_array(blob) for name, blob in unpack_sections(payload).items()}


def build_fedsz_payload(
    header: Dict[str, object],
    lossy_payloads: Mapping[str, bytes],
    lossless_blob: bytes,
) -> bytes:
    """Assemble the final FedSZ bitstream.

    Per-tensor lossy payloads stream straight into the output buffer: the
    nested ``lossy`` section's framed size is computed up front so its entry
    header can be written first, instead of materialising the whole lossy
    partition as an intermediate blob and copying it a second time into the
    outer framing (for a large model that intermediate is most of the
    bitstream).  The byte layout is unchanged — :func:`parse_fedsz_payload`
    and generic :func:`unpack_sections` read it as before.
    """
    header = dict(header)
    header["format_version"] = _FORMAT_VERSION
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    lossy_nbytes = sections_nbytes({name: len(blob) for name, blob in lossy_payloads.items()})

    buffer = bytearray()
    begin_sections(buffer, 3)
    append_section(buffer, _HEADER_KEY, struct.pack("<I", len(header_blob)) + header_blob)
    append_section_header(buffer, _LOSSY_KEY, lossy_nbytes)
    begin_sections(buffer, len(lossy_payloads))
    for name, blob in lossy_payloads.items():
        append_section(buffer, name, blob)
    append_section(buffer, _LOSSLESS_KEY, lossless_blob)
    return bytes(buffer)


def parse_fedsz_payload(payload: bytes) -> Tuple[Dict[str, object], Dict[str, bytes], bytes]:
    """Split a FedSZ bitstream back into header, lossy payloads and lossless blob."""
    sections = unpack_sections(payload)
    for key in (_HEADER_KEY, _LOSSY_KEY, _LOSSLESS_KEY):
        if key not in sections:
            raise CorruptPayloadError(f"FedSZ payload missing section {key!r}")
    header_section = sections[_HEADER_KEY]
    if len(header_section) < 4:
        raise CorruptPayloadError("FedSZ header section truncated")
    (header_length,) = struct.unpack_from("<I", header_section, 0)
    header_blob = header_section[4 : 4 + header_length]
    if len(header_blob) != header_length:
        raise CorruptPayloadError("FedSZ header length mismatch")
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptPayloadError(f"FedSZ header is not valid JSON: {error}") from error
    if header.get("format_version") != _FORMAT_VERSION:
        raise CorruptPayloadError(
            f"unsupported FedSZ payload version {header.get('format_version')!r}"
        )
    lossy_payloads = unpack_sections(sections[_LOSSY_KEY])
    return header, lossy_payloads, sections[_LOSSLESS_KEY]
