"""Determinism & fork-safety static analysis (``repro lint``).

An AST-based, repo-specific lint engine plus a runtime RNG/clock sanitizer.
The rules encode the invariants the integration suites enforce dynamically —
bit-identical serial/thread/process execution, resume==uninterrupted,
monitored==unmonitored — so the cheap static pass catches the recurring bug
classes (unseeded RNG substreams, wall-clock in simulation fields,
unpicklable objects crossing the fork boundary) at diff time.

Shallow rules (per-module, ``repro lint``)
------------------------------------------
DET001   no global-state RNG (np.random.* module API, bare random.*)
DET002   no wall-clock sources; no timing values in deterministic fields
DET003   checkpoint_state/restore pair completeness; mutable codecs clone()
DET004   no bare/silent broad excepts; no assert-as-validation
FORK001  worker-crossing task specs stay lambda/closure/lock/thread-free

Deep rules (whole-program, ``repro lint --deep``)
-------------------------------------------------
CONC001  lock-guarded attributes never mutated outside the lock
CONC002  lock-guarded attributes never read outside the lock
FORK002  worker-crossing dataclasses pickle-safe *transitively*
DET005   interprocedural RNG/clock taint into deterministic/checkpoint state
EXH001   every pushed event kind has a dispatch arm somewhere
EXH002   metric fields classified det/obs; codec state checkpoint-covered

The deep pass runs on a project-wide call graph and fact index
(:mod:`repro.analysis.callgraph`) with an interprocedural taint engine
(:mod:`repro.analysis.dataflow`); the index is cached on disk keyed by a
content hash, so unchanged reruns skip parsing entirely.
"""

from repro.analysis.baseline import Baseline, write_baseline
from repro.analysis.callgraph import (
    DEFAULT_CACHE_DIR,
    INDEX_FORMAT_VERSION,
    ProjectIndex,
)
from repro.analysis.deep import (
    DeepRule,
    available_deep_rules,
    deep_rule_descriptions,
    get_deep_rule,
    get_deep_rules,
    lint_deep,
    lint_deep_sources,
    register_deep_rule,
)
from repro.analysis.engine import (
    Finding,
    LintResult,
    ModuleContext,
    lint_paths,
    lint_source,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import (
    LintRule,
    available_rules,
    get_rule,
    get_rules,
    register_rule,
    rule_descriptions,
)
from repro.analysis.sanitizer import DeterminismViolation, sanitized

__all__ = [
    "Baseline",
    "DEFAULT_CACHE_DIR",
    "DeepRule",
    "DeterminismViolation",
    "Finding",
    "INDEX_FORMAT_VERSION",
    "LintResult",
    "LintRule",
    "ModuleContext",
    "ProjectIndex",
    "available_deep_rules",
    "available_rules",
    "deep_rule_descriptions",
    "get_deep_rule",
    "get_deep_rules",
    "get_rule",
    "get_rules",
    "lint_deep",
    "lint_deep_sources",
    "lint_paths",
    "lint_source",
    "register_deep_rule",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_descriptions",
    "sanitized",
    "write_baseline",
]
