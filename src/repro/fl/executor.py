"""Executor layer of the federated runtime.

Executors decide *how* the per-round client work (local training, update
compression, transport) runs:

* :class:`SerialExecutor` reproduces the seed simulation's strictly
  sequential loop;
* :class:`ParallelExecutor` runs clients concurrently on a thread pool —
  local training is numpy-heavy (the BLAS calls release the GIL) and the
  emulated link sleeps overlap, so an 8-client round on 4 workers finishes in
  roughly the time of its two slowest clients;
* :class:`ProcessParallelExecutor` runs clients on a persistent
  shared-nothing worker-process pool.  Threads only overlap the GIL-releasing
  fraction of the work; the pure-Python training loop (optimizer steps, loss
  bookkeeping, loader iteration) still serialises on one interpreter lock.
  Worker processes each own a private interpreter, model pool and codec
  clone, so numpy-heavy rounds scale with cores — the regime the paper's
  fleet-scale wall-clock analysis assumes.

Results are always returned in task order regardless of completion order, and
every client draws from its own seeded streams, so for deterministic codecs
the executor choice never changes the simulated outcome — only the wall-clock
time to compute it (see ``tests/fl/test_runtime_layers.py`` and
``tests/integration/test_process_executor.py`` for the determinism
guarantee).  The one exception is a *stochastic* shared codec without
``clone()`` (e.g. the DP codec, whose noise stream is consumed in call
order): under the thread executor, which client draws which noise depends on
thread arrival order, so such runs are only reproducible with the serial
executor — and the process executor refuses them outright (its workers need
independent clones).

When a codec exposes ``clone()`` (e.g. :class:`repro.core.FedSZCompressor`),
the thread executor builds **one clone per worker** (checked out per task
from a small pool, not one per client — a fleet round reuses each worker's
clone across all of that worker's tasks) so concurrent compressions cannot
clobber each other's ``last_report``.  Stateful codecs without ``clone()``
(adaptive or DP codecs, whose round counters must stay global) are shared
behind a lock instead.

The process executor keeps determinism with a strict split of ownership:

* **workers** do everything compute-bound but *stream-free* for the parent —
  local training and codec work — against per-task client RNG snapshots
  shipped in the task spec and shipped back advanced;
* the **parent** keeps every simulation stream it owns: it pre-rolls link
  dropout in task order before dispatch and replays the (pure-arithmetic)
  channel sends in task order after collection, so channel logs and RNG
  streams match the serial run draw for draw.

Each round the parent ships a single fingerprint-keyed
:class:`~repro.fl.broadcast.BroadcastPayload` to every worker; a worker
decodes it once per round and serves all of its tasks from the decoded state,
so broadcast deserialisation is O(workers), not O(participants).

Per-client concurrency composes with the pipeline's *per-tensor* concurrency
(``FedSZConfig.parallel_tensors``): the two pools multiply, so when both are
enabled size them so ``executor workers × codec workers`` stays near the host
core count — oversubscribing degrades gracefully but buys nothing.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.compression.metrics import compression_ratio
from repro.core.serializer import serialize_named_arrays
from repro.fl.broadcast import ENCODING_ARRAYS, BroadcastPayload, state_fingerprint
from repro.fl.checkpoint import codec_fingerprint
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.scenarios import ClientCrash, CorruptedUpload
from repro.fl.state import ClientRegistry, ModelPool
from repro.fl.transport import (
    ClientLink,
    LinkSpec,
    TransferStats,
    corrupt_wire_bytes,
    transmit_corrupted_update,
    transmit_update,
)
from repro.network.devices import get_device_profile


@dataclass
class ClientTask:
    """One unit of round work: receive the broadcast, train, ship the update."""

    client: FLClient
    link: ClientLink
    broadcast_state: Mapping[str, np.ndarray]
    learning_rate: float
    #: Modelled seconds for this client to *receive* the broadcast over its
    #: own downlink; folded into the turnaround so schedulers see the full
    #: receive → train → transmit window.
    downlink_seconds: float = 0.0
    #: Simulated mid-round death of this client (see
    #: :class:`repro.fl.scenarios.ClientCrash`): raised instead of training,
    #: surfacing as a dropped update with zero payload bytes.
    fault: Optional[BaseException] = None
    #: The round's shared wire buffer (built once per round by the runtime's
    #: :class:`~repro.fl.broadcast.BroadcastCache` when the executor sets
    #: ``wants_broadcast_payload``); ``None`` for in-process executors, which
    #: share ``broadcast_state`` by reference.
    broadcast_payload: Optional[BroadcastPayload] = None


@dataclass
class ClientResult:
    """Everything one client produced during a round."""

    client_id: int
    update: ClientUpdate
    state: Optional[Dict[str, np.ndarray]]
    stats: TransferStats
    turnaround_seconds: float

    @property
    def delivered(self) -> bool:
        """Did the update actually reach the server?"""
        return self.stats.delivered and self.state is not None


def run_client_task(task: ClientTask, codec, lock=None) -> ClientResult:
    """Train one client on the broadcast state and transmit its update.

    A task carrying a fault raises it *before* any stream advances — the
    client died without training, rolling dropout or touching the channel —
    so crashed runs stay bit-identical across executors.  The exception is a
    :class:`~repro.fl.scenarios.CorruptedUpload` fault: the client trains and
    transmits normally, but its framed payload is corrupted in transit and
    the server's checksum rejects it (see
    :func:`repro.fl.transport.transmit_corrupted_update`).
    """
    if task.fault is not None and not isinstance(task.fault, CorruptedUpload):
        raise task.fault
    update = task.client.train(task.broadcast_state, learning_rate=task.learning_rate)
    if isinstance(task.fault, CorruptedUpload):
        state, stats = transmit_corrupted_update(
            update.state_dict, codec, task.link, lock=lock
        )
    else:
        state, stats = transmit_update(update.state_dict, codec, task.link, lock=lock)
    turnaround = (
        task.downlink_seconds
        + update.train_seconds
        + stats.compress_seconds
        + stats.transfer_seconds
        + stats.decompress_seconds
    )
    return ClientResult(
        client_id=update.client_id,
        update=update,
        state=state,
        stats=stats,
        turnaround_seconds=turnaround,
    )


def crashed_client_result(task: ClientTask) -> ClientResult:
    """The :class:`ClientResult` of a client that died mid-round.

    The client never transmitted: zero payload bytes, zero codec and transfer
    time, ``delivered=False``.  Its turnaround is just the broadcast receive
    time — the only simulated work that happened before the death.
    """
    update = ClientUpdate(
        client_id=task.client.client_id,
        state_dict={},
        num_samples=task.client.num_samples,
        train_loss=0.0,
        train_accuracy=0.0,
        train_seconds=0.0,
    )
    stats = TransferStats(payload_nbytes=0, transfer_seconds=0.0, ratio=1.0, delivered=False)
    return ClientResult(
        client_id=task.client.client_id,
        update=update,
        state=None,
        stats=stats,
        turnaround_seconds=task.downlink_seconds,
    )


class SerialExecutor:
    """Run clients one after another — the seed simulation's behaviour."""

    name = "serial"
    #: Concurrency level — the runtime sizes its model pool from this.
    max_workers = 1

    def run_clients(self, tasks: List[ClientTask], codec=None) -> List[ClientResult]:
        """Execute every task in order with the shared codec instance."""
        results = []
        for task in tasks:
            try:
                results.append(run_client_task(task, codec))
            except ClientCrash:
                results.append(crashed_client_result(task))
        return results


class ParallelExecutor:
    """Run clients concurrently on a thread pool.

    ``max_workers`` bounds concurrency (defaults to the task count).  Codecs
    with a ``clone()`` method get one instance **per worker**, checked out
    per task — a fleet round costs O(workers) clones, not O(participants).
    Other codecs are shared behind a lock, which serialises codec work but
    still overlaps training and transport.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def run_clients(self, tasks: List[ClientTask], codec=None) -> List[ClientResult]:
        """Execute tasks concurrently; results come back in task order."""
        if not tasks:
            return []
        workers = min(self.max_workers or len(tasks), len(tasks))
        cloneable = codec is not None and hasattr(codec, "clone")
        lock = threading.Lock() if (codec is not None and not cloneable) else None

        clones: Optional[queue_module.SimpleQueue] = None
        if cloneable:
            clones = queue_module.SimpleQueue()
            for _ in range(workers):
                clones.put(codec.clone())

        def run_one(task: ClientTask) -> ClientResult:
            task_codec = clones.get() if clones is not None else codec
            try:
                return run_client_task(task, task_codec, lock)
            except ClientCrash:
                return crashed_client_result(task)
            finally:
                if clones is not None:
                    clones.put(task_codec)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_one, task) for task in tasks]
            results = [future.result() for future in futures]

        if cloneable and results:
            # Keep the facade contract: after a round, the caller's codec
            # reports the last participant's compression, exactly as the
            # shared-instance serial path does.
            last_report = results[-1].stats.report
            if last_report is not None and hasattr(codec, "last_report"):
                codec.last_report = last_report
        return results


# ----------------------------------------------------------------------
# Process-parallel execution
# ----------------------------------------------------------------------
@dataclass
class _WorkerContext:
    """Everything a worker process needs to rebuild its slice of the fleet.

    Inherited through ``fork`` (never pickled), so ``model_fn`` may be any
    callable — including the test suites' lambdas.
    """

    model_fn: object
    datasets: list
    config: object
    seeds: list
    codec: object


@dataclass
class _ClientTaskSpec:
    """Picklable description of one client task shipped to a worker.

    Carries ids, seeds and specs instead of live objects: the worker rebuilds
    the client from its own registry, restores the shipped RNG snapshot,
    trains, and ships the advanced snapshot back.  The parent pre-rolled this
    link's dropout (``dropped``) so the per-link stream stays parent-owned.
    """

    index: int
    client_id: int
    learning_rate: float
    link_spec: LinkSpec
    dropped: bool
    client_state: dict
    #: A :class:`ClientCrash` (raised instead of training) or a
    #: :class:`CorruptedUpload` (train normally, corrupt the wire bytes);
    #: both are picklable via ``__reduce__``.
    fault: Optional[BaseException] = None


@dataclass
class _WorkerTaskResult:
    """What a worker ships back for one task (everything but link accounting,
    which the parent replays against its own channel objects)."""

    index: int
    client_id: int
    crashed: bool
    client_state: dict
    #: The payload was checksum-framed and corrupted in transit: the parent
    #: accounts it like a transit loss (``payload_nbytes`` holds the wire
    #: bytes that travelled, nothing was decompressed or delivered).
    corrupted: bool = False
    num_samples: int = 0
    train_loss: float = 0.0
    train_accuracy: float = 0.0
    train_seconds: float = 0.0
    original_nbytes: int = 0
    payload_nbytes: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0
    report: Optional[object] = None
    update_state: Optional[Dict[str, np.ndarray]] = None
    received_state: Optional[Dict[str, np.ndarray]] = None


def _execute_spec(spec: _ClientTaskSpec, registry, codec, broadcast_state):
    """Worker-side body of one client task: train, compress, account.

    A :class:`CorruptedUpload` fault trains and compresses normally, then
    replaces the payload with its corrupted framed wire bytes
    (:func:`repro.fl.transport.corrupt_wire_bytes`) — nothing is decompressed
    and the parent accounts the task as undelivered, exactly like the serial
    :func:`repro.fl.transport.transmit_corrupted_update` path.
    """
    corrupted = isinstance(spec.fault, CorruptedUpload)
    client = registry[spec.client_id]
    client.restore_checkpoint_state(spec.client_state)
    update = client.train(broadcast_state, learning_rate=spec.learning_rate)
    original_nbytes = int(
        sum(np.asarray(v).nbytes for v in update.state_dict.values())
    )
    payload_nbytes = original_nbytes
    compress_seconds = 0.0
    decompress_seconds = 0.0
    report = None
    received_state = None
    payload = None
    if codec is not None:
        start = time.perf_counter()
        payload = codec.compress(update.state_dict)
        compress_seconds = time.perf_counter() - start
        report = getattr(codec, "last_report", None)
        payload_nbytes = len(payload)
        if not spec.dropped and not corrupted:
            start = time.perf_counter()
            received_state = codec.decompress(payload)
            decompress_seconds = time.perf_counter() - start
        device_profile = (
            get_device_profile(spec.link_spec.device) if spec.link_spec.device else None
        )
        if device_profile is not None:
            # Model the codec runtime on the client's hardware instead of
            # trusting this host's measurement — same convention as
            # :func:`repro.fl.transport.transmit_update`.
            config = getattr(codec, "config", None)
            if config is not None:
                compress_seconds = device_profile.compression_seconds(
                    config.lossy_compressor, original_nbytes, config.error_bound
                )
                if received_state is not None:
                    decompress_seconds = device_profile.decompression_seconds(
                        config.lossy_compressor, original_nbytes, config.error_bound
                    )
    if corrupted:
        if payload is None:  # codec-less run: the wire carries raw arrays
            payload = serialize_named_arrays(dict(update.state_dict))
        payload_nbytes = len(corrupt_wire_bytes(payload))
    return _WorkerTaskResult(
        index=spec.index,
        client_id=spec.client_id,
        crashed=False,
        corrupted=corrupted,
        client_state=client.checkpoint_state(),
        num_samples=update.num_samples,
        train_loss=update.train_loss,
        train_accuracy=update.train_accuracy,
        train_seconds=update.train_seconds,
        original_nbytes=original_nbytes,
        payload_nbytes=payload_nbytes,
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
        report=report,
        update_state=update.state_dict,
        received_state=received_state,
    )


def _process_worker_main(worker_id, context, inbox, task_queue, result_queue):
    """Worker loop: decode each round's broadcast once, then drain tasks.

    One registry, one bounded model pool (a worker runs its tasks serially,
    so one resident model suffices) and one codec clone live for the whole
    pool lifetime.  The broadcast state is cached under its fingerprint, so a
    repeat round (same state, same codec) skips the decode entirely; the idle
    ack ships cumulative hit/miss counters back for the cache-behaviour
    tests.
    """
    registry = ClientRegistry(
        context.model_fn,
        context.datasets,
        context.config,
        context.seeds,
        ModelPool(context.model_fn, max_models=1),
    )
    codec = context.codec.clone() if context.codec is not None else None
    cached_fingerprint = None
    cached_state = None
    hits = 0
    misses = 0
    while True:
        message = inbox.get()
        if message[0] == "stop":
            return
        payload = message[1]
        if payload.fingerprint == cached_fingerprint:
            hits += 1
        else:
            cached_state = payload.decode(codec)
            cached_fingerprint = payload.fingerprint
            misses += 1
        while True:
            spec = task_queue.get()
            if spec is None:
                break
            try:
                try:
                    if spec.fault is not None and not isinstance(
                        spec.fault, CorruptedUpload
                    ):
                        raise spec.fault
                    result = _execute_spec(spec, registry, codec, cached_state)
                except ClientCrash:
                    result = _WorkerTaskResult(
                        index=spec.index,
                        client_id=spec.client_id,
                        crashed=True,
                        client_state=spec.client_state,
                    )
                result_queue.put(("result", result))
            except BaseException:
                result_queue.put(
                    ("error", spec.index, spec.client_id, traceback.format_exc())
                )
        result_queue.put(("idle", worker_id, hits, misses))


class ProcessParallelExecutor:
    """Run clients on a persistent pool of shared-nothing worker processes.

    Must be bound to a runtime (``FederatedRuntime`` does this at
    construction) so workers can rebuild the client population from its
    dataset partition and seeds.  Requires the ``fork`` start method (model
    factories are arbitrary callables, inherited rather than pickled) and a
    codec that is either ``None`` or exposes ``clone()`` — stateful codecs
    whose streams are consumed in call order cannot run shared-nothing.

    Determinism: workers only ever touch per-client streams, shipped in and
    out as RNG snapshots; the parent pre-rolls link dropout and replays
    channel sends in task order (see the module docstring), so results are
    bit-identical to :class:`SerialExecutor`.
    """

    name = "process"
    #: Ask the runtime to build the once-per-round broadcast wire buffer.
    wants_broadcast_payload = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self._context: Optional[_WorkerContext] = None
        self._procs: list = []
        self._inboxes: list = []
        self._task_queue = None
        self._result_queue = None
        self._pool_fingerprint = None
        #: Cumulative per-worker broadcast-cache counters from the latest
        #: idle acks: ``{worker_id: {"hits": int, "misses": int}}``.
        self._worker_cache_stats: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind_runtime(self, runtime) -> None:
        """Capture what workers need to rebuild the client population."""
        self._validate_codec(runtime.codec)
        if self._procs:
            self.close()  # re-bind: the old pool serves a stale fleet
        clients = runtime.clients
        self._context = _WorkerContext(
            model_fn=clients._model_fn,
            datasets=clients._datasets,
            config=clients._config,
            seeds=clients._seeds,
            codec=runtime.codec,
        )

    @staticmethod
    def _validate_codec(codec) -> None:
        if codec is not None and not hasattr(codec, "clone"):
            raise ValueError(
                f"{type(codec).__name__} has no clone() and cannot run "
                "shared-nothing: its internal streams are consumed in call "
                "order, which worker processes cannot reproduce — use the "
                "serial executor for this codec"
            )

    def _start_pool(self, codec) -> None:
        if self._context is None:
            raise RuntimeError(
                "ProcessParallelExecutor is not bound to a runtime; construct "
                "the FederatedRuntime with this executor (it binds "
                "automatically) before running clients"
            )
        self._validate_codec(codec)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessParallelExecutor requires the 'fork' start method "
                "(unavailable on this platform); use the thread executor"
            )
        ctx = multiprocessing.get_context("fork")
        context = replace(self._context, codec=codec)
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._inboxes = [ctx.Queue() for _ in range(self.max_workers)]
        self._procs = []
        for worker_id, inbox in enumerate(self._inboxes):
            proc = ctx.Process(
                target=_process_worker_main,
                args=(worker_id, context, inbox, self._task_queue, self._result_queue),
                daemon=True,
                name=f"fl-worker-{worker_id}",
            )
            proc.start()
            self._procs.append(proc)
        self._pool_fingerprint = codec_fingerprint(codec)
        self._worker_cache_stats = {}

    def close(self) -> None:
        """Shut the worker pool down; the next round restarts it lazily."""
        for inbox in self._inboxes:
            try:
                inbox.put(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in [self._task_queue, self._result_queue, *self._inboxes]:
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._procs = []
        self._inboxes = []
        self._task_queue = None
        self._result_queue = None
        self._pool_fingerprint = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:  # repro-lint: disable=DET004 -- raising in __del__ at interpreter shutdown is worse
            pass

    def broadcast_cache_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-worker cumulative broadcast-cache hit/miss counters."""
        return {wid: dict(stats) for wid, stats in self._worker_cache_stats.items()}

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def run_clients(self, tasks: List[ClientTask], codec=None) -> List[ClientResult]:
        """Dispatch tasks to the worker pool; results come back in task order."""
        if not tasks:
            return []
        if self._procs and codec_fingerprint(codec) != self._pool_fingerprint:
            # The codec was swapped mid-run; worker clones are stale.
            self.close()
        if not self._procs:
            self._start_pool(codec)

        payload = tasks[0].broadcast_payload
        if payload is None:
            # Direct use without the runtime's BroadcastCache: build the wire
            # buffer here (still once per round — tasks share the state).
            state = dict(tasks[0].broadcast_state)
            payload = BroadcastPayload(
                fingerprint=state_fingerprint(state),
                encoding=ENCODING_ARRAYS,
                data=serialize_named_arrays(state),
                nbytes=int(sum(np.asarray(v).nbytes for v in state.values())),
            )

        # Pre-roll dropout in task order before dispatch: the per-link streams
        # are parent-owned, and a crashed client dies before rolling (serial
        # parity — run_client_task raises the fault before transmitting).
        dropped = [
            False if task.fault is not None else task.link.roll_dropout()
            for task in tasks
        ]
        specs = [
            _ClientTaskSpec(
                index=index,
                client_id=task.client.client_id,
                learning_rate=task.learning_rate,
                link_spec=task.link.spec,
                dropped=dropped[index],
                client_state=task.client.checkpoint_state(),
                fault=task.fault,
            )
            for index, task in enumerate(tasks)
        ]

        for inbox in self._inboxes:
            inbox.put(("round", payload))
        for spec in specs:
            self._task_queue.put(spec)
        for _ in self._procs:
            self._task_queue.put(None)

        raw_results, errors = self._collect(len(specs))
        if errors:
            self.close()  # a failed round leaves the pool in an unknown state
            details = "\n\n".join(
                f"client {client_id} (task {index}):\n{tb}"
                for index, client_id, tb in errors
            )
            raise RuntimeError(f"worker task(s) failed:\n{details}")

        results = []
        for index, task in enumerate(tasks):
            worker_result = raw_results[index]
            if worker_result.crashed:
                results.append(crashed_client_result(task))
                continue
            results.append(self._assemble(task, worker_result, codec, dropped[index]))
            # Ship the advanced client streams back into the parent's client,
            # keeping checkpoints and subsequent rounds bit-identical.
            task.client.restore_checkpoint_state(worker_result.client_state)

        if codec is not None and results:
            # Facade contract, as in ParallelExecutor: the caller's codec
            # reports the last participant's compression.
            last_report = results[-1].stats.report
            if last_report is not None and hasattr(codec, "last_report"):
                codec.last_report = last_report
        return results

    def _collect(self, expected_results: int):
        """Drain one round's results and idle acks, watching worker liveness."""
        raw_results: Dict[int, _WorkerTaskResult] = {}
        errors = []
        pending_acks = len(self._procs)
        while len(raw_results) + len(errors) < expected_results or pending_acks:
            try:
                message = self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [proc.name for proc in self._procs if not proc.is_alive()]
                if dead:
                    self.close()
                    raise RuntimeError(
                        f"worker process(es) died mid-round: {', '.join(dead)}; "
                        "the pool was shut down and will restart on the next "
                        "round"
                    ) from None
                continue
            kind = message[0]
            if kind == "result":
                raw_results[message[1].index] = message[1]
            elif kind == "error":
                errors.append(message[1:])
            else:  # idle ack with cumulative cache counters
                _, worker_id, hits, misses = message
                self._worker_cache_stats[worker_id] = {"hits": hits, "misses": misses}
                pending_acks -= 1
        return raw_results, errors

    def _assemble(
        self, task: ClientTask, r: _WorkerTaskResult, codec, dropped: bool
    ) -> ClientResult:
        """Replay link accounting for one worker result, in task order.

        ``SimulatedChannel.send`` is pure arithmetic plus a transfer-log
        append, so replaying it here yields the exact seconds and log entries
        the serial run produces.
        """
        if r.corrupted:
            record = task.link.send(
                r.payload_nbytes, description="corrupted client update"
            )
            stats = TransferStats(
                payload_nbytes=r.payload_nbytes,
                transfer_seconds=record.seconds,
                compress_seconds=r.compress_seconds,
                decompress_seconds=0.0,
                ratio=compression_ratio(r.original_nbytes, r.payload_nbytes),
                delivered=False,
                report=r.report,
            )
            state = None
        elif codec is None:
            record = task.link.send(r.original_nbytes, description="raw client update")
            stats = TransferStats(
                payload_nbytes=r.original_nbytes,
                transfer_seconds=record.seconds,
                ratio=1.0,
                delivered=not dropped,
            )
            state = None if dropped else dict(r.update_state)
        else:
            record = task.link.send(
                r.payload_nbytes, description="compressed client update"
            )
            stats = TransferStats(
                payload_nbytes=r.payload_nbytes,
                transfer_seconds=record.seconds,
                compress_seconds=r.compress_seconds,
                decompress_seconds=r.decompress_seconds,
                ratio=compression_ratio(r.original_nbytes, r.payload_nbytes),
                delivered=not dropped,
                report=r.report,
            )
            state = None if dropped else r.received_state
        update = ClientUpdate(
            client_id=r.client_id,
            state_dict=r.update_state,
            num_samples=r.num_samples,
            train_loss=r.train_loss,
            train_accuracy=r.train_accuracy,
            train_seconds=r.train_seconds,
        )
        turnaround = (
            task.downlink_seconds
            + r.train_seconds
            + stats.compress_seconds
            + stats.transfer_seconds
            + stats.decompress_seconds
        )
        return ClientResult(
            client_id=r.client_id,
            update=update,
            state=state,
            stats=stats,
            turnaround_seconds=turnaround,
        )


def build_executor(name: str = "serial", max_workers: Optional[int] = None):
    """Build an executor by short name (the ``FLConfig.executor`` values).

    ``"thread"`` and ``"parallel"`` are synonyms — the CLI always said
    ``parallel`` for the thread pool and older configs still do.
    """
    key = name.lower().replace("_", "-")
    if key == "serial":
        return SerialExecutor()
    if key in ("thread", "parallel"):
        return ParallelExecutor(max_workers=max_workers)
    if key == "process":
        return ProcessParallelExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor {name!r}; available: 'serial', 'thread' "
        "(alias 'parallel'), 'process'"
    )
