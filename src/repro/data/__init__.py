"""Datasets, client partitioning and batch loading.

Synthetic stand-ins for CIFAR-10 / Fashion-MNIST / Caltech101 (the offline
environment cannot download the originals), Miranda-like scientific fields
for the Figure 2 characterisation, IID and Dirichlet non-IID partitioners,
and a minimal mini-batch loader.
"""

from repro.data.datasets import (
    PAPER_DATASET_SPECS,
    PAPER_DATASETS,
    DatasetSpec,
    SyntheticImageDataset,
    dataset_spec,
    load_dataset,
    make_synthetic_dataset,
)
from repro.data.loader import DataLoader
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    label_distribution,
    partition_dataset,
)
from repro.data.scientific import miranda_like_slice, miranda_like_volume, smoothness_score

__all__ = [
    "PAPER_DATASET_SPECS",
    "PAPER_DATASETS",
    "DatasetSpec",
    "SyntheticImageDataset",
    "dataset_spec",
    "load_dataset",
    "make_synthetic_dataset",
    "DataLoader",
    "dirichlet_partition",
    "iid_partition",
    "label_distribution",
    "partition_dataset",
    "miranda_like_slice",
    "miranda_like_volume",
    "smoothness_score",
]
