"""Transport layer of the federated runtime.

Every client owns a :class:`ClientLink` — a point-to-point connection to the
server with its own bandwidth, latency, straggler factor and dropout
probability, optionally backed by a :class:`repro.network.DeviceProfile` that
models the codec runtime on that client's hardware (e.g. a Raspberry Pi 5).
A :class:`Transport` bundles the per-client uplinks plus the server broadcast
downlink and is one of the three pluggable layers of
:class:`repro.fl.runtime.FederatedRuntime` (the others being the scheduler and
the executor).

``Transport.homogeneous`` reproduces the seed behaviour exactly: one shared
:class:`~repro.network.bandwidth.SimulatedChannel` carries every client's
update, so existing code that inspects ``simulation.channel`` keeps working.
``Transport.heterogeneous`` gives each client an independent link built from a
:class:`LinkSpec`, which is what the paper's multi-client wall-clock analysis
(Figures 7-9) actually assumes.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.compression.metrics import compression_ratio
from repro.core.serializer import (
    frame_checksummed,
    serialize_named_arrays,
    unframe_checksummed,
)
from repro.network.bandwidth import BandwidthModel, SimulatedChannel
from repro.network.devices import DeviceProfile, get_device_profile
from repro.network.timing import CommunicationEstimate, estimate_communication
from repro.utils.seeding import SeedSequenceFactory


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one client's link (and optionally its hardware).

    ``straggler_factor`` multiplies the modelled transfer time of every send
    (a factor of 20 turns the client into a straggler without changing the
    link's nominal bandwidth); ``dropout_probability`` is the per-round chance
    that the client's update is lost in transit.  ``device`` names a
    :func:`repro.network.get_device_profile` profile used to *model* codec
    runtime on that client instead of trusting this host's measurement.
    """

    bandwidth_mbps: float = 10.0
    latency_seconds: float = 0.0
    straggler_factor: float = 1.0
    dropout_probability: float = 0.0
    device: Optional[str] = None
    real_sleep: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.latency_seconds < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_seconds}")
        if self.straggler_factor <= 0:
            raise ValueError(f"straggler_factor must be positive, got {self.straggler_factor}")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError(
                f"dropout_probability must lie in [0, 1), got {self.dropout_probability}"
            )


@dataclass
class TransferStats:
    """Accounting for one client update pushed through codec + link."""

    payload_nbytes: int = 0
    transfer_seconds: float = 0.0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0
    ratio: float = 1.0
    delivered: bool = True
    report: Optional[object] = None

    @property
    def codec_seconds(self) -> float:
        """Total codec time (compression plus decompression)."""
        return self.compress_seconds + self.decompress_seconds


class ClientLink:
    """One client's uplink: a bandwidth-limited channel plus failure model."""

    def __init__(
        self,
        client_id: int,
        spec: Optional[LinkSpec] = None,
        channel: Optional[SimulatedChannel] = None,
        seed: int = 0,
    ) -> None:
        self.client_id = int(client_id)
        self.spec = spec or LinkSpec()
        self.channel = channel or SimulatedChannel(
            BandwidthModel(self.spec.bandwidth_mbps, self.spec.latency_seconds),
            real_sleep=self.spec.real_sleep,
        )
        self.device_profile: Optional[DeviceProfile] = (
            get_device_profile(self.spec.device) if self.spec.device else None
        )
        self._rng = np.random.default_rng(seed)

    def send(self, payload: bytes | int, description: str = ""):
        """Push a payload through this link, honouring the straggler factor."""
        return self.channel.send(
            payload, description=description, delay_scale=self.spec.straggler_factor
        )

    def transmission_seconds(self, num_bytes: int) -> float:
        """Modelled seconds to move ``num_bytes`` over this link."""
        return self.channel.bandwidth.transmission_seconds(num_bytes) * self.spec.straggler_factor

    def roll_dropout(self) -> bool:
        """Draw from this link's private stream: is the next update lost?"""
        if self.spec.dropout_probability <= 0.0:
            return False
        return bool(self._rng.random() < self.spec.dropout_probability)

    def estimate_upload(
        self,
        original_nbytes: int,
        compressed_nbytes: Optional[int] = None,
        compressor: Optional[str] = None,
        error_bound: Optional[float] = None,
        measured_compress_seconds: float = 0.0,
        measured_decompress_seconds: float = 0.0,
    ) -> CommunicationEstimate:
        """Analytic end-to-end upload estimate over this link (Eqn. 1 inputs).

        Codec runtimes come from the link's device profile when one is
        configured, otherwise from the caller's measurements — the same
        convention as :func:`repro.network.estimate_communication`, which this
        wraps with the link's bandwidth.
        """
        return estimate_communication(
            original_nbytes,
            compressed_nbytes,
            self.spec.bandwidth_mbps,
            compressor=compressor,
            error_bound=error_bound,
            device=self.device_profile,
            measured_compress_seconds=measured_compress_seconds,
            measured_decompress_seconds=measured_decompress_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClientLink(client_id={self.client_id}, spec={self.spec})"


def transmit_update(
    state_dict: Mapping[str, np.ndarray],
    codec,
    link: ClientLink,
    lock=None,
):
    """Push one client update through the (optional) codec and its link.

    Returns ``(received_state, TransferStats)``; ``received_state`` is ``None``
    when the link dropped the update (the server never sees it).  ``lock``
    serialises access to a codec shared across executor threads; pass ``None``
    for per-client codec instances or serial execution.
    """
    original_nbytes = int(sum(np.asarray(v).nbytes for v in state_dict.values()))
    dropped = link.roll_dropout()

    if codec is None:
        record = link.send(original_nbytes, description="raw client update")
        stats = TransferStats(
            payload_nbytes=original_nbytes,
            transfer_seconds=record.seconds,
            ratio=1.0,
            delivered=not dropped,
        )
        return (None if dropped else dict(state_dict)), stats

    # Timers start inside the lock: measured codec seconds must not include
    # time spent waiting for other executor threads to release a shared codec
    # (that wait would otherwise inflate turnarounds and could flip semi-sync
    # straggler decisions based on thread scheduling).
    guard = lock if lock is not None else contextlib.nullcontext()
    with guard:
        start = time.perf_counter()
        payload = codec.compress(state_dict)
        compress_seconds = time.perf_counter() - start
        report = getattr(codec, "last_report", None)

    record = link.send(payload, description="compressed client update")

    received_state = None
    decompress_seconds = 0.0
    if not dropped:
        with guard:
            start = time.perf_counter()
            received_state = codec.decompress(payload)
            decompress_seconds = time.perf_counter() - start

    if link.device_profile is not None:
        # Model the codec runtime on the client's hardware instead of trusting
        # this host's measurement (the paper's Raspberry Pi 5 convention).
        config = getattr(codec, "config", None)
        if config is not None:
            compress_seconds = link.device_profile.compression_seconds(
                config.lossy_compressor, original_nbytes, config.error_bound
            )
            if received_state is not None:
                decompress_seconds = link.device_profile.decompression_seconds(
                    config.lossy_compressor, original_nbytes, config.error_bound
                )

    stats = TransferStats(
        payload_nbytes=len(payload),
        transfer_seconds=record.seconds,
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
        # One convention for empty payloads everywhere: the shared helper
        # returns inf, matching repro.compression.metrics.
        ratio=compression_ratio(original_nbytes, len(payload)),
        delivered=not dropped,
        report=report,
    )
    return received_state, stats


#: Frame magic for client-update uploads pushed through the checksummed
#: frame (:func:`repro.core.serializer.frame_checksummed`).  Only the
#: corrupted-upload fault path frames its wire bytes today — the healthy
#: path ships codec payloads unframed, exactly as before.
UPLOAD_FRAME_MAGIC = b"FLUP"


def corrupt_wire_bytes(payload: bytes) -> bytes:
    """A checksum-framed copy of ``payload``, truncated in transit.

    The last quarter of the framed bytes (at least one byte) is cut, so the
    CRC32 recorded in the frame header no longer matches the surviving body
    and :func:`repro.core.serializer.unframe_checksummed` must reject the
    upload.  Deterministic — purely length-based — so every executor models
    the same corruption for the same payload.
    """
    framed = frame_checksummed(UPLOAD_FRAME_MAGIC, payload)
    return framed[: len(framed) - max(1, len(framed) // 4)]


def transmit_corrupted_update(
    state_dict: Mapping[str, np.ndarray],
    codec,
    link: ClientLink,
    lock=None,
) -> tuple:
    """Push one client update whose framed payload is corrupted in transit.

    The client does everything the healthy path does on its side — compress
    (or serialize, for codec-less runs) and occupy the link for the bytes
    that actually travelled — but the server's frame check
    (:func:`repro.core.serializer.unframe_checksummed`) rejects what
    arrives, so the update is accounted exactly like a transit loss:
    ``delivered=False``, no received state, zero accepted bytes, no
    decompression.  The link's dropout stream is **not** rolled — the fault
    pre-empts the loss model, matching how executors skip the pre-roll for
    faulted tasks — so corrupted rounds stay bit-identical across
    serial/thread/process execution.
    """
    from repro.compression.errors import CorruptPayloadError

    original_nbytes = int(sum(np.asarray(v).nbytes for v in state_dict.values()))
    guard = lock if lock is not None else contextlib.nullcontext()
    compress_seconds = 0.0
    report = None
    if codec is None:
        payload = serialize_named_arrays(dict(state_dict))
    else:
        with guard:
            start = time.perf_counter()
            payload = codec.compress(state_dict)
            compress_seconds = time.perf_counter() - start
            report = getattr(codec, "last_report", None)

    wire = corrupt_wire_bytes(payload)
    record = link.send(wire, description="corrupted client update")

    try:
        unframe_checksummed(UPLOAD_FRAME_MAGIC, wire)
    except CorruptPayloadError:
        pass  # the server-side reject this fault exists to exercise
    else:  # pragma: no cover - corrupt_wire_bytes guarantees a bad frame
        raise RuntimeError("corrupted upload unexpectedly passed the frame check")

    if codec is not None and link.device_profile is not None:
        config = getattr(codec, "config", None)
        if config is not None:
            compress_seconds = link.device_profile.compression_seconds(
                config.lossy_compressor, original_nbytes, config.error_bound
            )

    stats = TransferStats(
        payload_nbytes=len(wire),
        transfer_seconds=record.seconds,
        compress_seconds=compress_seconds,
        decompress_seconds=0.0,
        ratio=compression_ratio(original_nbytes, len(wire)),
        delivered=False,
        report=report,
    )
    return None, stats


class Transport:
    """Per-client uplinks plus the server's broadcast downlink.

    Construct via :meth:`homogeneous` (one shared channel, the seed
    behaviour) or :meth:`heterogeneous` (one independent link per client),
    then :meth:`bind` to a client population.  The runtime calls ``bind``
    automatically.

    Links are **lazy**: ``bind`` records the population size and the seed
    root, and a :class:`ClientLink` is built the first time its client is
    touched (``uplink``/``downlink_seconds``).  Each link's dropout stream is
    seeded by random access into the bind seed's spawn sequence
    (:meth:`repro.utils.seeding.SeedSequenceFactory.seed_at`), so lazily
    built links are bit-identical to the previous eagerly built population —
    at 100k–1M clients a round only pays for the links its participants use.
    ``links`` holds the materialised subset.
    """

    def __init__(
        self,
        specs: Optional[Sequence[LinkSpec]] = None,
        default_spec: Optional[LinkSpec] = None,
        share_channel: bool = False,
        channel: Optional[SimulatedChannel] = None,
        cycle_specs: bool = False,
    ) -> None:
        self._specs: Optional[List[LinkSpec]] = list(specs) if specs is not None else None
        self._default_spec = default_spec or LinkSpec()
        self._share_channel = bool(share_channel or channel is not None)
        self._channel = channel
        self._user_channel = channel is not None
        self._cycle_specs = bool(cycle_specs)
        self._num_clients: Optional[int] = None
        self._seed_factory: Optional[SeedSequenceFactory] = None
        self.links: Dict[int, ClientLink] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        bandwidth_mbps: float = 10.0,
        latency_seconds: float = 0.0,
        channel: Optional[SimulatedChannel] = None,
        real_sleep: bool = False,
    ) -> "Transport":
        """Every client shares one channel — identical to the seed simulation."""
        if channel is not None:
            spec = LinkSpec(
                bandwidth_mbps=channel.bandwidth.bandwidth_mbps,
                latency_seconds=channel.bandwidth.latency_seconds,
                real_sleep=channel.real_sleep,
            )
        else:
            spec = LinkSpec(
                bandwidth_mbps=bandwidth_mbps,
                latency_seconds=latency_seconds,
                real_sleep=real_sleep,
            )
        return cls(default_spec=spec, share_channel=True, channel=channel)

    @classmethod
    def heterogeneous(cls, specs: Sequence[LinkSpec], cycle: bool = False) -> "Transport":
        """One independent link per client, in client-id order.

        With ``cycle=True`` client ``i`` gets ``specs[i % len(specs)]``, so a
        short spec pattern serves an arbitrarily large fleet without holding
        one :class:`LinkSpec` object per client (the mega-fleet convention —
        :func:`edge_fleet_specs` already cycles bandwidths the same way).
        """
        if not specs:
            raise ValueError("heterogeneous transport needs at least one LinkSpec")
        return cls(specs=list(specs), cycle_specs=cycle)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, num_clients: int, seed: int = 0) -> None:
        """Bind to a client population; links materialise lazily from here.

        Rebinding (e.g. reusing one transport across two runtimes) drops
        every materialised link, so dropout streams restart from ``seed``
        instead of continuing the previous run's draws.  A user-supplied
        shared channel is kept (its transfer log spans both runs, as it did
        in the seed simulation); an auto-created one is replaced.
        """
        if (
            self._specs is not None
            and not self._cycle_specs
            and len(self._specs) != num_clients
        ):
            raise ValueError(
                f"transport has {len(self._specs)} link specs but the runtime has "
                f"{num_clients} clients"
            )
        if self._share_channel and (self._channel is None or not self._user_channel):
            self._channel = SimulatedChannel(
                BandwidthModel(
                    self._default_spec.bandwidth_mbps, self._default_spec.latency_seconds
                ),
                real_sleep=self._default_spec.real_sleep,
            )
        self._num_clients = int(num_clients)
        self._seed_factory = SeedSequenceFactory(seed)
        self.links = {}

    def _spec_for(self, client_id: int) -> LinkSpec:
        if self._specs is None:
            return self._default_spec
        if self._cycle_specs:
            return self._specs[client_id % len(self._specs)]
        return self._specs[client_id]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def channel(self) -> Optional[SimulatedChannel]:
        """The shared channel (``None`` for heterogeneous transports)."""
        return self._channel

    @property
    def is_homogeneous(self) -> bool:
        """True when every client shares one link spec and channel."""
        return self._specs is None

    def uplink(self, client_id: int) -> ClientLink:
        """The link carrying ``client_id``'s updates to the server.

        Materialises the link on first access.  The link's dropout seed is
        the ``client_id``-th child of the bind seed — exactly the seed the
        eager implementation assigned — so first-touch order never changes
        any stream.
        """
        client_id = int(client_id)
        link = self.links.get(client_id)
        if link is not None:
            return link
        if self._num_clients is None:
            raise KeyError(
                f"transport is not bound to a client population yet "
                f"(no link for client {client_id}); call bind() first"
            )
        if not 0 <= client_id < self._num_clients:
            raise KeyError(
                f"client {client_id} is out of range for a transport bound to "
                f"{self._num_clients} clients"
            )
        link = ClientLink(
            client_id,
            self._spec_for(client_id),
            channel=self._channel if self._share_channel else None,
            seed=self._seed_factory.seed_at(client_id),
        )
        self.links[client_id] = link
        return link

    def downlink_seconds(self, num_bytes: int, client_id: int) -> float:
        """Modelled broadcast time to one client (links are symmetric)."""
        return self.uplink(client_id).transmission_seconds(num_bytes)

    def total_uplink_seconds(self) -> float:
        """Simulated transfer time accumulated across every link so far."""
        if self._share_channel:
            return self._channel.total_seconds if self._channel is not None else 0.0
        return sum(link.channel.total_seconds for link in self.links.values())

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def rng_states(self) -> Dict[int, dict]:
        """Bit-generator state of every *materialised* link's dropout stream.

        Part of a :class:`repro.fl.checkpoint.RunCheckpoint`: dropout draws
        advance round by round, so resuming without them would replay (or
        skip) packet losses and diverge from the uninterrupted run.  A link
        that was never materialised has never drawn, so rebuilding it lazily
        from its seed after resume is already bit-identical — only touched
        links carry state worth persisting.
        """
        return {
            client_id: link._rng.bit_generator.state
            for client_id, link in self.links.items()
        }

    def restore_rng_states(self, states: Mapping[int, dict]) -> None:
        """Restore previously captured per-link dropout streams.

        Materialises any link the snapshot names that has not been touched
        yet (e.g. resuming under a transport that never ran a round).
        """
        if self._num_clients is None:
            raise KeyError(
                "transport is not bound to a client population yet; bind() "
                "before restoring link streams"
            )
        for client_id, state in states.items():
            client_id = int(client_id)
            if not 0 <= client_id < self._num_clients:
                raise KeyError(
                    f"checkpoint carries a dropout stream for client {client_id} "
                    f"but the transport is bound to {self._num_clients} clients"
                )
            self.uplink(client_id)._rng.bit_generator.state = state

    def spec_fingerprint(self) -> Dict[str, object]:
        """JSON-compatible description of the link topology, for checkpoint
        validation: resuming over different links would change every modelled
        transfer time and dropout draw."""
        from dataclasses import asdict

        if self._specs is None:
            return {"kind": "homogeneous", "spec": asdict(self._default_spec)}
        kind = "heterogeneous-cycle" if self._cycle_specs else "heterogeneous"
        return {"kind": kind, "specs": [asdict(spec) for spec in self._specs]}


def edge_fleet_specs(
    num_clients: int,
    bandwidths_mbps: Sequence[float] = (5.0, 10.0, 25.0, 50.0),
    latency_seconds: float = 0.01,
    straggler_ids: Sequence[int] = (),
    straggler_factor: float = 10.0,
    dropout_probability: float = 0.0,
    device: Optional[str] = None,
) -> List[LinkSpec]:
    """Convenience: a heterogeneous fleet cycling through edge bandwidths.

    Client ``i`` gets ``bandwidths_mbps[i % len(bandwidths_mbps)]``; clients
    listed in ``straggler_ids`` additionally get ``straggler_factor`` applied
    to every transfer.  This mirrors the device diversity the paper targets
    (constrained edge uplinks, Section VI-C) without hand-writing specs.
    """
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    stragglers = set(int(i) for i in straggler_ids)
    out_of_range = sorted(i for i in stragglers if not 0 <= i < num_clients)
    if out_of_range:
        raise ValueError(
            f"straggler ids {out_of_range} are out of range for {num_clients} clients"
        )
    specs = []
    for client_id in range(num_clients):
        specs.append(
            LinkSpec(
                bandwidth_mbps=float(bandwidths_mbps[client_id % len(bandwidths_mbps)]),
                latency_seconds=latency_seconds,
                straggler_factor=straggler_factor if client_id in stragglers else 1.0,
                dropout_probability=dropout_probability,
                device=device,
            )
        )
    return specs
