"""Lossless codecs used for the metadata / non-weight partition.

The FedSZ paper compares blosc-lz, gzip, xz, zlib and zstd (Table II) and
selects blosc-lz for the lossless path because it is by far the fastest while
achieving a ratio comparable to the much slower xz.

Offline substitutions (documented in DESIGN.md):

* ``gzip``, ``zlib`` and ``xz`` wrap the genuine stdlib implementations.
* ``blosc-lz`` is not installable offline; the stand-in reproduces its two key
  ingredients — a byte *shuffle* filter over the float stream followed by a
  fast LZ pass (DEFLATE at level 1) — which preserves the property the paper
  relies on: the fastest codec in the suite with a competitive ratio.
* ``zstd`` is likewise unavailable; the stand-in is DEFLATE at a mid level,
  preserving Zstandard's position in Table II (slower than blosc-lz, ratio in
  the same band as gzip/zlib).

All codecs implement :class:`~repro.compression.base.LosslessCompressor` and
produce self-describing payloads that round-trip exactly.
"""

from __future__ import annotations

import gzip
import lzma
import struct
import zlib

import numpy as np

from repro.compression.base import LosslessCompressor
from repro.compression.errors import CorruptPayloadError

_SHUFFLE_MAGIC = b"BLSC"
_SHUFFLE_HEADER = struct.Struct("<4sBQ")


def byte_shuffle(data: bytes, itemsize: int) -> bytes:
    """Blosc-style shuffle: group the i-th byte of every item together.

    Shuffling float32 streams clusters exponent bytes, which compress much
    better under a fast LZ pass.  Trailing bytes that do not form a full item
    are left unshuffled at the end.
    """
    if itemsize <= 1 or len(data) < itemsize:
        return data
    usable = (len(data) // itemsize) * itemsize
    head = np.frombuffer(data[:usable], dtype=np.uint8).reshape(-1, itemsize)
    return head.T.tobytes() + data[usable:]


def byte_unshuffle(data: bytes, itemsize: int, original_length: int) -> bytes:
    """Inverse of :func:`byte_shuffle`."""
    if itemsize <= 1 or original_length < itemsize:
        return data
    usable = (original_length // itemsize) * itemsize
    head = np.frombuffer(data[:usable], dtype=np.uint8).reshape(itemsize, -1)
    return head.T.tobytes() + data[usable:]


class BloscLZCompressor(LosslessCompressor):
    """Byte-shuffle + fast LZ stand-in for blosc-lz."""

    name = "blosc-lz"

    def __init__(self, itemsize: int = 4, level: int = 1) -> None:
        if itemsize < 1:
            raise ValueError(f"itemsize must be >= 1, got {itemsize}")
        self.itemsize = int(itemsize)
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        shuffled = byte_shuffle(data, self.itemsize)
        body = zlib.compress(shuffled, self.level)
        header = _SHUFFLE_HEADER.pack(_SHUFFLE_MAGIC, self.itemsize, len(data))
        return header + body

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < _SHUFFLE_HEADER.size:
            raise CorruptPayloadError("blosc-lz payload too short")
        magic, itemsize, original_length = _SHUFFLE_HEADER.unpack_from(payload, 0)
        if magic != _SHUFFLE_MAGIC:
            raise CorruptPayloadError(f"bad blosc-lz payload magic {magic!r}")
        shuffled = zlib.decompress(payload[_SHUFFLE_HEADER.size :])
        if len(shuffled) != original_length:
            raise CorruptPayloadError("blosc-lz payload length mismatch after decompression")
        return byte_unshuffle(shuffled, itemsize, original_length)


class ZstdCompressor(LosslessCompressor):
    """Zstandard stand-in (DEFLATE at a mid compression level)."""

    name = "zstd"

    def __init__(self, level: int = 6) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


class ZlibCompressor(LosslessCompressor):
    """Genuine zlib (DEFLATE with zlib framing)."""

    name = "zlib"

    def __init__(self, level: int = 9) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


class GzipCompressor(LosslessCompressor):
    """Genuine gzip (DEFLATE with gzip framing)."""

    name = "gzip"

    def __init__(self, level: int = 9) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return gzip.compress(data, compresslevel=self.level)

    def decompress(self, payload: bytes) -> bytes:
        return gzip.decompress(payload)


class XzCompressor(LosslessCompressor):
    """Genuine xz / LZMA."""

    name = "xz"

    def __init__(self, preset: int = 6) -> None:
        self.preset = int(preset)

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress(self, payload: bytes) -> bytes:
        return lzma.decompress(payload)
