"""DET001 — no global-state RNG.

Every stochastic stream in this repo flows from an explicit
:class:`numpy.random.Generator` (``utils.seeding.spawn_generator``, the
``client_round_rng`` substream discipline from the checkpoint work).  Module
-level RNG calls (``np.random.normal``, bare ``random.choice``) draw from
hidden global state that is not captured by checkpoints, not forked safely to
workers, and not reproducible across executors — exactly the bug class the
serial==thread==process bit-identity suites keep re-fixing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules import LintRule, register_rule

#: Legacy module-level ``numpy.random`` API (the hidden global RandomState).
#: Explicit-stream constructors (default_rng/Generator/PCG64/SeedSequence/
#: RandomState) are deliberately absent.
_NUMPY_GLOBAL_FNS = frozenset({
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random_integers",
    "random", "random_sample", "ranf", "sample", "bytes",
    "choice", "shuffle", "permutation",
    "beta", "binomial", "chisquare", "dirichlet", "exponential", "f",
    "gamma", "geometric", "gumbel", "hypergeometric", "laplace", "logistic",
    "lognormal", "logseries", "multinomial", "multivariate_normal",
    "negative_binomial", "noncentral_chisquare", "noncentral_f", "normal",
    "pareto", "poisson", "power", "rayleigh", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal", "standard_t",
    "triangular", "uniform", "vonmises", "wald", "weibull", "zipf",
})

#: Module-level functions of the stdlib ``random`` module (the shared global
#: ``random.Random`` instance).  ``random.Random(seed)`` / ``SystemRandom``
#: construct explicit instances and are allowed.
_STDLIB_GLOBAL_FNS = frozenset({
    "seed", "getstate", "setstate", "getrandbits", "randbytes",
    "randrange", "randint", "choice", "choices", "shuffle", "sample",
    "random", "uniform", "triangular", "betavariate", "binomialvariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
})


@register_rule
class GlobalRngRule(LintRule):
    rule_id = "DET001"
    summary = "no global-state RNG calls (np.random.* module API, bare random.*)"
    invariant = (
        "randomness flows from explicit numpy.random.Generator streams so "
        "every draw is seeded, checkpointable and identical across executors"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)

    def _check_call(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        resolved = module.resolve(node.func)
        if resolved is None:
            return
        if resolved.startswith("numpy.random."):
            tail = resolved[len("numpy.random."):]
            if tail in _NUMPY_GLOBAL_FNS:
                yield self.finding(
                    module, node,
                    f"global-state RNG call {resolved}(); draw from an "
                    "explicit numpy.random.Generator instead "
                    "(utils.seeding.spawn_generator / client_round_rng)",
                )
        elif resolved.startswith("random."):
            tail = resolved[len("random."):]
            if tail in _STDLIB_GLOBAL_FNS:
                yield self.finding(
                    module, node,
                    f"global-state RNG call {resolved}(); use an explicit "
                    "random.Random(seed) or a numpy Generator instead",
                )

    def _check_import(self, module: ModuleContext, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module != "random" or node.level != 0:
            return
        for name in node.names:
            if name.name in _STDLIB_GLOBAL_FNS:
                yield self.finding(
                    module, node,
                    f"'from random import {name.name}' binds the shared "
                    "global random.Random stream; construct an explicit "
                    "random.Random(seed) instead",
                )
