"""Model zoo: AlexNet, MobileNetV2 and ResNet variants.

The :func:`create_model` factory is the entry point used by the federated
runtime, the experiment harnesses and the examples.  Each model family offers
a ``"paper"`` variant matching the architecture (and therefore the state-dict
size and weight distribution) evaluated in the FedSZ paper, and a ``"tiny"``
variant of the same architectural family that is fast enough to train in a
pure-numpy federated simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.models.alexnet import AlexNet
from repro.nn.models.mobilenetv2 import InvertedResidual, MobileNetV2
from repro.nn.models.resnet import BasicBlock, Bottleneck, ResNet
from repro.nn.module import Module
from repro.utils.seeding import default_rng

#: Models evaluated in the paper, in Table I / Table V order.
PAPER_MODELS = ("alexnet", "mobilenetv2", "resnet50")

#: Canonical input resolution of the paper-scale variants.
PAPER_INPUT_SIZE: Dict[str, int] = {
    "alexnet": 224,
    "mobilenetv2": 224,
    "resnet50": 224,
    "resnet18": 224,
}

#: Input resolution used by the tiny (trainable) variants.
TINY_INPUT_SIZE = 16


def create_model(
    name: str,
    variant: str = "paper",
    num_classes: int = 10,
    in_channels: int = 3,
    seed: Optional[int] = None,
) -> Module:
    """Instantiate a model by family name.

    Parameters
    ----------
    name:
        One of ``"alexnet"``, ``"mobilenetv2"``, ``"resnet50"``, ``"resnet18"``.
    variant:
        ``"paper"`` for the full-size architecture, ``"tiny"`` for the
        trainable scaled-down sibling.
    num_classes, in_channels:
        Classification head size and input channel count (dataset dependent).
    seed:
        Optional seed making the initialisation reproducible.
    """
    rng = default_rng(seed) if seed is not None else default_rng()
    factories: Dict[str, Callable[[], Module]] = {
        "alexnet": lambda: AlexNet(num_classes, in_channels, variant=variant, rng=rng),
        "mobilenetv2": lambda: MobileNetV2(num_classes, in_channels, variant=variant, rng=rng),
        "resnet50": lambda: (
            ResNet.resnet50(num_classes, in_channels, rng=rng)
            if variant == "paper"
            else ResNet.tiny(num_classes, in_channels, rng=rng)
        ),
        "resnet18": lambda: (
            ResNet.resnet18(num_classes, in_channels, rng=rng)
            if variant == "paper"
            else ResNet.tiny(num_classes, in_channels, rng=rng)
        ),
    }
    key = name.lower()
    if key not in factories:
        raise ValueError(f"unknown model {name!r}; available: {sorted(factories)}")
    return factories[key]()


def available_models() -> tuple:
    """Model family names accepted by :func:`create_model`."""
    return ("alexnet", "mobilenetv2", "resnet50", "resnet18")


def synthetic_pretrained_weights(
    name: str,
    num_values: int = 500_000,
    seed: int = 0,
) -> np.ndarray:
    """Draw a 1-D sample of weights distributed like the named model's.

    Used by characterisation experiments (Figures 2, 3 and 10) that only need
    the weight *distribution*, not a functioning model: a mixture of the
    near-zero bulk and rare large-magnitude outliers whose spread matches the
    per-family distributions shown in Figure 3 of the paper.
    """
    rng = np.random.default_rng(seed)
    scales = {"alexnet": 0.02, "mobilenetv2": 0.08, "resnet50": 0.025, "resnet18": 0.03}
    scale = scales.get(name.lower(), 0.03)
    # Trained network weights are heavy-tailed (sharply peaked at zero), which
    # is why the paper's compression-error histograms look Laplacian; a Laplace
    # bulk reproduces both Figure 3's shapes and Figure 10's observation.
    bulk = rng.laplace(0.0, scale / np.sqrt(2.0), num_values)
    outlier_count = max(1, num_values // 2000)
    positions = rng.choice(num_values, outlier_count, replace=False)
    bulk[positions] = rng.uniform(-0.9, 0.9, outlier_count)
    return bulk.astype(np.float32)


__all__ = [
    "AlexNet",
    "MobileNetV2",
    "InvertedResidual",
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "create_model",
    "available_models",
    "synthetic_pretrained_weights",
    "PAPER_MODELS",
    "PAPER_INPUT_SIZE",
    "TINY_INPUT_SIZE",
]
