"""Command-line interface for the paper's experiments and the FL runtime.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 [--output results/table1.txt]
    python -m repro.cli run figure8 --quick
    python -m repro.cli run all --quick --output results/
    python -m repro.cli fl --scheduler semi-sync --deadline 2.0 \
        --executor parallel --workers 4 --heterogeneous --straggler 2
    python -m repro.cli fl --scenario uniform-edge --clients 256 \
        --client-fraction 0.05 --executor parallel --workers 4
    python -m repro.cli fl --parallel-tensors --codec-workers 4
    python -m repro.cli fl --scenario unreliable-server --checkpoint-dir ckpts
    python -m repro.cli fl --scenario unreliable-server --checkpoint-dir ckpts --resume
    python -m repro.cli fl --monitor-port 8700 --history-out history.json
    python -m repro.cli bench list
    python -m repro.cli bench --workload tiny --out BENCH_tiny.json
    python -m repro.cli bench compare benchmarks/baselines/tiny.json BENCH_tiny.json
    python -m repro.cli bench compare base_a.json cur_a.json base_b.json cur_b.json \
        --report-out diagnosis.md
    python -m repro.cli report --history history.json --bench BENCH_tiny.json \
        --out report.md

``run`` regenerates one of the paper's tables/figures (``--quick`` shrinks
the workload so a full sweep completes in a few minutes).  ``fl`` drives the
layered federated runtime directly: pick a round scheduler (sync / semi-sync
/ async), an executor (serial / parallel) and a transport (homogeneous or a
heterogeneous edge fleet with injected stragglers and dropout).  ``bench``
runs the performance workloads from :mod:`repro.bench`, writes a
schema-versioned ``BENCH_<workload>.json`` and, in ``compare`` mode, diffs
one or more baseline/current BENCH pairs, prints every failing metric across
all of them in one combined summary and exits nonzero when any metric
regressed past the tolerance.  ``report`` renders the deterministic post-run
error-analysis markdown from a saved history (``fl --history-out``) and/or
BENCH files; ``fl --monitor-port`` serves a live status dashboard while the
simulation runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro import experiments
from repro.experiments.reporting import ExperimentResult

#: Experiment id -> (harness, quick-mode keyword arguments).
_EXPERIMENTS: Dict[str, tuple] = {
    "table1": (experiments.run_table1, {"sample_elements": 60_000}),
    "table2": (experiments.run_table2, {}),
    "table3": (experiments.run_table3, {}),
    "table4": (experiments.run_table4, {}),
    "table5": (experiments.run_table5, {"max_elements_per_tensor": 40_000}),
    "figure2": (experiments.run_figure2, {}),
    "figure3": (experiments.run_figure3, {"num_values": 100_000}),
    "figure4": (experiments.run_figure4, {"rounds": 4, "samples": 360, "compressors": (None, "sz2")}),
    "figure5": (experiments.run_figure5, {"train_epochs": 4, "samples": 300}),
    "figure6": (experiments.run_figure6, {"rounds": 1, "samples": 240}),
    "figure7": (experiments.run_figure7, {"max_elements_per_tensor": 40_000}),
    "figure8": (experiments.run_figure8, {"max_elements_per_tensor": 40_000}),
    "figure9": (experiments.run_figure9, {}),
    "figure10": (experiments.run_figure10, {"num_values": 100_000}),
}


def available_experiments() -> list:
    """Experiment identifiers accepted by ``run``."""
    return sorted(_EXPERIMENTS)


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment harness by identifier."""
    key = name.lower()
    if key not in _EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {available_experiments()}")
    harness, quick_kwargs = _EXPERIMENTS[key]
    kwargs = quick_kwargs if quick else {}
    return harness(**kwargs)


def _write_or_print(result: ExperimentResult, output: Optional[Path], name: str) -> None:
    text = result.to_text()
    if output is None:
        print(text)
        print()
        return
    if output.suffix:  # explicit file
        destination = output
    else:  # directory
        output.mkdir(parents=True, exist_ok=True)
        destination = output / f"{name}.txt"
    destination.write_text(text + "\n", encoding="utf-8")
    print(f"wrote {destination}")


def run_fl(
    model: str = "resnet50",
    dataset: str = "cifar10",
    rounds: Optional[int] = None,
    clients: Optional[int] = None,
    samples: Optional[int] = None,
    error_bound: Optional[float] = 1e-2,
    scheduler: str = "sync",
    deadline_seconds: float = 5.0,
    mixing_rate: float = 0.5,
    executor: str = "serial",
    workers: int = 4,
    engine: str = "rounds",
    heterogeneous: bool = False,
    stragglers: tuple = (),
    straggler_factor: float = 10.0,
    dropout: float = 0.0,
    scenario: Optional[str] = None,
    client_fraction: Optional[float] = None,
    parallel_tensors: bool = False,
    codec_workers: Optional[int] = None,
    seed: int = 0,
    checkpoint_dir: Optional[Path] = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    monitor=None,
):
    """Run one federated simulation through the layered runtime.

    ``scenario`` selects a fleet preset from :mod:`repro.fl.scenarios`
    (``uniform-edge`` / ``diurnal`` / ``flash-crowd``), which supplies the
    transport, round scheduler, participation schedule *and* the default
    fleet shape (the preset's ``num_clients`` / ``rounds`` /
    ``client_fraction`` unless overridden on the command line) — the
    ``--scheduler`` / ``--heterogeneous`` / straggler flags are then ignored.
    Without a scenario, ``rounds`` and ``clients`` default to 3 and 4.
    ``checkpoint_dir`` makes the run crash-safe (a snapshot is written after
    every ``checkpoint_every``-th round); ``resume=True`` restores the latest
    snapshot from that directory before running, completing an interrupted
    run bit-identically.  ``monitor`` attaches a
    :class:`~repro.obs.RunMonitor` to the runtime (strictly passive — the
    simulated outcome is bit-identical with or without it).  Returns the
    :class:`~repro.fl.TrainingHistory`; the CLI prints its rows.
    """
    from repro.core import FedSZCompressor
    from repro.experiments.workloads import build_federated_setup
    from repro.fl import (
        FLSimulation,
        Transport,
        build_executor,
        build_fleet_runtime,
        edge_fleet_specs,
        get_scenario,
        get_scheduler,
    )

    preset = None
    if scenario is not None:
        overrides = {
            key: value
            for key, value in (
                ("num_clients", clients),
                ("rounds", rounds),
                ("client_fraction", client_fraction),
            )
            if value is not None
        }
        preset = get_scenario(scenario, **overrides)
        clients = preset.num_clients
        rounds = preset.rounds
    else:
        clients = 4 if clients is None else clients
        rounds = 3 if rounds is None else rounds

    if samples is None:
        # The 80/20 split must leave every client at least one training
        # sample, so the default dataset grows with the fleet.
        samples = max(400, -(-3 * clients // 2))
    setup = build_federated_setup(
        model_name=model,
        dataset_name=dataset,
        num_clients=clients,
        rounds=rounds,
        samples=samples,
        seed=seed,
    )
    from repro.fl.scheduler import canonical_scheduler_name

    # An explicit worker count is an unambiguous request for per-tensor
    # parallelism; silently running serial because --parallel-tensors was
    # omitted would fake the benchmark the user thinks they are running.
    parallel_tensors = parallel_tensors or codec_workers is not None
    codec = (
        None
        if error_bound is None
        else FedSZCompressor(
            error_bound=error_bound,
            parallel_tensors=parallel_tensors,
            max_codec_workers=codec_workers,
        )
    )

    run_kwargs = {}
    if checkpoint_dir is not None:
        run_kwargs.update(checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every)
    elif checkpoint_every != 1:
        # Silently ignoring the cadence would let the user believe the run is
        # crash-safe when nothing is being written.
        raise ValueError("--checkpoint-every requires --checkpoint-dir")
    if resume:
        if checkpoint_dir is None:
            raise ValueError("--resume requires --checkpoint-dir")
        run_kwargs["resume"] = True

    if preset is not None:
        runtime = build_fleet_runtime(
            preset,
            setup.model_fn,
            setup.train_dataset,
            setup.validation_dataset,
            codec=codec,
            executor=build_executor(executor, workers),
            engine=engine,
            # Train with the same hyper-parameters as the non-scenario path;
            # the preset only decides fleet shape, links and availability.
            seed=setup.config.seed,
            batch_size=setup.config.batch_size,
            learning_rate=setup.config.learning_rate,
            local_epochs=setup.config.local_epochs,
            momentum=setup.config.momentum,
            weight_decay=setup.config.weight_decay,
            bandwidth_mbps=setup.config.bandwidth_mbps,
            eval_batch_size=setup.config.eval_batch_size,
            monitor=monitor,
        )
        try:
            return runtime.run(**run_kwargs)
        finally:
            runtime.close()

    scheduler_kwargs = {}
    canonical = canonical_scheduler_name(scheduler)
    if canonical == "semi-sync":
        scheduler_kwargs["deadline_seconds"] = deadline_seconds
    elif canonical == "async":
        scheduler_kwargs["mixing_rate"] = mixing_rate
    transport = None
    if heterogeneous or stragglers or dropout > 0:
        transport = Transport.heterogeneous(
            edge_fleet_specs(
                clients,
                straggler_ids=stragglers,
                straggler_factor=straggler_factor,
                dropout_probability=dropout,
            )
        )
    config = setup.config
    if client_fraction is not None or engine != config.engine:
        from dataclasses import replace

        overrides = {"engine": engine}
        if client_fraction is not None:
            overrides["client_fraction"] = client_fraction
        config = replace(config, **overrides)
    simulation = FLSimulation(
        setup.model_fn,
        setup.train_dataset,
        setup.validation_dataset,
        config,
        codec=codec,
        scheduler=get_scheduler(scheduler, **scheduler_kwargs),
        executor=build_executor(executor, workers),
        transport=transport,
        monitor=monitor,
    )
    try:
        return simulation.run(**run_kwargs)
    finally:
        simulation.close()


def _run_fl_from_args(arguments) -> "object":
    monitor = None
    server = None
    if arguments.monitor_port is not None:
        from repro.obs import MonitorServer, RunMonitor

        monitor = RunMonitor()
        server = MonitorServer(monitor, port=arguments.monitor_port).start()
        print(f"monitor: {server.url}/ (JSON at {server.url}/api/status)")
    try:
        return _call_run_fl(arguments, monitor)
    finally:
        if server is not None:
            server.stop()


def _call_run_fl(arguments, monitor) -> "object":
    return run_fl(
        model=arguments.model,
        dataset=arguments.dataset,
        rounds=arguments.rounds,
        clients=arguments.clients,
        samples=arguments.samples,
        error_bound=None if arguments.uncompressed else arguments.error_bound,
        scheduler=arguments.scheduler,
        deadline_seconds=arguments.deadline,
        mixing_rate=arguments.mixing_rate,
        executor=arguments.executor,
        workers=arguments.workers,
        engine=arguments.engine,
        heterogeneous=arguments.heterogeneous,
        stragglers=tuple(arguments.straggler),
        straggler_factor=arguments.straggler_factor,
        dropout=arguments.dropout,
        scenario=arguments.scenario,
        client_fraction=arguments.client_fraction,
        parallel_tensors=arguments.parallel_tensors,
        codec_workers=arguments.codec_workers,
        seed=arguments.seed,
        checkpoint_dir=arguments.checkpoint_dir,
        checkpoint_every=arguments.checkpoint_every,
        resume=arguments.resume,
        monitor=monitor,
    )


def _print_fl_history(history, per_client: bool) -> None:
    from repro.experiments.reporting import render_table

    rows = []
    for record in history.records:
        rows.append(
            {
                "round": record.round_index,
                "accuracy": record.global_accuracy,
                "uplink_mb": record.uplink_bytes / 1e6,
                "ratio": record.mean_compression_ratio,
                "round_seconds": record.simulated_round_seconds,
                "stragglers": record.straggler_clients,
                "dropped": record.dropped_clients,
            }
        )
    print(render_table(rows))
    if per_client:
        print()
        print(render_table(history.client_rows()))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. table1, figure8) or 'all'")
    run_parser.add_argument("--quick", action="store_true", help="use reduced workloads")
    run_parser.add_argument(
        "--output", type=Path, default=None, help="file (or directory for 'all') to write results to"
    )

    fl_parser = subparsers.add_parser("fl", help="run a federated simulation")
    fl_parser.add_argument("--model", default="resnet50",
                           choices=["resnet50", "mobilenetv2", "alexnet"])
    fl_parser.add_argument("--dataset", default="cifar10")
    fl_parser.add_argument("--rounds", type=int, default=None,
                           help="communication rounds (default 3, or the "
                                "scenario preset's round count)")
    fl_parser.add_argument("--clients", type=int, default=None,
                           help="fleet size (default 4, or the scenario "
                                "preset's fleet size, e.g. 256)")
    fl_parser.add_argument("--samples", type=int, default=None,
                           help="synthetic dataset size (default 400, scaled "
                                "up for large fleets so the 80/20 split "
                                "leaves every client a training sample)")
    fl_parser.add_argument("--error-bound", type=float, default=1e-2,
                           help="FedSZ REL bound for the uplink codec")
    fl_parser.add_argument("--uncompressed", action="store_true",
                           help="ship raw updates (no codec)")
    fl_parser.add_argument("--scheduler", default="sync",
                           choices=["sync", "semi-sync", "async"])
    fl_parser.add_argument("--deadline", type=float, default=5.0,
                           help="semi-sync straggler deadline (simulated seconds)")
    fl_parser.add_argument("--mixing-rate", type=float, default=0.5,
                           help="async staleness-mixing rate")
    fl_parser.add_argument("--executor", default="serial",
                           choices=["serial", "thread", "process", "parallel"],
                           help="how client work runs each round: serial loop, "
                                "thread pool ('parallel' is a legacy alias), or "
                                "shared-nothing worker processes — all "
                                "bit-identical for deterministic codecs")
    fl_parser.add_argument("--workers", type=int, default=4)
    fl_parser.add_argument("--engine", default="rounds",
                           choices=["rounds", "events"],
                           help="round-loop implementation: the legacy "
                                "round-synchronous loop or the discrete-event "
                                "engine (bit-identical results; per-round cost "
                                "scales with participants + availability "
                                "transitions instead of fleet size)")
    fl_parser.add_argument("--heterogeneous", action="store_true",
                           help="give each client its own edge link")
    fl_parser.add_argument("--straggler", type=int, action="append", default=[],
                           help="client id to turn into a straggler (repeatable)")
    fl_parser.add_argument("--straggler-factor", type=float, default=10.0)
    fl_parser.add_argument("--dropout", type=float, default=0.0,
                           help="per-round update dropout probability")
    from repro.fl.scenarios import available_scenarios

    fl_parser.add_argument("--scenario", default=None,
                           choices=[preset.name for preset in available_scenarios()],
                           help="fleet preset (supplies transport, scheduler, "
                                "availability schedule and default fleet shape; "
                                "overrides --scheduler / --heterogeneous / "
                                "straggler flags)")
    fl_parser.add_argument("--client-fraction", type=float, default=None,
                           help="fraction of clients sampled per round "
                                "(participants = ceil(fraction x clients))")
    fl_parser.add_argument("--parallel-tensors", action="store_true",
                           help="compress the lossy partition's tensors "
                                "concurrently on a thread pool (payloads are "
                                "byte-identical to the serial path)")
    fl_parser.add_argument("--codec-workers", type=int, default=None,
                           help="thread-pool width for per-tensor codec work "
                                "(implies --parallel-tensors; default: cpu count)")
    fl_parser.add_argument("--seed", type=int, default=0)
    fl_parser.add_argument("--checkpoint-dir", type=Path, default=None,
                           help="write a crash-safe run snapshot here after "
                                "every --checkpoint-every rounds (atomic, "
                                "schema-versioned, last 3 kept)")
    fl_parser.add_argument("--checkpoint-every", type=int, default=1,
                           help="rounds between snapshots (default 1)")
    fl_parser.add_argument("--resume", action="store_true",
                           help="restore the latest snapshot from "
                                "--checkpoint-dir before running and complete "
                                "the interrupted run bit-identically")
    fl_parser.add_argument("--per-client", action="store_true",
                           help="also print per-client round stats")
    fl_parser.add_argument("--monitor-port", type=int, default=None,
                           help="serve a live status dashboard + JSON API on "
                                "this port while the run executes (0 picks an "
                                "ephemeral port; the URL is printed)")
    fl_parser.add_argument("--history-out", type=Path, default=None,
                           help="write the full training history as schema-"
                                "tagged JSON (input for 'repro.cli report')")

    bench_parser = subparsers.add_parser(
        "bench", help="run performance benchmarks / compare BENCH JSON files"
    )
    bench_parser.add_argument(
        "mode", nargs="?", default="run", choices=["run", "compare", "list"],
        help="'run' (default) times a workload, 'compare' diffs baseline/"
             "current BENCH pairs, 'list' shows available workloads",
    )
    bench_parser.add_argument(
        "paths", nargs="*", type=Path,
        help="compare mode: one or more <baseline.json> <current.json> pairs",
    )
    bench_parser.add_argument("--workload", default="tiny",
                              help="workload name (see 'bench list')")
    bench_parser.add_argument("--out", type=Path, default=None,
                              help="output JSON path (default BENCH_<workload>.json)")
    bench_parser.add_argument("--warmup", type=int, default=1,
                              help="untimed warmup calls per metric")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="timed repeats per metric (min is reported)")
    bench_parser.add_argument("--tolerance", type=float, default=2.0,
                              help="compare mode: fail when current/baseline exceeds this ratio")
    bench_parser.add_argument("--min-seconds", type=float, default=1e-3,
                              help="compare mode: ignore regressions whose current "
                                   "time is below this noise floor")
    bench_parser.add_argument("--normalize", action="store_true",
                              help="compare mode: divide ratios by their median to "
                                   "cancel overall machine-speed differences "
                                   "(for gating CI runs against a dev-machine baseline)")
    bench_parser.add_argument("--report-out", type=Path, default=None,
                              help="compare mode: write a markdown gate diagnosis "
                                   "here (written before the nonzero exit, so a "
                                   "failed gate still produces its artifact)")
    bench_parser.add_argument("--history", type=Path, default=None,
                              help="compare mode: training-history JSON (from "
                                   "'fl --history-out') to fold into the "
                                   "--report-out diagnosis")

    lint_parser = subparsers.add_parser(
        "lint", help="run the repo-specific determinism/fork-safety lint"
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule id (repeatable; default: all rules)",
    )
    lint_parser.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program rules (CONC/FORK002/DET005/EXH) "
             "on a cached project-wide call graph",
    )
    lint_parser.add_argument(
        "--changed", action="store_true",
        help="lint only files changed per git (staged, unstaged and "
             "untracked) — the pre-commit fast path; with --deep the full "
             "index is still built but findings are scoped to changed files",
    )
    lint_parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default: text)",
    )
    lint_parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="--deep call-graph cache directory "
             "(default: .repro-lint-cache; see also --no-cache)",
    )
    lint_parser.add_argument(
        "--no-cache", action="store_true",
        help="--deep: always rebuild the project index, touch no cache files",
    )
    lint_parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON of parked findings (default: "
             ".repro-lint-baseline.json when it exists)",
    )
    lint_parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report every finding",
    )
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="capture the current findings as the baseline and exit 0",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids, summaries and the invariant each protects",
    )

    report_parser = subparsers.add_parser(
        "report", help="render a post-run error-analysis markdown report"
    )
    report_parser.add_argument("--history", type=Path, default=None,
                               help="training-history JSON written by "
                                    "'fl --history-out'")
    report_parser.add_argument("--bench", type=Path, action="append", default=[],
                               help="BENCH JSON file to include (repeatable)")
    report_parser.add_argument("--out", type=Path, default=None,
                               help="write the markdown here instead of stdout")
    report_parser.add_argument("--title", default="Run error-analysis report",
                               help="report heading")
    return parser


def _git_changed_python_files(paths) -> "List[Path]":
    """``.py`` files under ``paths`` that git reports as changed.

    Covers staged, unstaged and untracked files (``git status --porcelain``);
    deletions drop out naturally because the file no longer exists.
    Raises ``RuntimeError`` outside a git checkout.
    """
    import subprocess

    try:
        completed = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError) as error:
        raise RuntimeError(f"git status failed: {error}") from error
    roots = [Path(p).resolve() for p in paths]
    changed: List[Path] = []
    for line in completed.stdout.splitlines():
        if len(line) < 4:
            continue
        # "XY path" — renames are "XY old -> new"; keep the new name.
        raw = line[3:].split(" -> ")[-1].strip().strip('"')
        path = Path(raw)
        if path.suffix != ".py" or not path.exists():
            continue
        resolved = path.resolve()
        if any(root == resolved or root in resolved.parents for root in roots):
            changed.append(path)
    return sorted(set(changed), key=lambda p: p.as_posix())


def _run_lint(arguments) -> int:
    """Run the determinism/fork-safety lint; exit 1 on fresh findings."""
    from repro.analysis import (
        Baseline,
        Finding,
        deep_rule_descriptions,
        get_deep_rules,
        get_rules,
        lint_deep,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
        rule_descriptions,
        write_baseline,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE_NAME
    from repro.analysis.callgraph import DEFAULT_CACHE_DIR
    from repro.analysis.deep import available_deep_rules

    if arguments.list_rules:
        for description in rule_descriptions():
            print(f"{description['id']:8s} {description['summary']}")
            print(f"{'':8s} invariant: {description['invariant']}")
        for description in deep_rule_descriptions():
            print(f"{description['id']:8s} [deep] {description['summary']}")
            print(f"{'':8s} invariant: {description['invariant']}")
        return 0

    deep_ids = set(available_deep_rules())
    requested_shallow = arguments.rule
    if arguments.rule is not None:
        requested_shallow = [
            rule for rule in arguments.rule if rule.upper() not in deep_ids
        ]
        if not arguments.deep and len(requested_shallow) != len(arguments.rule):
            deep_only = [r for r in arguments.rule if r.upper() in deep_ids]
            print(
                f"rule(s) {', '.join(deep_only)} are whole-program rules; "
                "add --deep to run them",
                file=sys.stderr,
            )
            return 2
    try:
        # All shallow rules by default, but none when --rule asked for deep
        # rules exclusively.
        rules = get_rules(requested_shallow)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    missing = [path for path in arguments.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    shallow_paths = arguments.paths
    changed_files = None
    if arguments.changed:
        try:
            changed_files = _git_changed_python_files(arguments.paths)
        except RuntimeError as error:
            print(error, file=sys.stderr)
            return 2
        shallow_paths = changed_files

    result = lint_paths(shallow_paths, rules)

    if arguments.deep:
        cache_dir = None if arguments.no_cache else (
            arguments.cache_dir or DEFAULT_CACHE_DIR
        )
        deep_rules = get_deep_rules(arguments.rule)
        # The index always covers the full paths: whole-program properties
        # (a dispatch arm in another module) need the whole program even
        # when only reporting on changed files.
        deep_result, _project = lint_deep(
            arguments.paths, rules=deep_rules, cache_dir=cache_dir
        )
        deep_findings = deep_result.findings
        if changed_files is not None:
            changed_keys = {path.as_posix() for path in changed_files}
            deep_findings = [
                finding for finding in deep_findings if finding.path in changed_keys
            ]
        result.findings = sorted(
            result.findings + deep_findings, key=Finding.sort_key
        )

    if arguments.write_baseline:
        destination = arguments.baseline or Path(DEFAULT_BASELINE_NAME)
        write_baseline(destination, result.findings)
        print(f"wrote {len(result.findings)} finding(s) to {destination}")
        return 0

    baseline_path = arguments.baseline
    if baseline_path is None and not arguments.no_baseline:
        candidate = Path(DEFAULT_BASELINE_NAME)
        if candidate.exists():
            baseline_path = candidate
    if baseline_path is not None and not arguments.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot read baseline {baseline_path}: {error}", file=sys.stderr)
            return 2
        result.findings, result.baselined = baseline.filter(result.findings)

    if arguments.format == "json":
        output = render_json(result)
    elif arguments.format == "sarif":
        descriptions = rule_descriptions() + (
            deep_rule_descriptions() if arguments.deep else []
        )
        output = render_sarif(result, descriptions)
    else:
        output = render_text(result)
    print(output)
    return 1 if result.findings else 0


def _run_bench(arguments) -> int:
    from repro.bench import (
        available_workloads,
        build_report,
        compare_reports,
        load_report,
        render_report,
        run_workload,
        write_report,
    )
    from repro.bench.reporter import default_output_path

    if arguments.mode == "list":
        for spec in available_workloads():
            print(f"{spec.name:12s} {spec.description}")
        return 0

    if arguments.mode == "compare":
        return _run_bench_compare(arguments, load_report, compare_reports)

    try:
        records = run_workload(
            arguments.workload, warmup=arguments.warmup, repeats=arguments.repeats
        )
    except (KeyError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    report = build_report(
        arguments.workload.lower(),
        records,
        warmup=arguments.warmup,
        repeats=arguments.repeats,
    )
    destination = arguments.out or default_output_path(arguments.workload.lower())
    write_report(report, destination)
    print(render_report(report))
    print(f"wrote {destination}")
    return 0


def _run_bench_compare(arguments, load_report, compare_reports) -> int:
    """Diff every baseline/current pair, then report all failures at once.

    A CI gate that stops at the first failing workload forces a fix-rerun-fix
    loop; this runs every comparison, prints one combined failure summary and
    — when ``--report-out`` is set — writes the markdown diagnosis *before*
    exiting nonzero, so a red gate always ships its explanation.
    """
    paths = arguments.paths
    if len(paths) < 2 or len(paths) % 2 != 0:
        print(
            "bench compare needs baseline/current path pairs: "
            "<baseline.json> <current.json> [<baseline2.json> <current2.json> ...]",
            file=sys.stderr,
        )
        return 2
    try:
        results = [
            compare_reports(
                load_report(baseline_path),
                load_report(current_path),
                tolerance=arguments.tolerance,
                min_seconds=arguments.min_seconds,
                normalize=arguments.normalize,
            )
            for baseline_path, current_path in zip(paths[0::2], paths[1::2], strict=True)
        ]
    except (OSError, ValueError, KeyError) as error:
        print(error, file=sys.stderr)
        return 2
    for result in results:
        print(result.render())
        print()

    failing = [result for result in results if not result.ok]
    if failing:
        total = sum(len(result.failures) for result in failing)
        print(
            f"bench compare: {total} failing metric(s) across "
            f"{len(failing)} of {len(results)} workload(s):"
        )
        for result in failing:
            for comparison in result.failures:
                if comparison.status == "missing":
                    print(f"  {result.workload}/{comparison.name}: missing from current run")
                else:
                    print(
                        f"  {result.workload}/{comparison.name}: "
                        f"{comparison.ratio:.2f}x over baseline "
                        f"(tolerance {result.tolerance:g}x)"
                    )
    else:
        print(f"bench compare: all {len(results)} workload(s) within tolerance")

    if arguments.report_out is not None:
        from repro.obs.report import build_bench_diagnosis, build_error_analysis

        if arguments.history is not None:
            from repro.fl.history import TrainingHistory

            try:
                history = TrainingHistory.load(arguments.history)
            except (OSError, ValueError) as error:
                print(error, file=sys.stderr)
                return 2
            text = build_error_analysis(
                history=history,
                bench_comparisons=results,
                title="Bench gate diagnosis",
            )
        else:
            text = build_bench_diagnosis(results)
        arguments.report_out.parent.mkdir(parents=True, exist_ok=True)
        arguments.report_out.write_text(text, encoding="utf-8")
        print(f"wrote {arguments.report_out}")
    return 0 if not failing else 1


def _run_report(arguments) -> int:
    from repro.bench import load_report
    from repro.fl.history import TrainingHistory
    from repro.obs.report import build_error_analysis

    if arguments.history is None and not arguments.bench:
        print("report needs --history and/or at least one --bench file", file=sys.stderr)
        return 2
    try:
        history = (
            TrainingHistory.load(arguments.history) if arguments.history is not None else None
        )
        bench_reports = [load_report(path) for path in arguments.bench]
    except (OSError, ValueError, KeyError) as error:
        print(error, file=sys.stderr)
        return 2
    text = build_error_analysis(
        history=history,
        bench_reports=bench_reports or None,
        title=arguments.title,
    )
    if arguments.out is None:
        print(text, end="")
    else:
        arguments.out.parent.mkdir(parents=True, exist_ok=True)
        arguments.out.write_text(text, encoding="utf-8")
        print(f"wrote {arguments.out}")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if arguments.command == "lint":
        return _run_lint(arguments)

    if arguments.command == "bench":
        return _run_bench(arguments)

    if arguments.command == "report":
        return _run_report(arguments)

    if arguments.command == "fl":
        from repro.fl.checkpoint import CheckpointError
        from repro.fl.scenarios import SimulatedCrash

        try:
            history = _run_fl_from_args(arguments)
        except SimulatedCrash as crash:
            print(crash, file=sys.stderr)
            if arguments.checkpoint_dir is not None:
                print(
                    f"re-run with --checkpoint-dir {arguments.checkpoint_dir} "
                    "--resume to finish the remaining rounds",
                    file=sys.stderr,
                )
            else:
                print(
                    "the run was not checkpointed (no --checkpoint-dir); its "
                    "progress is lost",
                    file=sys.stderr,
                )
            return 3
        except (CheckpointError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
        if arguments.history_out is not None:
            history.save(arguments.history_out)
            print(f"wrote {arguments.history_out}")
        _print_fl_history(history, per_client=arguments.per_client)
        return 0

    if arguments.experiment.lower() == "all":
        for name in available_experiments():
            result = run_experiment(name, quick=arguments.quick)
            _write_or_print(result, arguments.output, name)
        return 0

    try:
        result = run_experiment(arguments.experiment, quick=arguments.quick)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    _write_or_print(result, arguments.output, arguments.experiment.lower())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
