"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Iterable, Type, TypeVar

T = TypeVar("T")


def ensure_positive(value: float, name: str, strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def ensure_in(value: T, choices: Iterable[T], name: str) -> T:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    options = list(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def ensure_type(value: Any, expected: Type[T], name: str) -> T:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be an instance of {expected.__name__}, got {type(value).__name__}"
        )
    return value
