"""Unit tests for the fingerprint-keyed broadcast cache (repro.fl.broadcast).

Covers the cache's three claims in isolation — once-per-round serialization,
guaranteed invalidation on state/codec/bound changes, stateful-codec opt-out —
plus the satellite behaviours that ride on it: broadcast codec seconds landing
on the round record (and in the Figure-6 breakdown), and the thread executor
cloning the codec once per worker rather than once per task.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedSZCompressor, IdentityCodec
from repro.fl.broadcast import (
    ENCODING_ARRAYS,
    ENCODING_CODEC,
    BroadcastCache,
    BroadcastPayload,
    broadcast_key,
    state_fingerprint,
)


@pytest.fixture()
def state():
    rng = np.random.default_rng(0)
    return {
        "layer.weight": rng.normal(size=(64, 32)).astype(np.float32),
        "layer.bias": rng.normal(size=(64,)).astype(np.float32),
    }


def _nbytes(state):
    return int(sum(np.asarray(v).nbytes for v in state.values()))


# ----------------------------------------------------------------------
# Fingerprints and payload round-trips
# ----------------------------------------------------------------------
def test_state_fingerprint_tracks_content(state):
    fingerprint = state_fingerprint(state)
    assert fingerprint == state_fingerprint({k: v.copy() for k, v in state.items()})
    perturbed = {k: v.copy() for k, v in state.items()}
    perturbed["layer.bias"][0] += 1.0
    assert state_fingerprint(perturbed) != fingerprint


def test_raw_payload_roundtrip(state):
    cache = BroadcastCache()
    out_state, nbytes, payload, compress_s, decompress_s = cache.round_state(
        state, codec=None, compress_downlink=False, build_payload=True
    )
    assert out_state.keys() == state.keys()
    assert payload.encoding == ENCODING_ARRAYS
    assert nbytes == payload.nbytes == _nbytes(state)
    assert compress_s == decompress_s == 0.0
    decoded = payload.decode()
    for name in state:
        np.testing.assert_array_equal(decoded[name], state[name])


def test_codec_payload_roundtrip(state):
    codec = FedSZCompressor(error_bound=1e-2)
    cache = BroadcastCache()
    out_state, nbytes, payload, compress_s, decompress_s = cache.round_state(
        state, codec=codec, compress_downlink=True, build_payload=True
    )
    assert payload.encoding == ENCODING_CODEC
    assert nbytes == payload.nbytes == len(payload.data)
    assert cache.compressions == 1  # the wire buffer reuses the codec payload
    assert compress_s > 0.0 and decompress_s > 0.0
    # Workers decode with their own clone; the result must equal the
    # decompressed reference the parent's clients train on.
    decoded = payload.decode(codec.clone())
    for name in state:
        np.testing.assert_array_equal(decoded[name], out_state[name])


def test_codec_payload_requires_codec(state):
    payload = BroadcastPayload("key", ENCODING_CODEC, b"\x00", 1)
    with pytest.raises(ValueError, match="codec"):
        payload.decode()


# ----------------------------------------------------------------------
# Hit/miss and invalidation
# ----------------------------------------------------------------------
def test_repeat_round_is_a_hit_and_serializes_nothing(state):
    cache = BroadcastCache()
    first = cache.round_state(state, None, False, build_payload=True)
    second = cache.round_state(state, None, False, build_payload=True)
    assert (cache.hits, cache.misses, cache.serializations) == (1, 1, 1)
    assert second[0] is first[0]  # the cached state object itself
    assert second[2] is first[2]  # and the cached wire buffer


def test_hit_builds_payload_lazily_when_first_requested(state):
    """Round 1 under a serial executor (no payload), round 2 after swapping to
    the process executor: the hit must still produce a wire buffer."""
    cache = BroadcastCache()
    cache.round_state(state, None, False, build_payload=False)
    assert cache.serializations == 0
    _, _, payload, _, _ = cache.round_state(state, None, False, build_payload=True)
    assert payload is not None
    assert (cache.hits, cache.serializations) == (1, 1)


def test_state_change_invalidates(state):
    cache = BroadcastCache()
    cache.round_state(state, None, False)
    changed = {k: v.copy() for k, v in state.items()}
    changed["layer.weight"] += 0.5
    cache.round_state(changed, None, False)
    assert (cache.hits, cache.misses) == (0, 2)


def test_codec_fingerprint_and_bound_changes_invalidate(state):
    cache = BroadcastCache()
    cache.round_state(state, FedSZCompressor(error_bound=1e-2), True)
    # Same state, tighter bound: must recompress.
    cache.round_state(state, FedSZCompressor(error_bound=1e-3), True)
    # Same state, different codec class entirely.
    cache.round_state(state, IdentityCodec(), True)
    assert (cache.hits, cache.misses, cache.compressions) == (0, 3, 3)
    # Back to a bound already seen — only depth-1 history is kept, still a miss.
    cache.round_state(state, FedSZCompressor(error_bound=1e-2), True)
    assert cache.misses == 4


def test_uncompressed_key_ignores_codec(state):
    """With compress_downlink off the codec never touches the broadcast, so
    its identity must not poison the key."""
    assert broadcast_key(state, FedSZCompressor(), False) == broadcast_key(
        state, None, False
    )
    assert broadcast_key(state, FedSZCompressor(), True) != broadcast_key(
        state, None, False
    )


def test_stateful_codec_never_reuses_across_rounds(state):
    """A codec without clone() must see compress() every round (its internal
    streams advance in call order); the cache always takes the miss path."""

    class StatefulCodec:
        def __init__(self):
            self.calls = 0

        def compress(self, state_dict):
            self.calls += 1
            return FedSZCompressor(error_bound=1e-2).compress(state_dict)

        def decompress(self, payload):
            return FedSZCompressor(error_bound=1e-2).decompress(payload)

    codec = StatefulCodec()
    cache = BroadcastCache()
    cache.round_state(state, codec, True)
    cache.round_state(state, codec, True)
    assert codec.calls == 2
    assert (cache.hits, cache.misses) == (0, 2)


# ----------------------------------------------------------------------
# Broadcast codec seconds on the round record (satellite: timing accounting)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_setup():
    from repro.data import load_dataset

    full = load_dataset("cifar10", num_samples=80, image_size=8, seed=0)
    return full.split(0.75, seed=1)


def _tiny_runtime(tiny_setup, **config_kwargs):
    from repro.fl import FederatedRuntime, FLConfig
    from repro.nn.models import create_model

    train, val = tiny_setup
    return FederatedRuntime(
        lambda: create_model("alexnet", "tiny", num_classes=10, seed=5),
        train,
        val,
        FLConfig(num_clients=2, rounds=2, batch_size=16, seed=3, **config_kwargs),
        codec=FedSZCompressor(error_bound=1e-2),
    )


def test_broadcast_codec_seconds_reach_the_round_record(tiny_setup):
    runtime = _tiny_runtime(tiny_setup, compress_downlink=True)
    history = runtime.run()
    for record in history.records:
        assert record.broadcast_compress_seconds > 0.0
        assert record.broadcast_decompress_seconds > 0.0
    breakdown = history.mean_epoch_breakdown()
    expected = (
        sum(r.compression_seconds for r in history.records)
        + sum(
            r.broadcast_compress_seconds + r.broadcast_decompress_seconds
            for r in history.records
        )
    ) / len(history.records)
    assert breakdown.compression_seconds == pytest.approx(expected)


def test_uncompressed_broadcast_records_zero_codec_seconds(tiny_setup):
    runtime = _tiny_runtime(tiny_setup)
    history = runtime.run()
    for record in history.records:
        assert record.broadcast_compress_seconds == 0.0
        assert record.broadcast_decompress_seconds == 0.0


# ----------------------------------------------------------------------
# Thread executor clones once per worker (satellite: clone churn)
# ----------------------------------------------------------------------
def test_thread_executor_clones_once_per_worker(tiny_setup):
    from repro.fl import FederatedRuntime, FLConfig, ParallelExecutor
    from repro.nn.models import create_model

    class CountingFedSZ(FedSZCompressor):
        clone_calls = 0

        def clone(self):
            type(self).clone_calls += 1
            return super().clone()

    train, val = tiny_setup
    codec = CountingFedSZ(error_bound=1e-2)
    runtime = FederatedRuntime(
        lambda: create_model("alexnet", "tiny", num_classes=10, seed=5),
        train,
        val,
        FLConfig(num_clients=8, rounds=1, batch_size=16, seed=3),
        codec=codec,
        executor=ParallelExecutor(max_workers=2),
    )
    results_report = runtime.run().records[0]
    assert results_report.participating_clients == 8
    # One clone per worker per round — not one per task (8 would be churn).
    assert CountingFedSZ.clone_calls == 2
    # Facade contract: the caller's codec reports the last participant.
    assert codec.last_report is not None
    last_stat = results_report.client_stats[-1]
    assert codec.last_report.compressed_nbytes == last_stat.payload_nbytes
