"""Timing harness: warmup + min-of-N wall timing with per-phase breakdowns.

Minimum-of-N is the standard defence against scheduler noise for CPU-bound
benchmarks: the fastest repeat is the one least disturbed by the rest of the
machine.  Each measured callable receives a
:class:`~repro.utils.timing.Timer` so workloads can attribute portions of the
wall time to named phases (e.g. ``compress`` / ``decompress``); the breakdown
reported is the one from the fastest repeat so phases always sum to (at most)
the reported wall time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.compression.base import safe_throughput_mbps
from repro.utils.timing import Timer


def _json_rate(value: Optional[float]) -> Optional[float]:
    """Rates destined for BENCH JSON: ``inf`` ("too fast to measure") maps to
    ``null`` so the emitted file stays strict RFC-8259 JSON."""
    if value is None or not math.isfinite(value):
        return None
    return value


@dataclass
class MetricRecord:
    """One measured metric inside a workload."""

    name: str
    #: Fastest repeat, in seconds — the headline number compares gate on.
    seconds: float
    mean_seconds: float
    repeats: int
    warmup: int
    #: Work-size annotations used to derive throughput (optional).
    items: Optional[int] = None
    nbytes: Optional[int] = None
    #: Per-phase seconds from the fastest repeat.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Free-form metadata (compression ratios, shapes, ...).
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def items_per_second(self) -> Optional[float]:
        if self.items is None:
            return None
        # Zero/denormal elapsed times (clock granularity on sub-microsecond
        # metrics) read as "too fast to measure", never as a division error.
        if self.seconds <= 0.0:
            return float("inf")
        rate = self.items / self.seconds
        return rate if math.isfinite(rate) else float("inf")

    @property
    def mb_per_second(self) -> Optional[float]:
        if self.nbytes is None:
            return None
        return safe_throughput_mbps(self.nbytes, self.seconds)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seconds": self.seconds,
            "mean_seconds": self.mean_seconds,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }
        if self.items is not None:
            payload["items"] = self.items
            payload["items_per_second"] = _json_rate(self.items_per_second)
        if self.nbytes is not None:
            payload["nbytes"] = self.nbytes
            payload["mb_per_second"] = _json_rate(self.mb_per_second)
        if self.phases:
            payload["phases"] = dict(self.phases)
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


class BenchHarness:
    """Collects :class:`MetricRecord` entries for one workload run.

    Workload functions receive a harness and call :meth:`measure` once per
    metric.  The measured callable takes a single ``Timer`` argument (which it
    may ignore) and is invoked ``warmup`` untimed times followed by
    ``repeats`` timed times.
    """

    def __init__(self, warmup: int = 1, repeats: int = 3) -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        if repeats < 1:
            raise ValueError(f"repeats must be positive, got {repeats}")
        self.warmup = warmup
        self.repeats = repeats
        self._records: List[MetricRecord] = []

    @property
    def records(self) -> List[MetricRecord]:
        """Metrics measured so far, in insertion order."""
        return list(self._records)

    def measure(
        self,
        name: str,
        fn: Callable[[Timer], Any],
        *,
        items: Optional[int] = None,
        nbytes: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> MetricRecord:
        """Time ``fn`` with warmup + min-of-N and record the result."""
        if any(record.name == name for record in self._records):
            raise ValueError(f"duplicate metric name {name!r}")
        for _ in range(self.warmup):
            fn(Timer())
        wall_times: List[float] = []
        phase_snapshots: List[Dict[str, float]] = []
        for _ in range(self.repeats):
            timer = Timer()
            start = time.perf_counter()
            fn(timer)
            wall_times.append(time.perf_counter() - start)
            phase_snapshots.append(timer.as_dict())
        fastest = min(range(self.repeats), key=wall_times.__getitem__)
        record = MetricRecord(
            name=name,
            seconds=wall_times[fastest],
            mean_seconds=sum(wall_times) / len(wall_times),
            repeats=self.repeats,
            warmup=self.warmup,
            items=items,
            nbytes=nbytes,
            phases=phase_snapshots[fastest],
            extra=dict(extra) if extra else {},
        )
        self._records.append(record)
        return record
