#!/usr/bin/env python
"""Compare the EBLC candidates on your model's weights (Table I style).

Runs SZ2, SZ3, SZx and ZFP over trained-like weight samples of the three
paper models at several relative error bounds, prints the rate/runtime table
and then applies the Problem-1 selection procedure (Eqn. 2) to pick the
compressor FedSZ should use for a given uplink bandwidth.

Run with::

    python examples/compressor_comparison.py [--bandwidth 10]
"""

from __future__ import annotations

import argparse

from repro.core import select_lossy_compressor
from repro.experiments import model_weight_sample, run_table1
from repro.experiments.reporting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth", type=float, default=10.0, help="uplink bandwidth in Mbps")
    parser.add_argument("--sample-elements", type=int, default=200_000)
    parser.add_argument(
        "--device",
        default="raspberry-pi-5",
        choices=["raspberry-pi-5", "local"],
        help="device profile used for the reported runtimes",
    )
    arguments = parser.parse_args()

    result = run_table1(
        sample_elements=arguments.sample_elements,
        device=None if arguments.device == "local" else arguments.device,
    )
    print(result.name)
    print(render_table(result.rows))
    for note in result.notes:
        print(f"note: {note}")
    print()

    weights = model_weight_sample("alexnet", num_values=arguments.sample_elements)
    selection = select_lossy_compressor(
        weights, error_bound=1e-2, bandwidth_mbps=arguments.bandwidth
    )
    print(f"Problem-1 selection at {arguments.bandwidth:g} Mbps:")
    for candidate in selection.candidates:
        marker = "*" if candidate.compressor == selection.best.compressor else " "
        print(
            f" {marker} {candidate.compressor:4s} ratio={candidate.ratio:6.2f}x "
            f"runtime={candidate.compress_seconds * 1e3:7.1f} ms "
            f"feasible={candidate.feasible}"
        )
    print(f"selected compressor: {selection.best.compressor} (the paper selects sz2)")


if __name__ == "__main__":
    main()
