"""Differential-privacy perspective on compression noise.

The paper stops short of claiming a formal DP guarantee — it only notes that
the error distribution *resembles* Laplace noise and that compression-based
privacy amplification is an active research direction (Chen et al., 2024).
This module provides the quantitative scaffolding for that discussion:

* the classic Laplace mechanism (for comparison and for future hybrid
  schemes),
* an *equivalent-ε* estimate: the privacy parameter a genuine Laplace
  mechanism would need for its noise scale to match the observed compression
  error, given a query sensitivity,
* a helper that injects calibrated Laplace noise into a state dict, so the
  compression-as-noise hypothesis can be compared against genuine DP noise of
  the same magnitude in accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.privacy.laplace import LaplaceFit, fit_laplace


@dataclass(frozen=True)
class EquivalentPrivacyEstimate:
    """ε that a Laplace mechanism with the observed noise scale would provide."""

    noise_scale: float
    sensitivity: float
    epsilon: float

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabulation."""
        return {
            "noise_scale": self.noise_scale,
            "sensitivity": self.sensitivity,
            "epsilon": self.epsilon,
        }


def client_round_rng(seed: int, client_id: int, round_index: int) -> np.random.Generator:
    """The DP-noise substream for one ``(client, round)`` release.

    Derived through :class:`numpy.random.SeedSequence` so the streams are
    statistically independent across clients and rounds while remaining a pure
    function of ``(seed, client_id, round_index)``: replaying a round draws
    the same noise no matter how many other clients ran first or on which
    executor.  This is the substream DP releases should draw from — a single
    sequential generator shared across clients (as
    :class:`~repro.privacy.DPFedSZCompressor` still uses) consumes noise in
    call order, which under the parallel executor depends on thread timing.
    """
    sequence = np.random.SeedSequence([int(seed), int(client_id), int(round_index)])
    return np.random.default_rng(sequence)


def laplace_mechanism(
    values: np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Add Laplace(Δ/ε) noise to ``values`` (the textbook mechanism).

    ``rng`` is required: a :class:`numpy.random.Generator` or an integer seed.
    The previous signature silently fell back to an *unseeded* generator,
    which made every DP run irreproducible — use :func:`client_round_rng` to
    derive the per-client, per-round substream a federated release should draw
    from.
    """
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if rng is None:
        raise ValueError(
            "laplace_mechanism requires an explicit rng or integer seed; DP noise "
            "must come from a seeded stream (see client_round_rng) so runs are "
            "reproducible"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    scale = sensitivity / epsilon
    values = np.asarray(values, dtype=np.float64)
    return values + rng.laplace(0.0, scale, size=values.shape)


def equivalent_epsilon(errors: np.ndarray, sensitivity: float) -> EquivalentPrivacyEstimate:
    """Estimate the ε whose Laplace mechanism matches the observed error scale.

    A Laplace mechanism with sensitivity Δ and privacy parameter ε adds noise
    of scale b = Δ/ε; inverting that with the fitted compression-error scale
    gives ε = Δ/b.  This is *not* a DP guarantee (compression error is data
    dependent), only the comparison the paper's discussion invites.
    """
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    fit: LaplaceFit = fit_laplace(errors)
    epsilon = sensitivity / fit.scale
    return EquivalentPrivacyEstimate(
        noise_scale=fit.scale, sensitivity=float(sensitivity), epsilon=float(epsilon)
    )


def perturb_state_dict_with_laplace(
    state_dict: Mapping[str, np.ndarray],
    noise_scale: float,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Add zero-centred Laplace noise of the given scale to every float tensor.

    Used by the DP-comparison experiments: models perturbed this way can be
    evaluated side by side with FedSZ-compressed models whose error scale
    matches ``noise_scale``.
    """
    if noise_scale < 0:
        raise ValueError(f"noise_scale must be non-negative, got {noise_scale}")
    rng = np.random.default_rng(seed)
    perturbed: Dict[str, np.ndarray] = {}
    for name, tensor in state_dict.items():
        tensor = np.asarray(tensor)
        if noise_scale > 0 and np.issubdtype(tensor.dtype, np.floating):
            noise = rng.laplace(0.0, noise_scale, size=tensor.shape)
            perturbed[name] = (tensor.astype(np.float64) + noise).astype(tensor.dtype)
        else:
            perturbed[name] = tensor.copy()
    return perturbed
