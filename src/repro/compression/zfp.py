"""ZFP-style transform-based lossy compressor (fixed-precision mode).

ZFP (Lindstrom, TVCG 2014) partitions data into small blocks, aligns each
block to a common exponent (block-floating-point), applies a fast orthogonal
decorrelating transform and encodes the transform coefficients bit-plane by
bit-plane.  Its "fixed precision" mode keeps a fixed number of coefficient
bits per block, which is the mode the FedSZ paper selects because ZFP offers
no value-range-relative error bound.

The reproduction keeps the same structure while staying fully vectorised:

* blocks of four samples over the flattened tensor;
* block-floating-point normalisation against the block's largest exponent;
* an orthonormal 4-point DCT-II as the decorrelating transform;
* sign-magnitude coefficient storage truncated to ``precision`` bits
  (most-significant first), followed by a DEFLATE pass over the packed
  stream (standing in for ZFP's bit-plane entropy coding).

As in real ZFP's fixed-precision mode, the reconstruction error is *not*
strictly bounded by a user error bound; the requested relative bound is only
used to choose the retained precision (``precision ≈ log2(1/rel) + 1``).
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple

import numpy as np

from repro.compression.base import (
    ErrorBoundMode,
    LossyCompressor,
    pack_array,
    pack_sections,
    unpack_array,
    unpack_sections,
)
from repro.compression.errors import CorruptPayloadError, InvalidErrorBoundError

_META_STRUCT = struct.Struct("<IQIII")
_FORMAT_VERSION = 2
_BLOCK = 4

#: Orthonormal 4-point DCT-II matrix (rows are basis vectors).
_DCT_MATRIX = np.array(
    [
        [0.5, 0.5, 0.5, 0.5],
        [0.6532814824381883, 0.27059805007309845, -0.27059805007309845, -0.6532814824381883],
        [0.5, -0.5, -0.5, 0.5],
        [0.27059805007309845, -0.6532814824381883, 0.6532814824381883, -0.27059805007309845],
    ],
    dtype=np.float64,
)


def precision_for_relative_bound(relative_bound: float) -> int:
    """Map a relative error bound onto a fixed coefficient precision.

    ``precision = ceil(log2(1 / rel)) + 1`` clamped to [2, 30], mirroring how
    the paper picks ZFP's fixed-precision mode as "the closest analogous
    option" to a relative bound.
    """
    if relative_bound <= 0 or not np.isfinite(relative_bound):
        raise InvalidErrorBoundError(
            f"relative bound must be positive and finite, got {relative_bound}"
        )
    precision = int(np.ceil(np.log2(1.0 / relative_bound))) + 1
    return int(np.clip(precision, 2, 30))


class ZFPCompressor(LossyCompressor):
    """Block transform + fixed-precision coefficient coding (ZFP analogue)."""

    name = "zfp"

    def __init__(self, compression_level: int = 6) -> None:
        self.compression_level = int(compression_level)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.REL,
    ) -> bytes:
        data = self._validate_input(data)
        original_shape = data.shape
        original_dtype = data.dtype
        flat = data.astype(np.float64, copy=False).ravel()

        if mode == ErrorBoundMode.REL:
            precision = precision_for_relative_bound(error_bound)
        else:
            # Absolute bounds are translated against the data range so that a
            # tighter bound still yields more retained bits.
            finite_range = float(flat.max() - flat.min()) if flat.size else 1.0
            relative = error_bound / finite_range if finite_range > 0 else error_bound
            precision = precision_for_relative_bound(max(relative, 1e-9))

        if flat.size == 0:
            sections = {
                "meta": self._pack_meta(flat.size, precision, original_shape, original_dtype, raw=True),
                "raw": pack_array(data),
            }
            return pack_sections(sections)

        padded, num_blocks = _pad_to_blocks(flat, _BLOCK)
        blocks = padded.reshape(num_blocks, _BLOCK)

        # Block-floating-point: express every value as mantissa * 2^emax where
        # emax is the block's largest exponent.
        max_magnitude = np.max(np.abs(blocks), axis=1)
        emax = np.zeros(num_blocks, dtype=np.int32)
        nonzero = max_magnitude > 0
        emax[nonzero] = np.ceil(np.log2(max_magnitude[nonzero])).astype(np.int32)
        scale = np.ldexp(1.0, -emax).astype(np.float64)
        normalized = blocks * scale[:, None]  # values in [-1, 1]

        coefficients = normalized @ _DCT_MATRIX.T  # orthonormal, stays within [-2, 2]

        # Sign-magnitude fixed-precision quantization of coefficients.
        quantization_scale = float(1 << (precision - 1))
        quantized = np.rint(coefficients * quantization_scale).astype(np.int64)
        limit = (1 << (precision + 1)) - 1
        quantized = np.clip(quantized, -limit, limit)
        signs = (quantized < 0).astype(np.uint8)
        magnitudes = np.abs(quantized).astype(np.uint64)

        width = precision + 2  # sign-free magnitude can reach 2 * 2^(precision-1)
        bits = np.zeros((num_blocks, _BLOCK, width + 1), dtype=np.uint8)
        bits[:, :, 0] = signs
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits[:, :, 1:] = (
            (magnitudes[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
        ).astype(np.uint8)
        coefficient_blob = np.packbits(bits.ravel()).tobytes()

        sections = {
            "meta": self._pack_meta(flat.size, precision, original_shape, original_dtype, raw=False),
            "emax": zlib.compress(emax.astype("<i2").tobytes(), self.compression_level),
            "coef": zlib.compress(coefficient_blob, self.compression_level),
        }
        return pack_sections(sections)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        sections = unpack_sections(payload)
        meta = self._unpack_meta(sections.get("meta"))
        if meta["raw"]:
            return unpack_array(sections["raw"])

        size = meta["size"]
        precision = meta["precision"]
        num_blocks = -(-size // _BLOCK)
        width = precision + 2

        emax = np.frombuffer(zlib.decompress(sections["emax"]), dtype="<i2").astype(np.int32)
        if emax.size != num_blocks:
            raise CorruptPayloadError("ZFP payload exponent count mismatch")

        coefficient_blob = zlib.decompress(sections["coef"])
        total_bits = num_blocks * _BLOCK * (width + 1)
        bits = np.unpackbits(np.frombuffer(coefficient_blob, dtype=np.uint8))[:total_bits]
        bits = bits.reshape(num_blocks, _BLOCK, width + 1)
        signs = bits[:, :, 0].astype(bool)
        weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
        magnitudes = (bits[:, :, 1:].astype(np.uint64) @ weights).astype(np.float64)
        quantized = np.where(signs, -magnitudes, magnitudes)

        quantization_scale = float(1 << (precision - 1))
        coefficients = quantized / quantization_scale
        normalized = coefficients @ _DCT_MATRIX  # inverse of an orthonormal transform
        scale = np.ldexp(1.0, emax).astype(np.float64)
        blocks = normalized * scale[:, None]

        flat = blocks.ravel()[:size]
        return flat.astype(meta["dtype"]).reshape(meta["shape"])

    # ------------------------------------------------------------------
    # Metadata framing
    # ------------------------------------------------------------------
    def _pack_meta(
        self,
        size: int,
        precision: int,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        raw: bool,
    ) -> bytes:
        dtype_name = np.dtype(dtype).str.encode("ascii")
        header = _META_STRUCT.pack(_FORMAT_VERSION, size, precision, _BLOCK, 1 if raw else 0)
        shape_blob = struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
        return header + struct.pack("<H", len(dtype_name)) + dtype_name + shape_blob

    @staticmethod
    def _unpack_meta(blob: bytes | None) -> dict:
        if not blob or len(blob) < _META_STRUCT.size:
            raise CorruptPayloadError("ZFP payload missing metadata section")
        version, size, precision, block, raw = _META_STRUCT.unpack_from(blob, 0)
        if version != _FORMAT_VERSION:
            raise CorruptPayloadError(f"unsupported ZFP payload version {version}")
        if block != _BLOCK:
            raise CorruptPayloadError(f"unexpected ZFP block size {block}")
        cursor = _META_STRUCT.size
        (dtype_len,) = struct.unpack_from("<H", blob, cursor)
        cursor += 2
        dtype = np.dtype(blob[cursor : cursor + dtype_len].decode("ascii"))
        cursor += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, cursor)
        cursor += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, cursor) if ndim else ()
        return {
            "size": int(size),
            "precision": int(precision),
            "raw": bool(raw),
            "dtype": dtype,
            "shape": tuple(int(s) for s in shape),
        }


def _pad_to_blocks(flat: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """Pad a 1-D array with zeros up to a whole number of blocks."""
    num_blocks = -(-flat.size // block)
    padded_size = num_blocks * block
    if padded_size == flat.size:
        return flat, num_blocks
    padded = np.zeros(padded_size, dtype=np.float64)
    padded[: flat.size] = flat
    return padded, num_blocks
