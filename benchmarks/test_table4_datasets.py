"""Benchmark regenerating Table IV (dataset characteristics)."""

from __future__ import annotations

from repro.experiments import run_table4


def test_table4_dataset_characteristics(run_once):
    result = run_once(run_table4)
    print()
    print(result.to_text())

    rows = {row["dataset"]: row for row in result.rows}
    assert rows["CIFAR-10"]["samples"] == 60_000
    assert rows["CIFAR-10"]["input_dimension"] == "32 x 32"
    assert rows["Fashion-MNIST"]["samples"] == 70_000
    assert rows["Fashion-MNIST"]["classes"] == 10
    assert rows["Caltech101"]["classes"] == 101
    assert rows["Caltech101"]["input_dimension"] == "224 x 224"
