"""Tests for the compression-error / differential-privacy analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import create_model, synthetic_pretrained_weights
from repro.privacy import (
    analyze_array_errors,
    analyze_state_dict_errors,
    client_round_rng,
    compression_errors_for_array,
    equivalent_epsilon,
    error_histogram,
    fit_laplace,
    laplace_density,
    laplace_mechanism,
    perturb_state_dict_with_laplace,
)


@pytest.fixture(scope="module")
def weights():
    return synthetic_pretrained_weights("alexnet", num_values=60_000, seed=0)


# ----------------------------------------------------------------------
# Laplace fitting
# ----------------------------------------------------------------------
def test_fit_recovers_known_laplace_parameters(rng):
    sample = rng.laplace(0.02, 0.05, 50_000)
    fit = fit_laplace(sample)
    assert fit.location == pytest.approx(0.02, abs=0.005)
    assert fit.scale == pytest.approx(0.05, rel=0.05)
    assert fit.closer_to_laplace_than_normal
    assert fit.sample_size == 50_000


def test_fit_distinguishes_gaussian_from_laplace(rng):
    gaussian = rng.normal(0.0, 1.0, 50_000)
    fit = fit_laplace(gaussian)
    assert not fit.closer_to_laplace_than_normal


def test_fit_requires_minimum_samples():
    with pytest.raises(ValueError):
        fit_laplace(np.zeros(3))


def test_error_histogram_is_a_density(rng):
    sample = rng.laplace(0.0, 0.1, 10_000)
    histogram = error_histogram(sample, bins=41)
    widths = np.diff(histogram["edges"])
    assert np.sum(histogram["density"] * widths) == pytest.approx(1.0, rel=1e-6)
    assert histogram["centers"].shape == histogram["density"].shape


def test_laplace_density_integrates_to_one():
    x = np.linspace(-2, 2, 20_001)
    density = laplace_density(x, 0.0, 0.1)
    assert np.trapezoid(density, x) == pytest.approx(1.0, rel=1e-3)


# ----------------------------------------------------------------------
# Compression errors (Figure 10)
# ----------------------------------------------------------------------
def test_compression_errors_are_bounded_and_centered(weights):
    errors = compression_errors_for_array(weights, 0.05, compressor="sz2")
    value_range = float(weights.max() - weights.min())
    assert np.abs(errors).max() <= 0.05 * value_range * 1.01
    # The zero-anchored quantization grid keeps the error population centred.
    assert abs(float(np.mean(errors))) < 0.05 * value_range * 0.2


def test_error_scale_grows_with_bound(weights):
    distributions = analyze_array_errors(weights, [0.05, 0.1, 0.5], compressor="sz2")
    scales = [d.fit.scale for d in distributions]
    assert scales[0] < scales[1] < scales[2]
    rows = [d.as_row() for d in distributions]
    assert all({"laplace_scale", "ks_laplace", "max_abs_error"} <= set(row) for row in rows)


def test_errors_resemble_laplace_more_than_normal(weights):
    """The Figure 10 observation: SZ2 error histograms look Laplacian."""
    distribution = analyze_array_errors(weights, [0.1], compressor="sz2")[0]
    assert distribution.fit.closer_to_laplace_than_normal


def test_state_dict_error_analysis():
    state = create_model("alexnet", "tiny", num_classes=10, seed=0).state_dict()
    distribution = analyze_state_dict_errors(state, error_bound=1e-2)
    assert distribution.errors.size > 1000
    assert distribution.max_abs_error > 0
    histogram = distribution.histogram(bins=21)
    assert histogram["density"].size == 21


# ----------------------------------------------------------------------
# Differential-privacy scaffolding
# ----------------------------------------------------------------------
def test_laplace_mechanism_noise_scale(rng):
    values = np.zeros(200_000)
    noisy = laplace_mechanism(values, sensitivity=1.0, epsilon=2.0, rng=rng)
    # Laplace(b = Δ/ε = 0.5) has standard deviation sqrt(2) * b.
    assert np.std(noisy) == pytest.approx(np.sqrt(2) * 0.5, rel=0.02)


def test_laplace_mechanism_validation():
    with pytest.raises(ValueError):
        laplace_mechanism(np.zeros(3), sensitivity=0.0, epsilon=1.0)
    with pytest.raises(ValueError):
        laplace_mechanism(np.zeros(3), sensitivity=1.0, epsilon=0.0)


def test_laplace_mechanism_refuses_unseeded_noise():
    """Regression: the old `rng or default_rng()` fallback silently produced
    irreproducible DP noise; an explicit rng or seed is now required."""
    with pytest.raises(ValueError, match="rng or integer seed"):
        laplace_mechanism(np.zeros(3), sensitivity=1.0, epsilon=1.0)


def test_laplace_mechanism_is_reproducible_from_seed():
    values = np.linspace(-1.0, 1.0, 64)
    first = laplace_mechanism(values, sensitivity=1.0, epsilon=1.0, rng=123)
    second = laplace_mechanism(values, sensitivity=1.0, epsilon=1.0, rng=123)
    np.testing.assert_array_equal(first, second)
    different = laplace_mechanism(values, sensitivity=1.0, epsilon=1.0, rng=124)
    assert not np.array_equal(first, different)


def test_client_round_rng_substreams():
    """Per-(client, round) substreams are reproducible and independent: the
    same triple always yields the same draws, any differing component yields a
    different stream, and draw order across clients cannot matter."""
    base = client_round_rng(0, client_id=3, round_index=5).laplace(size=16)
    np.testing.assert_array_equal(
        base, client_round_rng(0, client_id=3, round_index=5).laplace(size=16)
    )
    for seed, client_id, round_index in [(1, 3, 5), (0, 4, 5), (0, 3, 6)]:
        other = client_round_rng(seed, client_id, round_index).laplace(size=16)
        assert not np.array_equal(base, other)


def test_equivalent_epsilon_inverse_relationship(rng):
    small_noise = rng.laplace(0.0, 0.01, 20_000)
    large_noise = rng.laplace(0.0, 0.1, 20_000)
    small = equivalent_epsilon(small_noise, sensitivity=1.0)
    large = equivalent_epsilon(large_noise, sensitivity=1.0)
    assert small.epsilon > large.epsilon  # less noise => weaker (larger-ε) privacy
    assert large.epsilon == pytest.approx(10.0, rel=0.1)
    assert {"noise_scale", "sensitivity", "epsilon"} == set(small.as_row())


def test_equivalent_epsilon_validation(rng):
    with pytest.raises(ValueError):
        equivalent_epsilon(rng.laplace(0, 0.1, 100), sensitivity=0.0)


def test_perturb_state_dict_with_laplace():
    state = create_model("mobilenetv2", "tiny", num_classes=10, seed=0).state_dict()
    perturbed = perturb_state_dict_with_laplace(state, noise_scale=0.01, seed=1)
    assert set(perturbed) == set(state)
    float_changed = [
        name
        for name, tensor in state.items()
        if np.issubdtype(tensor.dtype, np.floating)
        and not np.allclose(perturbed[name], tensor)
    ]
    assert float_changed
    for name, tensor in state.items():
        if np.issubdtype(tensor.dtype, np.integer):
            np.testing.assert_array_equal(perturbed[name], tensor)
    # Zero scale is a no-op.
    unchanged = perturb_state_dict_with_laplace(state, noise_scale=0.0)
    for name in state:
        np.testing.assert_array_equal(unchanged[name], state[name])
    with pytest.raises(ValueError):
        perturb_state_dict_with_laplace(state, noise_scale=-1.0)
