"""Benchmark regenerating Figure 6 (client epoch-time breakdown)."""

from __future__ import annotations

from repro.experiments import run_figure6


def test_figure6_epoch_breakdown(run_once):
    result = run_once(
        run_figure6,
        combinations=(("resnet50", "cifar10"), ("mobilenetv2", "cifar10")),
        rounds=2,
        samples=320,
    )
    print()
    print(result.to_text())

    for row in result.rows:
        # Paper shape: training dominates the epoch, compression is a small
        # additive overhead (<17% in the worst case, ~4.7% on average).
        assert row["client_training_seconds"] > row["compression_seconds"]
        assert 0.0 < row["compression_overhead_percent"] < 35.0
        assert row["total_seconds"] > 0
