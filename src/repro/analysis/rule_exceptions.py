"""DET004 — no silent failure, no ``assert`` as runtime validation.

Three checks:

1. Bare ``except:`` — catches SystemExit/KeyboardInterrupt and hides the
   crash the checkpoint machinery is designed to survive loudly.
2. ``except Exception:``/``except BaseException:`` whose body does nothing
   (only ``pass``/``...``) — a silently swallowed failure turns a
   determinism bug into an unexplained divergence three suites later.
   Deliberate swallows (monitor subscriber isolation, best-effort ``__del__``
   cleanup) carry an inline suppression with their justification.
3. ``assert`` statements in runtime code — stripped under ``python -O``, so
   any invariant they guard silently vanishes in optimized runs; runtime
   validation must ``raise``.  Test files (``tests/``, ``test_*.py``,
   ``conftest.py``) are exempt: assert is pytest's native idiom.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules import LintRule, register_rule

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_test_file(path: str) -> bool:
    parts = PurePosixPath(path).parts
    name = PurePosixPath(path).name
    return (
        "tests" in parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for name in names:
        text = name.attr if isinstance(name, ast.Attribute) else getattr(name, "id", "")
        if text in _BROAD_EXCEPTIONS:
            return True
    return False


@register_rule
class SilentFailureRule(LintRule):
    rule_id = "DET004"
    summary = "no bare/silent broad excepts; no assert-as-validation in runtime code"
    invariant = (
        "failures surface loudly and validation survives python -O, so "
        "determinism bugs cannot hide behind swallowed exceptions"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        is_test = _is_test_file(module.path)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        module, node,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                        "name the exception types",
                    )
                elif _is_broad(node) and _body_is_silent(node):
                    yield self.finding(
                        module, node,
                        "broad exception silently swallowed; handle it, "
                        "narrow it, or suppress with a justification",
                    )
            elif isinstance(node, ast.Assert) and not is_test:
                yield self.finding(
                    module, node,
                    "assert is stripped under 'python -O'; raise an explicit "
                    "exception for runtime validation",
                )
