"""Table IV — dataset characteristics used for FedSZ benchmarking.

The reproduction replaces the real datasets with synthetic stand-ins (see
DESIGN.md); this harness documents that the stand-ins preserve the columns
the paper reports — sample counts, input dimensions and class counts — and
records the synthetic-generation parameters actually used by the federated
experiments.
"""

from __future__ import annotations

from typing import Sequence

from repro.data import PAPER_DATASETS, dataset_spec, load_dataset
from repro.experiments.reporting import ExperimentResult


def run_table4(
    datasets: Sequence[str] = PAPER_DATASETS,
    synthetic_samples: int = 512,
    synthetic_image_size: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table IV, annotated with the synthetic stand-in actually used."""
    result = ExperimentResult(
        name="Table IV — dataset characteristics",
        description=(
            "Paper-scale dataset specs alongside the synthetic stand-ins used for "
            "the trainable experiments in this offline reproduction."
        ),
    )
    for name in datasets:
        spec = dataset_spec(name)
        synthetic = load_dataset(name, num_samples=synthetic_samples, image_size=synthetic_image_size, seed=seed)
        result.add_row(
            dataset=spec.name,
            samples=spec.num_samples,
            input_dimension=spec.input_dimension,
            classes=spec.num_classes,
            synthetic_samples=len(synthetic),
            synthetic_dimension=f"{synthetic.input_shape[1]} x {synthetic.input_shape[2]}",
            synthetic_channels=synthetic.input_shape[0],
        )
    result.add_note(
        "Real CIFAR-10 / Fashion-MNIST / Caltech101 downloads are unavailable offline; "
        "class counts and channel counts are preserved by the synthetic stand-ins."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table4().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
