"""Backwards-compatible facade over the layered federated runtime.

Historically ``FLSimulation`` was a 200-line monolith that trained clients
strictly sequentially over one shared channel.  The implementation now lives
in three pluggable layers — :mod:`repro.fl.scheduler` (round strategy),
:mod:`repro.fl.executor` (serial/parallel client execution) and
:mod:`repro.fl.transport` (per-client heterogeneous links) — composed by
:class:`repro.fl.runtime.FederatedRuntime`.  This module keeps the original
constructor and attributes working: the default composition (synchronous
FedAvg, serial executor, one shared homogeneous channel) reproduces the seed
simulation's numbers exactly.

The client→server path can be routed through any codec implementing
``compress(state_dict) -> bytes`` / ``decompress(bytes) -> state_dict`` — in
particular :class:`repro.core.FedSZCompressor` and the uncompressed
:class:`repro.core.IdentityCodec` baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from repro.data.datasets import SyntheticImageDataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.runtime import FederatedRuntime
from repro.fl.scheduler import RoundScheduler
from repro.fl.transport import Transport
from repro.network.bandwidth import SimulatedChannel
from repro.nn.module import Module


class UpdateCodec(Protocol):
    """Anything able to turn a state dict into bytes and back."""

    def compress(self, state_dict: Dict[str, np.ndarray]) -> bytes:  # pragma: no cover - protocol
        ...

    def decompress(self, payload: bytes) -> Dict[str, np.ndarray]:  # pragma: no cover - protocol
        ...


class FLSimulation:
    """Orchestrates federated rounds between one server and several clients.

    Thin facade over :class:`~repro.fl.runtime.FederatedRuntime`: pass
    ``scheduler=``, ``executor=`` or ``transport=`` to swap any layer, or use
    the runtime directly for full control.
    """

    def __init__(
        self,
        model_fn: Callable[[], Module],
        train_dataset: SyntheticImageDataset,
        validation_dataset: SyntheticImageDataset,
        config: Optional[FLConfig] = None,
        codec: Optional[UpdateCodec] = None,
        channel: Optional[SimulatedChannel] = None,
        *,
        scheduler: Optional[RoundScheduler] = None,
        executor=None,
        transport: Optional[Transport] = None,
        schedule=None,
        monitor=None,
    ) -> None:
        if transport is None:
            effective = config or FLConfig()
            transport = Transport.homogeneous(
                bandwidth_mbps=effective.bandwidth_mbps, channel=channel
            )
        elif channel is not None:
            raise ValueError("pass either a transport or a channel, not both")
        self.runtime = FederatedRuntime(
            model_fn,
            train_dataset,
            validation_dataset,
            config=config,
            codec=codec,
            scheduler=scheduler,
            executor=executor,
            transport=transport,
            schedule=schedule,
            monitor=monitor,
        )

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    @property
    def config(self) -> FLConfig:
        """The run's hyper-parameters."""
        return self.runtime.config

    @property
    def codec(self):
        """The update codec routed through the uplink (``None`` = raw)."""
        return self.runtime.codec

    @property
    def channel(self):
        """The shared channel (``None`` for heterogeneous transports)."""
        return self.runtime.channel

    @property
    def server(self):
        """The federated server holding the global model."""
        return self.runtime.server

    @property
    def clients(self) -> List[FLClient]:
        """The client population."""
        return self.runtime.clients

    @property
    def history(self) -> TrainingHistory:
        """Round records accumulated so far."""
        return self.runtime.history

    @property
    def scheduler(self) -> RoundScheduler:
        """The active round strategy."""
        return self.runtime.scheduler

    @property
    def executor(self):
        """The active client executor."""
        return self.runtime.executor

    @property
    def transport(self) -> Transport:
        """The active transport layer."""
        return self.runtime.transport

    def run(self, rounds: Optional[int] = None, **run_kwargs) -> TrainingHistory:
        """Run ``rounds`` communication rounds (defaults to the configured count).

        Checkpoint/resume keywords (``checkpoint_dir``, ``checkpoint_every``,
        ``resume``, ``keep_checkpoints``, ``fault_injector``) pass straight
        through to :meth:`repro.fl.runtime.FederatedRuntime.run`.
        """
        return self.runtime.run(rounds, **run_kwargs)

    def close(self) -> None:
        """Release executor resources (worker processes); idempotent no-op
        for the serial and thread executors."""
        self.runtime.close()

    def run_round(self) -> RoundRecord:
        """Execute one round under the configured scheduler."""
        return self.runtime.run_round()


def run_federated_training(
    model_fn: Callable[[], Module],
    train_dataset: SyntheticImageDataset,
    validation_dataset: SyntheticImageDataset,
    config: Optional[FLConfig] = None,
    codec: Optional[UpdateCodec] = None,
) -> TrainingHistory:
    """Convenience wrapper: build an :class:`FLSimulation` and run it."""
    simulation = FLSimulation(model_fn, train_dataset, validation_dataset, config, codec)
    return simulation.run()
