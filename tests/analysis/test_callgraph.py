"""Call-graph construction edge cases and the on-disk index cache."""

from __future__ import annotations

import textwrap
import time

from repro.analysis.callgraph import (
    ProjectIndex,
    module_name_for_source_path,
)


def build(*sources):
    """Index over ``(path, source)`` pairs with dedented sources."""
    return ProjectIndex.from_sources(
        [(path, textwrap.dedent(source)) for path, source in sources]
    )


class TestModuleNames:
    def test_source_path_strips_through_src(self):
        assert module_name_for_source_path("src/repro/fl/events.py") == "repro.fl.events"

    def test_init_maps_to_package(self):
        assert module_name_for_source_path("src/repro/fl/__init__.py") == "repro.fl"

    def test_loose_file_is_its_stem(self):
        assert module_name_for_source_path("scratch.py") == "scratch"


class TestCallEdges:
    def test_aliased_module_import_resolves(self):
        index = build(
            ("src/fx/helpers.py", """
                def helper():
                    return 1
            """),
            ("src/fx/user.py", """
                import fx.helpers as h
                def caller():
                    return h.helper()
            """),
        )
        assert "fx.helpers.helper" in index.call_edges()["fx.user.caller"]

    def test_from_import_resolves(self):
        index = build(
            ("src/fx/helpers.py", """
                def helper():
                    return 1
            """),
            ("src/fx/user.py", """
                from fx.helpers import helper
                def caller():
                    return helper()
            """),
        )
        assert "fx.helpers.helper" in index.call_edges()["fx.user.caller"]

    def test_decorator_application_is_an_edge(self):
        index = build(
            ("src/fx/mod.py", """
                def wrap(fn):
                    return fn
                @wrap
                def task():
                    return 2
            """),
        )
        assert "fx.mod.wrap" in index.call_edges()["fx.mod.task"]

    def test_self_dispatch_falls_back_to_base_class(self):
        index = build(
            ("src/fx/mod.py", """
                class Base:
                    def step(self):
                        return 0
                class Child(Base):
                    def run(self):
                        return self.step()
            """),
        )
        assert "fx.mod.Base.step" in index.call_edges()["fx.mod.Child.run"]

    def test_super_dispatch_skips_own_override(self):
        index = build(
            ("src/fx/mod.py", """
                class Base:
                    def step(self):
                        return 0
                class Child(Base):
                    def step(self):
                        return 1 + super().step()
            """),
        )
        # super().step() must reach Base.step, not recurse into Child.step.
        assert "fx.mod.Base.step" in index.call_edges()["fx.mod.Child.step"]

    def test_construction_resolves_to_init(self):
        index = build(
            ("src/fx/mod.py", """
                class Thing:
                    def __init__(self):
                        self.x = 0
                def make():
                    return Thing()
            """),
        )
        assert "fx.mod.Thing.__init__" in index.call_edges()["fx.mod.make"]

    def test_cyclic_calls_do_not_hang(self):
        index = build(
            ("src/fx/mod.py", """
                import time
                def ping(n):
                    if n:
                        return pong(n - 1)
                    return time.perf_counter()
                def pong(n):
                    return ping(n)
            """),
        )
        edges = index.call_edges()
        assert "fx.mod.pong" in edges["fx.mod.ping"]
        assert "fx.mod.ping" in edges["fx.mod.pong"]
        # The taint fixpoint converges through the cycle: both return taint.
        solved = index.tainted_returns()
        assert solved["fx.mod.ping"] == {"time"}
        assert solved["fx.mod.pong"] == {"time"}


class TestRegisteredCallables:
    def test_callback_passed_to_register_call(self):
        index = build(
            ("src/fx/reg.py", """
                def register_handler(fn):
                    return fn
                def on_event(event):
                    return event
                def wire():
                    register_handler(on_event)
            """),
        )
        assert "fx.reg.on_event" in index.registered_callables()

    def test_register_decorator_marks_the_decorated(self):
        index = build(
            ("src/fx/reg.py", """
                def register_rule(cls):
                    return cls
                @register_rule
                def checker():
                    return None
            """),
        )
        assert "fx.reg.checker" in index.registered_callables()


class TestCache:
    def _write_tree(self, root, modules=24, salt=""):
        root.mkdir(parents=True, exist_ok=True)
        (root / "__init__.py").write_text("")
        for i in range(modules):
            (root / f"mod{i}.py").write_text(textwrap.dedent(f"""
                import threading

                class Holder{i}:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = {i} + {salt or 0}

                    def bump(self):
                        with self._lock:
                            self._count += 1

                def helper{i}(value):
                    return value * {i + 1}
            """))
        return sorted(root.glob("*.py"))

    def test_cold_then_cached_identical_facts(self, tmp_path):
        files = self._write_tree(tmp_path / "pkg")
        cache = tmp_path / "cache"
        cold = ProjectIndex.load_or_build(files, cache_dir=cache)
        warm = ProjectIndex.load_or_build(files, cache_dir=cache)
        assert not cold.from_cache and warm.from_cache
        assert cold.to_payload() == warm.to_payload()

    def test_any_edit_invalidates(self, tmp_path):
        files = self._write_tree(tmp_path / "pkg")
        cache = tmp_path / "cache"
        ProjectIndex.load_or_build(files, cache_dir=cache)
        files[0].write_text(files[0].read_text() + "\nEXTRA = 1\n")
        rebuilt = ProjectIndex.load_or_build(files, cache_dir=cache)
        assert not rebuilt.from_cache

    def test_corrupt_cache_rebuilds(self, tmp_path):
        files = self._write_tree(tmp_path / "pkg")
        cache = tmp_path / "cache"
        ProjectIndex.load_or_build(files, cache_dir=cache)
        for entry in cache.glob("callgraph-*.json"):
            entry.write_text("{not json")
        rebuilt = ProjectIndex.load_or_build(files, cache_dir=cache)
        assert not rebuilt.from_cache
        assert rebuilt.functions

    def test_cached_rerun_is_at_least_5x_faster(self, tmp_path):
        files = self._write_tree(tmp_path / "pkg", modules=60)
        cache = tmp_path / "cache"
        start = time.perf_counter()
        cold = ProjectIndex.load_or_build(files, cache_dir=cache)
        cold_seconds = time.perf_counter() - start
        warm_seconds = float("inf")
        for _ in range(3):  # best-of-3 damps scheduler noise
            start = time.perf_counter()
            warm = ProjectIndex.load_or_build(files, cache_dir=cache)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            assert warm.from_cache
        assert not cold.from_cache
        assert cold_seconds / warm_seconds >= 5.0, (
            f"cache hit only {cold_seconds / warm_seconds:.1f}x faster "
            f"(cold {cold_seconds * 1e3:.1f}ms, warm {warm_seconds * 1e3:.1f}ms)"
        )

    def test_cache_directory_stays_bounded(self, tmp_path):
        cache = tmp_path / "cache"
        for round_index in range(7):
            files = self._write_tree(tmp_path / "pkg", modules=3, salt=str(round_index))
            ProjectIndex.load_or_build(files, cache_dir=cache)
        assert len(list(cache.glob("callgraph-*.json"))) <= 4
