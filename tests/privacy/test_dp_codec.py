"""Tests for the differentially-private FedSZ codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import partition_state_dict
from repro.nn.models import create_model
from repro.privacy import DPFedSZCompressor, epsilon_for_noise_scale


@pytest.fixture(scope="module")
def state_dict():
    return create_model("alexnet", "tiny", num_classes=10, seed=2).state_dict()


def test_noise_scale_calibration():
    codec = DPFedSZCompressor(epsilon_per_round=2.0, clip_norm=0.5)
    assert codec.noise_scale == pytest.approx(0.25)
    assert epsilon_for_noise_scale(0.25, 0.5) == pytest.approx(2.0)


def test_epsilon_accounting_accumulates(state_dict):
    codec = DPFedSZCompressor(epsilon_per_round=1.5, clip_norm=0.5, seed=0)
    assert codec.spent_epsilon == 0.0
    codec.compress(state_dict)
    codec.compress(state_dict)
    assert codec.rounds_released == 2
    assert codec.spent_epsilon == pytest.approx(3.0)


def test_roundtrip_preserves_structure_and_metadata(state_dict):
    codec = DPFedSZCompressor(epsilon_per_round=5.0, clip_norm=0.5, seed=1)
    restored = codec.decompress(codec.compress(state_dict))
    assert set(restored) == set(state_dict)
    partition = partition_state_dict(state_dict)
    # Non-weight tensors are neither noised nor lossy-compressed.
    for name in partition.lossless:
        np.testing.assert_array_equal(restored[name], state_dict[name])


def test_weights_are_actually_perturbed(state_dict):
    codec = DPFedSZCompressor(epsilon_per_round=1.0, clip_norm=0.5, seed=3)
    restored = codec.decompress(codec.compress(state_dict))
    partition = partition_state_dict(state_dict)
    name = next(iter(partition.lossy))
    observed_noise = restored[name].astype(np.float64) - state_dict[name]
    # Noise scale 0.5 => std sqrt(2)*0.5; allow generous bands (compression
    # error is negligible at this scale).
    assert np.std(observed_noise) == pytest.approx(np.sqrt(2) * 0.5, rel=0.1)


def test_stronger_privacy_means_more_noise(state_dict):
    partition = partition_state_dict(state_dict)
    name = next(iter(partition.lossy))

    def noise_std(epsilon):
        codec = DPFedSZCompressor(epsilon_per_round=epsilon, clip_norm=0.5, seed=4)
        restored = codec.decompress(codec.compress(state_dict))
        return float(np.std(restored[name].astype(np.float64) - state_dict[name]))

    assert noise_std(0.5) > noise_std(5.0) * 2


def test_clipping_bounds_magnitudes(state_dict):
    codec = DPFedSZCompressor(epsilon_per_round=1e6, clip_norm=0.01, seed=5)  # ~no noise
    restored = codec.decompress(codec.compress(state_dict))
    partition = partition_state_dict(state_dict)
    for name in partition.lossy:
        assert float(np.max(np.abs(restored[name]))) < 0.02  # clip + tiny noise + codec error


def test_validation_errors():
    with pytest.raises(ValueError):
        DPFedSZCompressor(epsilon_per_round=0.0)
    with pytest.raises(ValueError):
        DPFedSZCompressor(clip_norm=0.0)
    with pytest.raises(ValueError):
        epsilon_for_noise_scale(0.0, 1.0)
    with pytest.raises(ValueError):
        epsilon_for_noise_scale(1.0, 0.0)
