"""Optimizers.

Only SGD (with optional momentum and weight decay) is provided — it is the
optimizer used by FedAvg's local updates in the paper and keeps client state
minimal, which matters for the federated simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("SGD received an empty parameter list")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for index, parameter in enumerate(self.parameters):
            if not parameter.requires_grad or parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocity[index] = velocity
                update = velocity
            else:
                update = gradient
            parameter.data -= self.lr * update

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (e.g. for per-round decay schedules)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
