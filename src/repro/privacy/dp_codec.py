"""Differentially-private FedSZ codec (future-work direction of the paper).

Section VII-D observes that FedSZ's compression error looks like Laplace
noise and Section VIII-B proposes studying the interaction between that noise
and formal differential privacy.  :class:`DPFedSZCompressor` makes the
combination concrete: before compression, every lossy-eligible tensor is
perturbed with a genuine Laplace mechanism (clip-to-sensitivity + calibrated
noise), then the noisy update is compressed with FedSZ as usual.

The privacy accounting follows the standard per-round Laplace mechanism over
the clipped update: each client's update has L∞ sensitivity ``clip_norm``
(element-wise clipping), so noise of scale ``clip_norm / epsilon`` yields an
ε-DP release of that update per round; ``spent_epsilon`` simply accumulates
the per-round budgets (basic composition).  Compression is applied *after*
the mechanism, so the formal guarantee is unaffected by it (post-processing).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.core.config import FedSZConfig
from repro.core.fedsz import FedSZCompressor
from repro.core.partition import is_lossy_eligible


class DPFedSZCompressor:
    """Laplace mechanism + FedSZ compression for client updates.

    Implements the ``compress``/``decompress`` protocol used by
    :class:`repro.fl.FLSimulation`, so it can replace :class:`FedSZCompressor`
    directly when an explicit privacy guarantee is wanted on top of the
    compression savings.
    """

    def __init__(
        self,
        epsilon_per_round: float = 1.0,
        clip_norm: float = 0.5,
        error_bound: float = 1e-2,
        lossy_compressor: str = "sz2",
        lossless_compressor: str = "blosc-lz",
        partition_threshold: int = 1024,
        seed: int = 0,
    ) -> None:
        if epsilon_per_round <= 0:
            raise ValueError(f"epsilon_per_round must be positive, got {epsilon_per_round}")
        if clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        self.epsilon_per_round = float(epsilon_per_round)
        self.clip_norm = float(clip_norm)
        self.partition_threshold = int(partition_threshold)
        self._rng = np.random.default_rng(seed)
        self._codec = FedSZCompressor.from_config(
            FedSZConfig(
                error_bound=error_bound,
                lossy_compressor=lossy_compressor,
                lossless_compressor=lossless_compressor,
                partition_threshold=partition_threshold,
            )
        )
        self.rounds_released = 0

    @property
    def noise_scale(self) -> float:
        """Laplace scale b = clip_norm / epsilon used for each release."""
        return self.clip_norm / self.epsilon_per_round

    @property
    def spent_epsilon(self) -> float:
        """Total ε spent so far under basic sequential composition."""
        return self.rounds_released * self.epsilon_per_round

    @property
    def last_report(self):
        """Compression report of the most recent release."""
        return self._codec.last_report

    # ------------------------------------------------------------------
    # Codec protocol
    # ------------------------------------------------------------------
    def compress(self, state_dict: Mapping[str, np.ndarray]) -> bytes:
        """Clip, add Laplace noise, then FedSZ-compress the update."""
        noisy = self._privatize(state_dict)
        payload = self._codec.compress(noisy)
        self.rounds_released += 1
        return payload

    def decompress(self, payload: bytes) -> Dict[str, np.ndarray]:
        """Decompress a payload produced by :meth:`compress`."""
        return self._codec.decompress(payload)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def checkpoint_fingerprint(self) -> Dict[str, object]:
        """Static identity for resume validation (mechanism + codec settings)."""
        from dataclasses import asdict

        return {
            "epsilon_per_round": self.epsilon_per_round,
            "clip_norm": self.clip_norm,
            "codec": asdict(self._codec.config),
        }

    def checkpoint_state(self) -> Dict[str, object]:
        """Snapshot the noise stream and the spent privacy budget.

        Both advance with every release: resuming without them would replay
        noise draws (correlating the resumed updates with the crashed run's)
        and under-count ``spent_epsilon``.
        """
        return {
            "kind": "dp-fedsz",
            "rng": self._rng.bit_generator.state,
            "rounds_released": self.rounds_released,
        }

    def restore_checkpoint_state(self, state: Mapping) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        if state.get("kind") != "dp-fedsz":
            raise ValueError(
                f"checkpoint codec state is {state.get('kind')!r}, not 'dp-fedsz'"
            )
        self._rng.bit_generator.state = state["rng"]
        self.rounds_released = int(state["rounds_released"])

    # ------------------------------------------------------------------
    # Mechanism
    # ------------------------------------------------------------------
    def _privatize(self, state_dict: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        scale = self.noise_scale
        privatized: Dict[str, np.ndarray] = {}
        for name, tensor in state_dict.items():
            tensor = np.asarray(tensor)
            if is_lossy_eligible(name, tensor, self.partition_threshold):
                clipped = np.clip(tensor.astype(np.float64), -self.clip_norm, self.clip_norm)
                noise = self._rng.laplace(0.0, scale, size=tensor.shape)
                privatized[name] = (clipped + noise).astype(tensor.dtype)
            else:
                privatized[name] = tensor.copy()
        return privatized


def epsilon_for_noise_scale(noise_scale: float, clip_norm: float) -> float:
    """Inverse calibration: the ε a Laplace mechanism with this scale provides."""
    if noise_scale <= 0:
        raise ValueError(f"noise_scale must be positive, got {noise_scale}")
    if clip_norm <= 0:
        raise ValueError(f"clip_norm must be positive, got {clip_norm}")
    return clip_norm / noise_scale
