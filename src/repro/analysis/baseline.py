"""Baseline handling: park pre-existing findings without blocking CI.

The baseline file is a committed JSON document mapping finding
*fingerprints* to counts.  A fingerprint hashes the rule id, the file path
and the stripped source line text — not the line number — so unrelated edits
above a parked finding do not resurrect it, while any change to the flagged
line itself (including fixing it) does.

Burn-down semantics: a finding matching a baseline entry is reported as
"baselined" and does not fail the run; entries stop matching the moment the
offending line changes, and ``repro lint --write-baseline`` re-captures the
(hopefully smaller) remainder.  The goal state is the empty baseline this
repo ships.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.engine import Finding

BASELINE_SCHEMA = "repro.lint-baseline"
BASELINE_SCHEMA_VERSION = 1

#: Default committed baseline location (repo root).
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Line-drift-tolerant identity of a finding."""
    digest = hashlib.sha256(
        f"{finding.rule}\0{finding.path}\0{finding.line_text}".encode("utf-8")
    )
    return digest.hexdigest()[:16]


class Baseline:
    """A multiset of parked finding fingerprints."""

    def __init__(self, counts: Dict[str, int] | None = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for finding in findings:
            key = fingerprint(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path} is not a {BASELINE_SCHEMA} file "
                f"(schema={payload.get('schema')!r})"
            )
        counts = {
            entry["fingerprint"]: int(entry.get("count", 1))
            for entry in payload.get("entries", [])
        }
        return cls(counts)

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Split ``findings`` into (new, baselined-count)."""
        remaining = dict(self.counts)
        fresh: List[Finding] = []
        matched = 0
        for finding in findings:
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched += 1
            else:
                fresh.append(finding)
        return fresh, matched

    def is_empty(self) -> bool:
        return not any(self.counts.values())


def write_baseline(path, findings: List[Finding]) -> None:
    """Capture ``findings`` as the new baseline at ``path``."""
    grouped: Dict[str, Dict[str, object]] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        key = fingerprint(finding)
        entry = grouped.setdefault(
            key,
            {
                "fingerprint": key,
                "count": 0,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "line_text": finding.line_text,
                "message": finding.message,
            },
        )
        entry["count"] = int(entry["count"]) + 1
    payload = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_SCHEMA_VERSION,
        "entries": sorted(
            grouped.values(), key=lambda e: (e["path"], e["line"], e["rule"])
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
